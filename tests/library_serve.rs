//! The pulse library's online serving path: golden-suite arrival-stream
//! acceptance (warm-start share, warm-vs-scratch iteration cost, and
//! semantic verification of served pulses) plus the edge cases — empty
//! library, capacity 0, and eviction under repeated inserts.

use accqoc_repro::accqoc::{PulseLibrary, ServeOptions, Session, SimilarityFn};
use accqoc_repro::circuit::{circuit_unitary, Circuit, Gate, UnitaryKey};
use accqoc_repro::grape::Pulse;
use accqoc_repro::hw::Topology;
use accqoc_repro::linalg::Mat;
use accqoc_repro::workloads::golden_suite;

fn session(n_qubits: usize) -> Session {
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    Session::builder()
        .topology(Topology::linear(n_qubits))
        .grape(grape)
        .build()
        .expect("valid session")
}

#[test]
fn golden_stream_acceptance() {
    // The ISSUE-4 acceptance bar: replay the golden suite as an arrival
    // stream; at least half of all compiles must be warm-started, warm
    // compiles must be strictly cheaper than scratch on mean GRAPE
    // iterations, and every served pulse must verify semantically.
    let s = session(5);
    let suite = golden_suite();
    for program in &suite {
        let report = s.serve_program(&program.circuit).expect("serves");
        assert_eq!(
            report.n_compiled + report.groups.iter().filter(|g| g.hit).count(),
            report.groups.len(),
            "{}: every group is a hit or a compile",
            program.name
        );
    }
    let stats = s.library().stats();
    assert!(stats.misses > 0, "cold stream must compile something");
    assert!(
        stats.warm_share() >= 0.5,
        "warm-start share {:.3} below the 50% acceptance bar ({} warm / {} compiles)",
        stats.warm_share(),
        stats.warm_compiles,
        stats.misses
    );
    assert!(
        stats.mean_warm_iterations() < stats.mean_scratch_iterations(),
        "warm compiles must be cheaper: warm {:.1} vs scratch {:.1} mean iterations",
        stats.mean_warm_iterations(),
        stats.mean_scratch_iterations()
    );

    // Served pulses realize the circuits they claim to (the
    // tests/verify_semantics.rs bar, applied to the serving path).
    for program in &suite {
        let verify = s.verify_program(&program.circuit).expect("verifies");
        assert!(
            verify.passed,
            "{}: served pulses failed verification (min group fidelity {:.6})",
            program.name, verify.min_group_fidelity
        );
    }

    // Replaying the stream is pure cache hits.
    let before = s.library().stats().misses;
    for program in &suite {
        let report = s.serve_program(&program.circuit).expect("replay serves");
        assert_eq!(report.n_compiled, 0, "{}: replay must hit", program.name);
        assert_eq!(report.coverage.rate(), 1.0);
    }
    assert_eq!(
        s.library().stats().misses,
        before,
        "replay compiled nothing"
    );
}

#[test]
fn width_partitioned_subset_serving_is_byte_transparent() {
    // The sharding contract: warm starts never cross group widths, so
    // serving each width class on its own fresh session (= one shard of
    // a sharded deployment) must reproduce the single-process serve
    // byte for byte — per-group pulses, hit/warm/iteration outcomes,
    // and summed library counters.
    let programs = [
        Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(2)]),
        Circuit::from_gates(3, [Gate::Rz(0, 0.4), Gate::Cx(1, 2), Gate::H(1)]),
        Circuit::from_gates(3, [Gate::Cx(0, 1), Gate::Rz(2, 0.9), Gate::H(0)]),
    ];
    let baseline = session(3);
    let base_reports: Vec<_> = programs
        .iter()
        .map(|p| baseline.serve_program(p).expect("baseline serves"))
        .collect();
    assert!(
        base_reports
            .iter()
            .flat_map(|r| r.groups.iter())
            .any(|g| g.n_qubits == 2),
        "suite must exercise both width classes"
    );

    let opts = ServeOptions::default();
    let shards = [session(3), session(3)]; // shard 0 owns width 1, shard 1 width 2
    let widths: [&[usize]; 2] = [&[1], &[2]];
    for (p, base) in programs.iter().zip(&base_reports) {
        let mut merged = Vec::new();
        let mut owned_total = 0;
        for (shard, width) in shards.iter().zip(widths) {
            let grouped = shard.front_end(p);
            let report = shard
                .serve_grouped_subset(&grouped, &opts, Some(width))
                .expect("subset serves");
            assert_eq!(
                report.overall_latency_ns, 0.0,
                "subsets cannot see the whole program's latency"
            );
            assert!(report.groups.iter().all(|g| width.contains(&g.n_qubits)));
            owned_total += report.coverage.total;
            merged.extend(report.groups);
        }
        assert_eq!(owned_total, base.coverage.total, "owned instances sum");
        // Every baseline group outcome is reproduced by its owner shard.
        assert_eq!(merged.len(), base.groups.len());
        for bg in &base.groups {
            let sg = merged
                .iter()
                .find(|g| g.key == bg.key)
                .expect("owner served the group");
            assert_eq!(sg.hit, bg.hit, "hit/miss outcome");
            assert_eq!(sg.warm_from, bg.warm_from, "warm-start source");
            assert_eq!(sg.iterations, bg.iterations, "GRAPE iteration count");
            assert_eq!(sg.latency_ns, bg.latency_ns, "group latency, bit-exact");
        }
        // The router folds the program-level latency from the merged
        // per-group latencies; it must land on the baseline's number.
        let per_key: std::collections::HashMap<_, _> = merged
            .iter()
            .map(|g| (g.key.clone(), g.latency_ns))
            .collect();
        let grouped = baseline.front_end(p);
        let folded = baseline
            .overall_latency_from(&grouped, |k| per_key.get(k).copied())
            .expect("all groups covered");
        assert_eq!(folded, base.overall_latency_ns, "folded latency, bit-exact");
    }

    // The union of the shard caches is byte-identical to the baseline's.
    let mut union = shards[0].cache_snapshot();
    union.merge(shards[1].cache_snapshot());
    assert_eq!(
        union.to_json(),
        baseline.cache_snapshot().to_json(),
        "shard cache union diverged from the single-process cache"
    );

    // Library counters sum exactly across the partition.
    let base_stats = baseline.library().stats();
    let summed =
        shards
            .iter()
            .map(|s| s.library().stats())
            .fold((0u64, 0u64, 0u64, 0u64), |acc, s| {
                (
                    acc.0 + s.hits,
                    acc.1 + s.misses,
                    acc.2 + s.warm_compiles,
                    acc.3 + s.scratch_compiles,
                )
            });
    assert_eq!(
        summed,
        (
            base_stats.hits,
            base_stats.misses,
            base_stats.warm_compiles,
            base_stats.scratch_compiles
        ),
        "counters must sum across shards"
    );

    // `None` means "own everything": byte-identical to serve_grouped.
    let unfiltered = session(3);
    for (p, base) in programs.iter().zip(&base_reports) {
        let grouped = unfiltered.front_end(p);
        let report = unfiltered
            .serve_grouped_subset(&grouped, &opts, None)
            .expect("unfiltered serves");
        assert_eq!(report.to_json(), base.to_json(), "None filter is identity");
    }
}

#[test]
fn serving_an_empty_library_falls_back_to_scratch() {
    let s = session(2);
    let report = s
        .serve_program(&Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]))
        .expect("empty library is a valid (slow) library, not an error");
    assert!(report.n_compiled > 0);
    assert_eq!(report.n_warm_started, 0, "nothing to warm-start from");
    assert_eq!(report.coverage.covered, 0);
    assert!(report.overall_latency_ns > 0.0);
    let stats = s.library().stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.warm_compiles, 0);
    assert_eq!(stats.scratch_compiles as usize, report.n_compiled);
}

#[test]
fn capacity_zero_library_serves_but_stores_nothing() {
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    let s = Session::builder()
        .topology(Topology::linear(2))
        .grape(grape)
        .library_capacity(0)
        .build()
        .expect("valid session");
    let program = Circuit::from_gates(2, [Gate::H(0)]);
    let first = s.serve_program(&program).expect("serves");
    assert!(first.n_compiled > 0);
    assert_eq!(s.cache_len(), 0, "capacity 0 stores nothing");
    // The same program again recompiles from scratch — still no error.
    let second = s.serve_program(&program).expect("serves again");
    assert_eq!(second.n_compiled, first.n_compiled);
    assert_eq!(second.n_warm_started, 0);
    assert_eq!(s.library().stats().hits, 0);
}

#[test]
fn eviction_under_repeated_insert_keeps_the_bound_and_the_hot_set() {
    let lib = PulseLibrary::with_capacity(Some(3));
    let unitary = |k: usize| {
        circuit_unitary(&Circuit::from_gates(
            1,
            [Gate::Rz(0, 0.17 * (k + 1) as f64)],
        ))
    };
    let key = |k: usize| UnitaryKey::canonical(&unitary(k), 1);
    let entry = |k: usize| accqoc_repro::accqoc::CachedPulse {
        pulse: Pulse::zeros(2, 4, 1.0),
        latency_ns: k as f64,
        iterations: 1,
        n_qubits: 1,
    };
    for k in 0..10 {
        let u = unitary(k);
        lib.insert_indexed(key(k), &u, entry(k));
        assert!(lib.len() <= 3, "capacity bound violated at insert {k}");
    }
    assert_eq!(lib.len(), 3);
    assert_eq!(lib.indexed_len(), 3);
    assert_eq!(lib.stats().evictions, 7);
    // The most recent three survive; the oldest are gone.
    for k in 7..10 {
        assert!(lib.contains(&key(k)), "recent entry {k} evicted");
    }
    for k in 0..7 {
        assert!(!lib.contains(&key(k)), "stale entry {k} survived");
    }
    // Re-inserting an existing key is an update, not growth.
    let u = unitary(8);
    lib.insert_indexed(key(8), &u, entry(8));
    assert_eq!(lib.len(), 3);
    // The nearest query only sees live entries.
    let hit = lib
        .nearest(&unitary(8), 1, 8, SimilarityFn::TraceOverlap)
        .expect("live entries indexed");
    assert_eq!(hit.key, key(8));
    // An evicted unitary no longer resolves to itself (its key is gone).
    assert!(!lib.contains(&key(0)));
}

#[test]
fn bounded_serving_evicts_cold_groups_but_keeps_serving() {
    // A library big enough for one program's groups but not three
    // distinct programs: serving keeps working while the working set
    // rotates.
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    let s = Session::builder()
        .topology(Topology::linear(2))
        .grape(grape)
        .library_capacity(2)
        .build()
        .expect("valid session");
    let programs = [
        Circuit::from_gates(2, [Gate::H(0)]),
        Circuit::from_gates(2, [Gate::T(0), Gate::H(1)]),
        Circuit::from_gates(2, [Gate::X(0), Gate::S(1)]),
    ];
    for p in &programs {
        let report = s.serve_program(p).expect("bounded library serves");
        assert!(report.overall_latency_ns > 0.0);
        assert!(s.cache_len() <= 2, "capacity bound violated");
    }
    assert!(s.library().stats().evictions > 0, "rotation must evict");
}

#[test]
fn unindexed_bulk_import_still_serves_exact_hits() {
    // Caches loaded from disk carry no unitaries: entries must hit on
    // exact keys even though they cannot act as warm-start neighbors.
    let warm = session(2);
    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    warm.compile_program(&program).expect("compiles");
    let exported = warm.cache_snapshot();

    let cold = session(2);
    cold.import_cache(exported);
    assert_eq!(cold.library().indexed_len(), 0, "plain import is unindexed");
    let report = cold.serve_program(&program).expect("serves from import");
    assert_eq!(report.n_compiled, 0, "exact keys hit without the index");
    assert_eq!(report.coverage.rate(), 1.0);
}

#[test]
fn nearest_neighbor_is_exact_for_small_libraries() {
    // With k >= the library size the bucketed retrieval degenerates to a
    // full scan, so `nearest` must agree with brute force.
    let lib = PulseLibrary::new();
    let thetas = [0.11, 0.58, 1.02, 1.49, 2.2, 2.9];
    let us: Vec<Mat> = thetas
        .iter()
        .map(|&t| circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, t), Gate::H(0)])))
        .collect();
    for u in &us {
        lib.insert_indexed(
            UnitaryKey::canonical(u, 1),
            u,
            accqoc_repro::accqoc::CachedPulse {
                pulse: Pulse::zeros(2, 4, 1.0),
                latency_ns: 4.0,
                iterations: 1,
                n_qubits: 1,
            },
        );
    }
    let query = circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, 1.1), Gate::H(0)]));
    let got = lib
        .nearest(&query, 1, us.len(), SimilarityFn::TraceOverlap)
        .expect("non-empty");
    let brute = us
        .iter()
        .map(|u| SimilarityFn::TraceOverlap.distance(&query, u))
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert_eq!(got.key, UnitaryKey::canonical(&us[brute.0], 1));
    assert!((got.distance - brute.1).abs() < 1e-12);
}
