//! The unified error hierarchy, exercised end to end: builder
//! validation, model-set domain errors, stage-ordering errors, cache
//! persistence errors, and `Display`/`source()` round-trips.

use std::error::Error as _;

use accqoc_repro::accqoc::{Error, ModelSet, PulseCache, MAX_MODEL_QUBITS};
use accqoc_repro::linalg::Mat;
use accqoc_repro::prelude::*;

#[test]
fn builder_missing_topology_is_a_builder_error() {
    let e = Session::builder().build().unwrap_err();
    assert!(matches!(e, Error::Builder { field: "topology" }));
    let shown = e.to_string();
    assert!(
        shown.contains("topology"),
        "message should name the field: {shown}"
    );
    assert!(e.source().is_none(), "builder errors have no deeper cause");
}

#[test]
fn builder_rejects_nonsensical_warm_threshold() {
    for bad in [-1.0, f64::NAN] {
        let e = Session::builder()
            .topology(Topology::linear(2))
            .warm_threshold(bad)
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }), "threshold {bad}");
    }
    // Zero is a legal (maximally conservative) gate.
    assert!(Session::builder()
        .topology(Topology::linear(2))
        .warm_threshold(0.0)
        .build()
        .is_ok());
}

#[test]
fn over_wide_group_is_rejected_with_context() {
    let session = Session::builder()
        .topology(Topology::linear(3))
        .build()
        .unwrap();
    let e = session
        .compile_unitary(&Mat::identity(8), 3, None)
        .unwrap_err();
    match &e {
        Error::GroupTooWide { n_qubits, max } => {
            assert_eq!(*n_qubits, 3);
            assert_eq!(*max, 2);
        }
        other => panic!("expected GroupTooWide, got {other:?}"),
    }
    let shown = e.to_string();
    assert!(shown.contains('3') && shown.contains('2'), "{shown}");
}

#[test]
fn zero_qubit_group_is_an_error_not_an_underflow_panic() {
    // Regression: `ModelSet::for_qubits(0)` used to index `n_qubits - 1`
    // and panic on usize underflow.
    let models = ModelSet::spin(2).unwrap();
    assert!(matches!(models.for_qubits(0), Err(Error::EmptyGroup)));

    let session = Session::builder()
        .topology(Topology::linear(2))
        .build()
        .unwrap();
    let e = session
        .compile_unitary(&Mat::identity(1), 0, None)
        .unwrap_err();
    assert!(matches!(e, Error::EmptyGroup));
    assert!(e.to_string().contains("zero qubits"));
}

#[test]
fn model_set_constructor_validates_its_domain() {
    assert!(matches!(
        ModelSet::spin(0),
        Err(Error::InvalidConfig { .. })
    ));
    assert!(matches!(
        ModelSet::spin(MAX_MODEL_QUBITS + 1),
        Err(Error::InvalidConfig { .. })
    ));
    let e = ModelSet::spin(9).unwrap_err();
    assert!(
        e.to_string().contains('9'),
        "message should echo the bad arity: {e}"
    );
}

#[test]
fn latency_before_compile_reports_uncovered_group() {
    let session = Session::builder()
        .topology(Topology::linear(2))
        .build()
        .unwrap();
    let grouped = session.front_end(&Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]));
    let e = session.latency(&grouped).unwrap_err();
    assert!(matches!(e, Error::UncoveredGroup { .. }));
    assert!(e.to_string().contains("compile stage"));
}

#[test]
fn infeasible_compilation_chains_to_the_latency_error() {
    // A 1-step cap cannot realize an X gate (needs ~10 ns): the pipeline
    // error must wrap the latency-search failure as its source.
    let session = Session::builder()
        .topology(Topology::linear(2))
        .search(LatencySearch {
            min_steps: 1,
            max_steps: 1,
            ..LatencySearch::default()
        })
        .build()
        .unwrap();
    let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
    let e = session.compile_unitary(&x, 1, None).unwrap_err();
    match &e {
        Error::CompileFailed { n_qubits, .. } => assert_eq!(*n_qubits, 1),
        other => panic!("expected CompileFailed, got {other:?}"),
    }
    let source = e
        .source()
        .expect("compile failures carry the latency error");
    assert!(source.to_string().contains("fidelity target"), "{source}");
    // Display includes both layers of context.
    let shown = e.to_string();
    assert!(
        shown.contains("1-qubit group") && shown.contains("fidelity"),
        "{shown}"
    );
}

#[test]
fn cache_errors_flow_through_the_unified_type() {
    let e = PulseCache::from_json("definitely not json").unwrap_err();
    assert!(matches!(e, Error::Json(_)));
    assert!(e.source().is_some(), "json errors expose the parse failure");

    let missing = std::env::temp_dir()
        .join("accqoc_error_paths")
        .join("nope.json");
    let e = PulseCache::load(&missing).unwrap_err();
    assert!(matches!(e, Error::Io(_)));
    assert!(
        e.source().is_some(),
        "io errors expose the underlying error"
    );
}

#[test]
fn qasm_errors_convert_into_the_unified_type() {
    let parse_err = accqoc_repro::circuit::parse_qasm("qreg q[2]; frobnicate q[0];").unwrap_err();
    let unified: Error = parse_err.into();
    assert!(matches!(unified, Error::Qasm(_)));
    assert!(unified.to_string().contains("qasm"));
    assert!(unified.source().is_some());
}

#[test]
fn qasm_rejects_each_kind_of_malformed_gate_line() {
    use accqoc_repro::circuit::parse_qasm;
    // (source, what the message should mention)
    let cases: [(&str, &str); 6] = [
        ("qreg q[2]; frobnicate q[0];", "frobnicate"),
        ("qreg q[2]; h q[9];", "out of range"),
        ("qreg q[2]; h r[0];", "unknown register"),
        ("qreg q[2]; cx q[0];", "expects"),
        ("qreg q[2]; rz(pi/0x) q[0];", "expression"),
        ("qreg q[2]; h q0;", "expected reg[idx]"),
    ];
    for (source, needle) in cases {
        let e = parse_qasm(source).unwrap_err();
        let shown = e.to_string();
        assert!(
            shown.to_lowercase().contains(&needle.to_lowercase()),
            "{source:?} → {shown:?} should mention {needle:?}"
        );
        assert!(shown.contains("line"), "errors locate the line: {shown}");
    }
}

#[test]
fn truncated_cache_files_error_instead_of_loading_garbage() {
    // Persist a real cache, then truncate it at several byte counts:
    // every prefix must fail as Json or load the complete file, never
    // panic or return a silently short cache.
    let session = Session::builder()
        .topology(Topology::linear(2))
        .build()
        .unwrap();
    session
        .compile_program(&Circuit::from_gates(2, [Gate::H(0)]))
        .unwrap();
    let full = session.cache_snapshot().to_json();
    let dir = std::env::temp_dir().join("accqoc_truncated_cache");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.json");
    for keep in [0, 1, full.len() / 4, full.len() / 2, full.len() - 2] {
        let mut truncated = full.clone();
        truncated.truncate(keep);
        std::fs::write(&path, &truncated).unwrap();
        let e = PulseCache::load(&path).unwrap_err();
        assert!(matches!(e, Error::Json(_)), "{keep} bytes kept: {e}");
    }
    // The untruncated file still loads.
    std::fs::write(&path, &full).unwrap();
    assert_eq!(PulseCache::load(&path).unwrap().len(), 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn verify_report_round_trips_and_rejects_malformed_json() {
    use accqoc_repro::accqoc::VerifyReport;
    let session = Session::builder()
        .topology(Topology::linear(2))
        .build()
        .unwrap();
    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    session.compile_program(&program).unwrap();
    let report = session.verify_program(&program).unwrap();

    // Bit-exact JSON round trip (fidelities survive shortest-f64 text).
    let restored = VerifyReport::from_json(&report.to_json()).unwrap();
    assert_eq!(restored, report);

    // Malformed documents surface as unified Json errors.
    for bad in [
        "not json",
        "{}",
        "{\"passed\": \"yes\"}",
        "{\"groups\": [{\"key\": \"zz\"}]}",
    ] {
        let e = VerifyReport::from_json(bad).unwrap_err();
        assert!(matches!(e, Error::Json(_)), "{bad:?} → {e:?}");
    }
    // Truncation of a valid report also errors.
    let text = report.to_json();
    let mut truncated = text.clone();
    truncated.truncate(text.len() / 2);
    assert!(VerifyReport::from_json(&truncated).is_err());
}

#[test]
fn examples_pattern_boxed_error_interop() {
    // The examples return Box<dyn Error>; `?` must work on every stage.
    fn pipeline() -> Result<f64, Box<dyn std::error::Error>> {
        let session = Session::builder().topology(Topology::linear(2)).build()?;
        let grouped = session.front_end(&Circuit::from_gates(2, [Gate::H(0)]));
        let lookup = session.lookup(&grouped);
        session.compile(&lookup)?;
        Ok(session.latency(&grouped)?.overall_latency_ns)
    }
    assert!(pipeline().unwrap() > 0.0);
}

#[test]
fn capacity_smaller_than_unique_groups_is_a_typed_early_error() {
    // The batch pipeline needs every unique group cached at once for its
    // latency stage. On a library too small for the program, it must
    // refuse up front with CapacityExceeded — before burning any GRAPE
    // iterations — instead of evicting its own pulses mid-pipeline and
    // surfacing a confusing UncoveredGroup later.
    let session = Session::builder()
        .topology(Topology::linear(3))
        .library_capacity(1)
        .build()
        .unwrap();
    let program = accqoc_repro::workloads::qft(3);
    let required = session.front_end(&program).targets.len();
    assert!(required > 1, "qft_3 must exceed the capacity bound");

    let e = session.compile_program(&program).unwrap_err();
    match &e {
        Error::CapacityExceeded {
            capacity,
            required: r,
        } => {
            assert_eq!(*capacity, 1);
            assert_eq!(*r, required);
        }
        other => panic!("expected CapacityExceeded, got {other:?}"),
    }
    // The rejection happened before any compile: the library is empty.
    assert_eq!(session.cache_len(), 0, "no pulses may be compiled");
    let shown = e.to_string();
    assert!(
        shown.contains("capacity 1") && shown.contains(&required.to_string()),
        "message should carry both numbers: {shown}"
    );
    assert!(e.source().is_none(), "capacity errors have no deeper cause");

    // A program that fits the bound still compiles on the same session…
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    let small = Session::builder()
        .topology(Topology::linear(2))
        .grape(grape)
        .library_capacity(1)
        .build()
        .unwrap();
    let tiny = Circuit::from_gates(2, [Gate::H(0)]);
    assert_eq!(small.front_end(&tiny).targets.len(), 1);
    assert!(small.compile_program(&tiny).is_ok());
    // …and the online serve path handles any capacity (see
    // tests/library_serve.rs for the capacity-0 case).
    assert!(small.serve_program(&tiny).is_ok());
}
