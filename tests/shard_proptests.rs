//! Property tests of the consistent-hash shard ring: routing
//! determinism, the balance bound the router's placement relies on, and
//! the minimal-movement invariant rebalancing is priced against
//! (seed-pinnable via `ACCQOC_PROPTEST_SEED`; a failure prints the seed
//! in effect — see the `proptest` compat crate).

use accqoc_repro::accqoc::{plan_resize, ShardKey, ShardRing, DEFAULT_VNODES};
use proptest::prelude::*;

proptest! {
    /// Routing is a pure function of (key, shard count, vnode count):
    /// two independently constructed rings — as in two processes, or
    /// one process across a restart — agree on every key. The durable
    /// tier depends on this: a worker restarted from its data dir must
    /// own exactly the widths it owned before.
    #[test]
    fn routing_is_deterministic_across_ring_rebuilds(
        shards in 1usize..9,
        vnodes in 1usize..129,
        keys in proptest::collection::vec(0u64..1_000_000, 1..64),
    ) {
        let a = ShardRing::with_vnodes(shards, vnodes);
        let b = ShardRing::with_vnodes(shards, vnodes);
        for &raw in &keys {
            let key = ShardKey::dimension_class(raw as usize);
            prop_assert_eq!(a.route(key), b.route(key));
            prop_assert!(a.route(key) < shards);
        }
    }

    /// The balance bound: at the default vnode count, no shard's arc
    /// share exceeds 1.3x the smallest shard's. (The point salt was
    /// chosen for this — the worst max/min ratio across 2..=8 shards is
    /// 1.1341, leaving headroom under the gated 1.3.)
    #[test]
    fn arc_shares_stay_within_the_balance_bound(shards in 2usize..9) {
        let ring = ShardRing::with_vnodes(shards, DEFAULT_VNODES);
        let shares = ring.ownership_shares();
        prop_assert_eq!(shares.len(), shards);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "shares must sum to 1, got {}", sum);
        let max = shares.iter().cloned().fold(f64::MIN, f64::max);
        let min = shares.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(min > 0.0, "a shard owns no arc at {} shards", shards);
        prop_assert!(
            max / min <= 1.3,
            "balance bound violated at {} shards: max/min = {:.4}",
            shards,
            max / min
        );
    }

    /// Minimal movement: growing the ring N -> N+1 relocates only keys
    /// that land on the NEW shard; every key that moves at all moves to
    /// shard N. (Vnode positions depend only on (shard, vnode), so
    /// adding a shard adds points without disturbing existing ones.)
    #[test]
    fn growth_moves_keys_only_onto_the_new_shard(
        shards in 1usize..8,
        keys in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let old = ShardRing::new(shards);
        let new = ShardRing::new(shards + 1);
        for &raw in &keys {
            let key = ShardKey::dimension_class(raw as usize);
            let (before, after) = (old.route(key), new.route(key));
            if before != after {
                prop_assert!(
                    after == shards,
                    "key {} moved {} -> {}, not onto the new shard",
                    raw,
                    before,
                    after
                );
            }
        }
    }

    /// `plan_resize` is exactly the set of moved keys: one move entry
    /// per (width, from, to) triple with the instance count, nothing for
    /// keys that stay put — and under a grow, every destination is the
    /// new shard (the executable form of minimal movement).
    #[test]
    fn plan_resize_matches_per_key_routing(
        shards in 1usize..8,
        classes in proptest::collection::vec(1usize..9, 1..64),
    ) {
        let old = ShardRing::new(shards);
        let new = ShardRing::new(shards + 1);
        let plan = plan_resize(&old, &new, &classes);
        let mut planned = 0;
        for m in &plan {
            let key = ShardKey::dimension_class(m.n_qubits);
            prop_assert_eq!(old.route(key), m.from);
            prop_assert_eq!(new.route(key), m.to);
            prop_assert!(m.to == shards, "grow must move onto the new shard only");
            planned += m.entries;
        }
        let moved = classes
            .iter()
            .filter(|&&w| {
                let key = ShardKey::dimension_class(w);
                old.route(key) != new.route(key)
            })
            .count();
        prop_assert_eq!(planned, moved);
    }
}

/// The routes the deployment docs, the chaos test, and the bench check
/// pin: dimension classes 1..=8 at the shard counts the walkthroughs
/// use. A change here is a ring-format break — existing shard stores
/// would no longer match their owners.
#[test]
fn pinned_golden_routes() {
    let route_all = |shards: usize| -> Vec<usize> {
        let ring = ShardRing::new(shards);
        (1..=8)
            .map(|w| ring.route(ShardKey::dimension_class(w)))
            .collect()
    };
    assert_eq!(route_all(1), vec![0; 8]);
    assert_eq!(route_all(2), vec![0, 0, 1, 1, 0, 1, 1, 0]);
    assert_eq!(route_all(3), vec![0, 2, 1, 2, 0, 1, 2, 0]);
    assert_eq!(route_all(4), vec![0, 2, 3, 3, 0, 1, 2, 0]);
}
