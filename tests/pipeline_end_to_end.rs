//! End-to-end integration: program → mapping → grouping → GRAPE pulses →
//! latency, with physical verification that cached pulses realize their
//! groups' unitaries.

use accqoc_repro::accqoc::collect_category;
use accqoc_repro::grape::{infidelity, total_unitary};
use accqoc_repro::prelude::*;
use accqoc_repro::workloads::qft;

fn small_session() -> Session {
    let mut grape = GrapeOptions::default();
    grape.stop.max_iters = 250;
    Session::builder()
        .topology(Topology::linear(3))
        .grape(grape)
        .build()
        .expect("valid session config")
}

#[test]
fn qft3_compiles_with_latency_reduction() {
    let session = small_session();
    let result = session.compile_program(&qft(3)).expect("qft3 compiles");
    assert!(result.overall_latency_ns > 0.0);
    assert!(
        result.latency_reduction() > 1.2,
        "QOC should beat gate-based concatenation: {:.2}x",
        result.latency_reduction()
    );
    assert!(result.grouped.is_topologically_sound());
    // Everything a second run needs is cached.
    let again = session.compile_program(&qft(3)).unwrap();
    assert_eq!(again.dynamic_iterations, 0);
    assert_eq!(again.coverage.covered, again.coverage.total);
}

#[test]
fn cached_pulses_realize_their_unitaries() {
    // The core physical contract: every pulse in the cache, replayed on
    // the device model, reproduces its group's canonical unitary to the
    // paper's 1e-4 infidelity target.
    let session = small_session();
    let program = Circuit::from_gates(
        3,
        [
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::T(1),
            Gate::Cx(1, 2),
            Gate::Tdg(2),
            Gate::H(2),
        ],
    );
    session.compile_program(&program).unwrap();

    let cache = session.cache_snapshot();
    let (canonical, keys, _) = collect_category(&session, std::slice::from_ref(&program));
    assert!(!keys.is_empty());
    let mut checked = 0;
    for ((target, n_qubits), key) in canonical.iter().zip(&keys) {
        let entry = cache.lookup(key).expect("group compiled");
        let model = session
            .models()
            .for_qubits(*n_qubits)
            .expect("model exists");
        let realized = total_unitary(model, &entry.pulse);
        let inf = infidelity(target, &realized);
        assert!(
            inf <= 1.2e-4,
            "pulse infidelity {inf} for {n_qubits}-qubit group"
        );
        assert!((entry.pulse.latency_ns() - entry.latency_ns).abs() < 1e-9);
        checked += 1;
    }
    assert!(
        checked >= 2,
        "expected multiple unique groups, got {checked}"
    );
}

#[test]
fn group_latencies_bound_overall_latency() {
    let session = small_session();
    let result = session.compile_program(&qft(3)).unwrap();
    // Overall latency is at least the longest single group and at most the
    // serial sum of all groups.
    let cache = session.cache_snapshot();
    let latencies: Vec<f64> = cache.iter().map(|(_, e)| e.latency_ns).collect();
    let max = latencies.iter().copied().fold(0.0, f64::max);
    let sum: f64 = result
        .grouped
        .groups
        .iter()
        .map(|_| max) // conservative per-instance bound
        .sum();
    assert!(result.overall_latency_ns >= max - 1e-9);
    assert!(result.overall_latency_ns <= sum + 1e-9);
}

#[test]
fn precompile_then_cover_unseen_program() {
    let session = small_session();
    // Profile on two programs; evaluate on a third sharing structure.
    let profile = vec![
        Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]),
        Circuit::from_gates(3, [Gate::Cx(1, 2), Gate::H(2), Gate::Cx(1, 2)]),
    ];
    session.precompile(&profile, PrecompileOrder::Mst).unwrap();
    let pre_size = session.cache_len();
    assert!(pre_size >= 2);

    let unseen = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1), Gate::Cx(1, 2)]);
    let coverage = session.coverage_of(&unseen);
    assert!(
        coverage.covered > 0,
        "profiled groups should cover part of the program"
    );
    let result = session.compile_program(&unseen).unwrap();
    assert!(result.coverage.rate() > 0.0);
    assert!(session.cache_len() >= pre_size);
}

#[test]
fn deterministic_compilation_across_runs() {
    let run = || {
        let session = small_session();
        let r = session.compile_program(&qft(3)).unwrap();
        (
            r.overall_latency_ns,
            r.dynamic_iterations,
            session.cache_snapshot().to_json(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "cache JSON should be byte-identical across runs");
}

#[test]
fn swap_policy_vs_map_policy_differ() {
    use accqoc_repro::group::SwapMode;
    // A program that needs routing on a line → swaps appear.
    let program = Circuit::from_gates(3, [Gate::Cx(0, 2), Gate::H(1), Gate::Cx(0, 2)]);

    let map_session = Session::builder()
        .topology(Topology::linear(3))
        .policy(GroupingPolicy::new(SwapMode::Map, 2, 4))
        .build()
        .unwrap();
    let map_result = map_session.compile_program(&program).unwrap();

    let swap_session = Session::builder()
        .topology(Topology::linear(3))
        .policy(GroupingPolicy::new(SwapMode::Swap, 2, 4))
        .build()
        .unwrap();
    let swap_result = swap_session.compile_program(&program).unwrap();

    // Both compile and produce positive latencies; the decomposition
    // difference is visible in the group structure.
    assert!(map_result.overall_latency_ns > 0.0);
    assert!(swap_result.overall_latency_ns > 0.0);
    assert!(map_result.swap_count > 0 || swap_result.swap_count > 0);
}

#[test]
fn staged_reports_expose_the_pipeline() {
    // The redesign's observability contract: the staged API reports the
    // same numbers the one-shot path folds together.
    let session = small_session();
    let program = qft(3);

    let decomposed = session.decompose(&program);
    let mapped = session.map(&decomposed);
    let grouped = session.group(&mapped);
    let lookup = session.lookup(&grouped);
    assert_eq!(lookup.coverage.total, grouped.n_instances());
    let compiled = session.compile(&lookup).unwrap();
    assert_eq!(compiled.compiled.len(), lookup.uncovered.len());
    let latency = session.latency(&grouped).unwrap();

    let oneshot = small_session().compile_program(&program).unwrap();
    assert_eq!(oneshot.overall_latency_ns, latency.overall_latency_ns);
    assert_eq!(oneshot.gate_based_latency_ns, latency.gate_based_latency_ns);
    assert_eq!(oneshot.dynamic_iterations, compiled.dynamic_iterations);
    assert_eq!(oneshot.swap_count, grouped.swap_count);
    assert_eq!(oneshot.crosstalk, grouped.crosstalk);
}
