//! End-to-end integration: program → mapping → grouping → GRAPE pulses →
//! latency, with physical verification that cached pulses realize their
//! groups' unitaries.

use accqoc_repro::accqoc::{
    collect_category, precompile, AccQocCompiler, AccQocConfig, PrecompileOrder, PulseCache,
};
use accqoc_repro::circuit::{Circuit, Gate};
use accqoc_repro::grape::{infidelity, total_unitary};
use accqoc_repro::hw::Topology;
use accqoc_repro::workloads::qft;

fn small_compiler() -> AccQocCompiler {
    let mut config = AccQocConfig::for_topology(Topology::linear(3));
    config.grape.stop.max_iters = 250;
    AccQocCompiler::new(config)
}

#[test]
fn qft3_compiles_with_latency_reduction() {
    let compiler = small_compiler();
    let mut cache = PulseCache::new();
    let result = compiler.compile_program(&qft(3), &mut cache).expect("qft3 compiles");
    assert!(result.overall_latency_ns > 0.0);
    assert!(
        result.latency_reduction() > 1.2,
        "QOC should beat gate-based concatenation: {:.2}x",
        result.latency_reduction()
    );
    assert!(result.grouped.is_topologically_sound());
    // Everything a second run needs is cached.
    let again = compiler.compile_program(&qft(3), &mut cache).unwrap();
    assert_eq!(again.dynamic_iterations, 0);
    assert_eq!(again.coverage.covered, again.coverage.total);
}

#[test]
fn cached_pulses_realize_their_unitaries() {
    // The core physical contract: every pulse in the cache, replayed on
    // the device model, reproduces its group's canonical unitary to the
    // paper's 1e-4 infidelity target.
    let compiler = small_compiler();
    let program = Circuit::from_gates(
        3,
        [Gate::H(0), Gate::Cx(0, 1), Gate::T(1), Gate::Cx(1, 2), Gate::Tdg(2), Gate::H(2)],
    );
    let mut cache = PulseCache::new();
    compiler.compile_program(&program, &mut cache).unwrap();

    let (canonical, keys, _) =
        collect_category(&compiler, std::slice::from_ref(&program));
    assert!(!keys.is_empty());
    let mut checked = 0;
    for ((target, n_qubits), key) in canonical.iter().zip(&keys) {
        let entry = cache.lookup(key).expect("group compiled");
        let model = compiler.models().for_qubits(*n_qubits);
        let realized = total_unitary(model, &entry.pulse);
        let inf = infidelity(target, &realized);
        assert!(inf <= 1.2e-4, "pulse infidelity {inf} for {n_qubits}-qubit group");
        assert!((entry.pulse.latency_ns() - entry.latency_ns).abs() < 1e-9);
        checked += 1;
    }
    assert!(checked >= 2, "expected multiple unique groups, got {checked}");
}

#[test]
fn group_latencies_bound_overall_latency() {
    let compiler = small_compiler();
    let mut cache = PulseCache::new();
    let result = compiler.compile_program(&qft(3), &mut cache).unwrap();
    // Overall latency is at least the longest single group and at most the
    // serial sum of all groups.
    let latencies: Vec<f64> = cache.iter().map(|(_, e)| e.latency_ns).collect();
    let max = latencies.iter().copied().fold(0.0, f64::max);
    let sum: f64 = result
        .grouped
        .groups
        .iter()
        .map(|_| max) // conservative per-instance bound
        .sum();
    assert!(result.overall_latency_ns >= max - 1e-9);
    assert!(result.overall_latency_ns <= sum + 1e-9);
}

#[test]
fn precompile_then_cover_unseen_program() {
    let compiler = small_compiler();
    // Profile on two programs; evaluate on a third sharing structure.
    let profile = vec![
        Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]),
        Circuit::from_gates(3, [Gate::Cx(1, 2), Gate::H(2), Gate::Cx(1, 2)]),
    ];
    let mut cache = PulseCache::new();
    precompile(&compiler, &profile, &mut cache, PrecompileOrder::Mst).unwrap();
    let pre_size = cache.len();
    assert!(pre_size >= 2);

    let unseen = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1), Gate::Cx(1, 2)]);
    let coverage = compiler.coverage_of(&unseen, &cache);
    assert!(coverage.covered > 0, "profiled groups should cover part of the program");
    let result = compiler.compile_program(&unseen, &mut cache).unwrap();
    assert!(result.coverage.rate() > 0.0);
    assert!(cache.len() >= pre_size);
}

#[test]
fn deterministic_compilation_across_runs() {
    let run = || {
        let compiler = small_compiler();
        let mut cache = PulseCache::new();
        let r = compiler.compile_program(&qft(3), &mut cache).unwrap();
        (r.overall_latency_ns, r.dynamic_iterations, cache.to_json().unwrap())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "cache JSON should be byte-identical across runs");
}

#[test]
fn swap_policy_vs_map_policy_differ() {
    use accqoc_repro::group::{GroupingPolicy, SwapMode};
    // A program that needs routing on a line → swaps appear.
    let program = Circuit::from_gates(3, [Gate::Cx(0, 2), Gate::H(1), Gate::Cx(0, 2)]);

    let mut map_cfg = AccQocConfig::for_topology(Topology::linear(3));
    map_cfg.policy = GroupingPolicy::new(SwapMode::Map, 2, 4);
    let map_compiler = AccQocCompiler::new(map_cfg);
    let mut cache1 = PulseCache::new();
    let map_result = map_compiler.compile_program(&program, &mut cache1).unwrap();

    let mut swap_cfg = AccQocConfig::for_topology(Topology::linear(3));
    swap_cfg.policy = GroupingPolicy::new(SwapMode::Swap, 2, 4);
    let swap_compiler = AccQocCompiler::new(swap_cfg);
    let mut cache2 = PulseCache::new();
    let swap_result = swap_compiler.compile_program(&program, &mut cache2).unwrap();

    // Both compile and produce positive latencies; the decomposition
    // difference is visible in the group structure.
    assert!(map_result.overall_latency_ns > 0.0);
    assert!(swap_result.overall_latency_ns > 0.0);
    assert!(map_result.swap_count > 0 || swap_result.swap_count > 0);
}
