//! Serving-path acceptance for the parameterized UCCSD family: replay a
//! θ-grid sweep through `Session::serve_program` and hold it to the
//! high-warm-share bar the family was designed for, then verify a
//! sampled subset of the served programs semantically.

use accqoc_repro::accqoc::Session;
use accqoc_repro::hw::Topology;
use accqoc_repro::workloads::{default_theta_grid, uccsd_family};

fn session(n_qubits: usize) -> Session {
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    Session::builder()
        .topology(Topology::linear(n_qubits))
        .grape(grape)
        .build()
        .expect("valid session")
}

#[test]
fn theta_sweep_acceptance() {
    // One excitation slice per program keeps the stream cheap while
    // still walking the whole default θ-grid: the first grid point is
    // the only scratch compile, every later one must warm-start from
    // its neighbor. That pins the family's headline property — warm
    // share ≥ 0.80, far above the fixed golden stream's 0.550.
    let s = session(3);
    let family = uccsd_family(3, 1, &default_theta_grid());
    for program in &family {
        let report = s.serve_program(&program.circuit).expect("serves");
        assert_eq!(
            report.n_compiled + report.groups.iter().filter(|g| g.hit).count(),
            report.groups.len(),
            "{}: every group is a hit or a compile",
            program.name
        );
    }
    let stats = s.library().stats();
    assert!(stats.misses > 0, "a cold sweep must compile something");
    assert!(
        stats.warm_share() >= 0.80,
        "warm-start share {:.3} below the 0.80 parameterized-workload bar \
         ({} warm / {} compiles)",
        stats.warm_share(),
        stats.warm_compiles,
        stats.misses
    );
    assert!(
        stats.mean_warm_iterations() < stats.mean_scratch_iterations(),
        "warm compiles must be cheaper: warm {:.1} vs scratch {:.1} mean iterations",
        stats.mean_warm_iterations(),
        stats.mean_scratch_iterations()
    );

    // Semantic verification over a sampled subset (first, middle, last
    // grid point): warm-started pulses must meet the same per-group
    // fidelity bar as scratch ones — warm seeding changes the starting
    // point, never the convergence target.
    for program in [
        &family[0],
        &family[family.len() / 2],
        &family[family.len() - 1],
    ] {
        let verify = s.verify_program(&program.circuit).expect("verifies");
        assert!(
            verify.passed,
            "{}: served pulses failed verification",
            program.name
        );
        assert!(
            verify.min_group_fidelity >= 0.99995,
            "{}: min group fidelity {:.7} below the 0.99995 bar",
            program.name,
            verify.min_group_fidelity
        );
    }

    // Replaying the sweep is pure exact hits.
    let misses_before = s.library().stats().misses;
    for program in &family {
        let report = s.serve_program(&program.circuit).expect("replay serves");
        assert_eq!(report.n_compiled, 0, "{}: replay must hit", program.name);
        assert_eq!(report.coverage.rate(), 1.0);
    }
    assert_eq!(s.library().stats().misses, misses_before);
}
