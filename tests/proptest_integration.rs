//! Property-based integration tests across crates: random circuits flow
//! through parsing, mapping, grouping, and dedup without violating the
//! pipeline's invariants.
//!
//! Reproducibility: each test draws from a deterministic per-test seed,
//! and a failure prints the seed in effect. To replay a failing case
//! sequence exactly, export `ACCQOC_PROPTEST_SEED=<printed seed>` and
//! re-run the single test (see the `proptest` compat crate).

use accqoc_repro::circuit::{circuit_unitary, parse_qasm, to_qasm, Circuit, Gate, UnitaryKey};
use accqoc_repro::group::{dedup_groups, divide_circuit, GroupingPolicy, SwapMode};
use accqoc_repro::hw::Topology;
use accqoc_repro::linalg::approx_eq_up_to_phase;
use accqoc_repro::map::{crosstalk_metric, map_circuit, MappingOptions};
use proptest::prelude::*;

/// Strategy: a random circuit over `n` qubits from the hardware-relevant
/// gate alphabet.
fn circuit_strategy(n_qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..8u8, 0..n_qubits, 0..n_qubits, -3.0f64..3.0).prop_filter_map(
        "distinct operands",
        move |(kind, a, b, angle)| {
            let g = match kind {
                0 => Gate::H(a),
                1 => Gate::T(a),
                2 => Gate::Tdg(a),
                3 => Gate::X(a),
                4 => Gate::Rz(a, angle),
                5 => Gate::Ry(a, angle),
                _ => {
                    if a == b {
                        return None;
                    }
                    if kind == 6 {
                        Gate::Cx(a, b)
                    } else {
                        Gate::Cz(a, b)
                    }
                }
            };
            Some(g)
        },
    );
    proptest::collection::vec(gate, 1..max_len)
        .prop_map(move |gates| Circuit::from_gates(n_qubits, gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qasm_roundtrip_random_circuits(c in circuit_strategy(3, 24)) {
        let parsed = parse_qasm(&to_qasm(&c)).expect("emitted qasm parses");
        let u1 = circuit_unitary(&c);
        let u2 = circuit_unitary(&parsed);
        prop_assert!(approx_eq_up_to_phase(&u1, &u2, 1e-9));
    }

    #[test]
    fn mapping_outputs_are_executable(c in circuit_strategy(5, 30)) {
        let topo = Topology::linear(5);
        let mapped = map_circuit(&c, &topo, &MappingOptions::default());
        for g in mapped.circuit.iter() {
            if g.arity() == 2 {
                let qs = g.qubits();
                prop_assert!(topo.connected(qs[0], qs[1]), "{g:?} not adjacent");
            }
            if let Gate::Cx(a, b) = g {
                prop_assert!(topo.cx_allowed(*a, *b), "cx({a},{b}) direction illegal");
            }
        }
        // Layout bookkeeping stays a permutation.
        let mut layout = mapped.final_layout.clone();
        layout.sort_unstable();
        layout.dedup();
        prop_assert_eq!(layout.len(), mapped.final_layout.len());
    }

    #[test]
    fn grouping_invariants_random_circuits(c in circuit_strategy(4, 40)) {
        for policy in [GroupingPolicy::map2b4l(), GroupingPolicy::new(SwapMode::Swap, 2, 2)] {
            let (grouped, processed) = divide_circuit(&c, &policy);
            prop_assert!(grouped.is_topologically_sound());
            // Exact gate coverage.
            let total: usize = grouped.groups.iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, processed.len());
            // Qubit budget respected; unitaries well-formed.
            for g in &grouped.groups {
                prop_assert!(g.n_qubits() <= policy.max_qubits);
                prop_assert!(g.unitary().is_unitary(1e-9));
            }
            // Latency DP is monotone in group costs.
            let base = grouped.overall_latency(|_| 1.0);
            let double = grouped.overall_latency(|_| 2.0);
            prop_assert!((double - 2.0 * base).abs() < 1e-9);
        }
    }

    #[test]
    fn dedup_classes_share_canonical_unitaries(c in circuit_strategy(4, 30)) {
        let (grouped, _) = divide_circuit(&c, &GroupingPolicy::map2b4l());
        let dedup = dedup_groups(&grouped.groups);
        // Every group's canonical key matches its representative's.
        for (i, &rep) in dedup.assignment.iter().enumerate() {
            let g = &grouped.groups[i];
            let r = &dedup.unique[rep];
            prop_assert_eq!(
                UnitaryKey::canonical(&g.unitary(), g.n_qubits()),
                UnitaryKey::canonical(&r.unitary(), r.n_qubits())
            );
        }
        prop_assert_eq!(dedup.frequencies().iter().sum::<usize>(), grouped.groups.len());
    }

    #[test]
    fn crosstalk_metric_bounded_by_pairs(c in circuit_strategy(5, 30)) {
        let topo = Topology::linear(5);
        let mapped = map_circuit(&c, &topo, &MappingOptions::default());
        let metric = crosstalk_metric(&mapped.circuit, &topo);
        let two_q = mapped.circuit.two_qubit_count();
        // Crude upper bound: all 2q-gate pairs interfering.
        prop_assert!(metric <= two_q * two_q);
    }
}
