//! Property tests of the unitary fingerprint and the bucketed top-k
//! retrieval (seed-pinnable via `ACCQOC_PROPTEST_SEED`; a failure prints
//! the seed in effect — see the `proptest` compat crate).

use accqoc_repro::accqoc::{CachedPulse, PulseLibrary, SimilarityFn, UnitaryFingerprint};
use accqoc_repro::circuit::{circuit_unitary, Circuit, Gate, UnitaryKey};
use accqoc_repro::grape::Pulse;
use accqoc_repro::linalg::{Mat, C64};
use proptest::prelude::*;

/// Strategy: a random 1- or 2-qubit unitary from a short random circuit.
fn unitary_strategy(n_qubits: usize, max_len: usize) -> impl Strategy<Value = Mat> {
    let gate = (0..6u8, 0..n_qubits, 0..n_qubits, -3.0f64..3.0).prop_filter_map(
        "distinct operands",
        move |(kind, a, b, angle)| {
            Some(match kind {
                0 => Gate::H(a),
                1 => Gate::T(a),
                2 => Gate::X(a),
                3 => Gate::Rz(a, angle),
                4 => Gate::Ry(a, angle),
                _ => {
                    if n_qubits < 2 || a == b {
                        return None;
                    }
                    Gate::Cx(a, b)
                }
            })
        },
    );
    proptest::collection::vec(gate, 1..max_len)
        .prop_map(move |gates| circuit_unitary(&Circuit::from_gates(n_qubits, gates)))
}

fn entry(n_qubits: usize) -> CachedPulse {
    CachedPulse {
        pulse: Pulse::zeros(2 * n_qubits, 4, 1.0),
        latency_ns: 4.0,
        iterations: 1,
        n_qubits,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fingerprint_distance_is_symmetric_and_zero_on_self(
        a in unitary_strategy(2, 10),
        b in unitary_strategy(2, 10),
    ) {
        let fa = UnitaryFingerprint::of(&a, 2);
        let fb = UnitaryFingerprint::of(&b, 2);
        prop_assert_eq!(fa.distance(&fb).to_bits(), fb.distance(&fa).to_bits());
        prop_assert_eq!(fa.distance(&fa), 0.0);
        prop_assert!(fa.distance(&fb) >= 0.0);
    }

    #[test]
    fn fingerprint_is_global_phase_invariant(
        u in unitary_strategy(2, 10),
        theta in -3.0f64..3.0,
    ) {
        let fp = UnitaryFingerprint::of(&u, 2);
        let phased = UnitaryFingerprint::of(&u.scale(C64::cis(theta)), 2);
        prop_assert!(
            fp.distance(&phased) < 1e-9,
            "phase moved the fingerprint by {}",
            fp.distance(&phased)
        );
    }

    #[test]
    fn fingerprints_of_different_dimensions_are_infinitely_far(
        a in unitary_strategy(1, 6),
        b in unitary_strategy(2, 6),
    ) {
        let fa = UnitaryFingerprint::of(&a, 1);
        let fb = UnitaryFingerprint::of(&b, 2);
        prop_assert!(fa.distance(&fb).is_infinite());
    }

    #[test]
    fn top_k_retrieval_contains_the_true_nearest_neighbor(
        stored in proptest::collection::vec(unitary_strategy(1, 8), 1..7),
        query in unitary_strategy(1, 8),
    ) {
        // With k covering the library, the bucketed walk degenerates to
        // an exhaustive scan, so `nearest` must return exactly the
        // brute-force argmin of the exact similarity distance (with the
        // library's deterministic key tie-break).
        let lib = PulseLibrary::new();
        // Last insert wins on key collisions — mirror that in the oracle.
        let mut oracle: Vec<(UnitaryKey, Mat)> = Vec::new();
        for u in &stored {
            let key = UnitaryKey::canonical(u, 1);
            oracle.retain(|(k, _)| *k != key);
            oracle.push((key.clone(), u.clone()));
            lib.insert_indexed(key, u, entry(1));
        }
        let got = lib
            .nearest(&query, 1, stored.len(), SimilarityFn::TraceOverlap)
            .expect("library is non-empty");
        let best = oracle
            .iter()
            .map(|(k, u)| (k, SimilarityFn::TraceOverlap.distance(&query, u)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
            .expect("oracle is non-empty");
        prop_assert_eq!(got.distance.to_bits(), best.1.to_bits());
        prop_assert_eq!(&got.key, best.0);
    }
}
