//! End-to-end motivation test: AccQOC's latency reduction translates into
//! measurable fidelity improvement on the noisy simulator (paper §II-E).

use accqoc_repro::prelude::*;
use accqoc_repro::sim::{execute_noisy, latency_fidelity_comparison, ExecutionNoise};

fn deep_program() -> Circuit {
    let mut c = Circuit::new(3);
    for _ in 0..3 {
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::T(1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
    }
    c
}

#[test]
fn compiled_latency_reduction_improves_fidelity() {
    let session = Session::builder()
        .topology(Topology::linear(3))
        .build()
        .unwrap();
    let program = deep_program();
    let compiled = session.compile_program(&program).expect("compiles");
    assert!(compiled.latency_reduction() > 1.3);

    // Exaggerated decoherence so a short demo circuit shows the gap.
    let noise = ExecutionNoise {
        t1_us: accqoc_repro::hw::T1_US / 100.0,
        t2_us: accqoc_repro::hw::T2_US / 100.0,
        ..ExecutionNoise::decoherence_only()
    };
    let durations = session.gate_durations();
    let (gate_based, accqoc) = latency_fidelity_comparison(
        &program,
        |g| durations.gate_duration(g),
        compiled.overall_latency_ns,
        &noise,
    );
    assert!(
        accqoc.fidelity > gate_based.fidelity + 0.01,
        "expected a clear gap: accqoc {} vs gate-based {}",
        accqoc.fidelity,
        gate_based.fidelity
    );
    // Sanity: both are valid quantum states.
    assert!((gate_based.state.trace() - 1.0).abs() < 1e-8);
    assert!((accqoc.state.trace() - 1.0).abs() < 1e-8);
}

#[test]
fn zero_noise_execution_matches_ideal_regardless_of_latency() {
    let program = deep_program();
    let noise = ExecutionNoise {
        t1_us: f64::INFINITY,
        t2_us: f64::INFINITY,
        two_qubit_error: 0.0,
        single_qubit_error: 0.0,
    };
    let fast = execute_noisy(&program, |_| 1.0, &noise);
    let slow = execute_noisy(&program, |_| 1e6, &noise);
    assert!((fast.fidelity - 1.0).abs() < 1e-8);
    assert!((slow.fidelity - 1.0).abs() < 1e-8);
}

#[test]
fn gate_error_dominates_when_decoherence_is_off() {
    // With T1 = ∞, fidelity depends only on gate count — latency is free.
    let program = deep_program();
    let noise = ExecutionNoise {
        t1_us: f64::INFINITY,
        t2_us: f64::INFINITY,
        ..ExecutionNoise::melbourne()
    };
    let fast = execute_noisy(&program, |_| 1.0, &noise);
    let slow = execute_noisy(&program, |_| 1e4, &noise);
    assert!((fast.fidelity - slow.fidelity).abs() < 1e-9);
    assert!(fast.fidelity < 1.0, "gate errors must bite");
}
