//! Integration tests of the durable library tier: WAL + snapshot
//! recovery, crash edge cases, and the warm-start re-indexing of
//! persisted artifacts.

use std::path::{Path, PathBuf};

use accqoc_repro::accqoc::{
    caches_equivalent, CachedPulse, Error, PersistOptions, Session, SimilarityFn, WAL_FILE,
};
use accqoc_repro::circuit::{circuit_unitary, Circuit, Gate, UnitaryKey};
use accqoc_repro::grape::Pulse;
use accqoc_repro::hw::Topology;
use accqoc_repro::linalg::Mat;
use proptest::prelude::*;

/// A scratch directory unique to this test (process id + tag).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("accqoc-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_session(dir: &Path, snapshot_every: usize) -> Session {
    Session::builder()
        .topology(Topology::linear(3))
        .persistence_with(PersistOptions::new(dir).snapshot_every(snapshot_every))
        .build()
        .expect("durable session builds")
}

fn rz(theta: f64) -> Mat {
    circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, theta)]))
}

fn entry(n_qubits: usize, latency_ns: f64) -> CachedPulse {
    CachedPulse {
        pulse: Pulse::zeros(2 * n_qubits, 4, 1.0),
        latency_ns,
        iterations: 3,
        n_qubits,
    }
}

#[test]
fn missing_data_dir_is_a_cold_start_not_an_error() {
    let dir = scratch_dir("cold");
    let session = durable_session(&dir, 0);
    let report = session.recovery_report().expect("durable sessions report");
    assert_eq!(report.entries, 0);
    assert_eq!(report.snapshot_entries, 0);
    assert_eq!(report.wal_records, 0);
    assert!(dir.is_dir(), "open creates the directory");
    // Non-durable sessions have no report.
    let plain = Session::builder()
        .topology(Topology::linear(3))
        .build()
        .expect("plain session");
    assert!(plain.recovery_report().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_recovers_byte_identical_and_reindexed() {
    let dir = scratch_dir("roundtrip");
    let live = durable_session(&dir, 0);
    for k in 1..=4 {
        let u = rz(0.4 * k as f64);
        live.library()
            .insert_indexed(UnitaryKey::canonical(&u, 1), &u, entry(1, k as f64));
    }
    let pre_crash = live.cache_snapshot();
    let pre_indexed = live.library().indexed_len();
    drop(live); // crash: everything lives only in the WAL

    let recovered = durable_session(&dir, 0);
    let report = recovered.recovery_report().expect("report").clone();
    assert_eq!(report.snapshot_entries, 0, "no snapshot was ever written");
    assert_eq!(report.wal_records, 4);
    assert_eq!(report.entries, 4);
    assert_eq!(report.indexed, 4);
    // Byte-identical cache...
    assert_eq!(recovered.cache_snapshot().to_json(), pre_crash.to_json());
    // ...semantically equivalent under the oracle...
    let eq = caches_equivalent(
        recovered.models(),
        &pre_crash,
        &recovered.cache_snapshot(),
        1e-9,
        1e-9,
    )
    .expect("oracle runs");
    assert!(eq.equivalent(), "recovered cache must be equivalent");
    // ...and warm-start capable, not just exact-hit.
    assert_eq!(recovered.library().indexed_len(), pre_indexed);
    let near = recovered
        .library()
        .nearest(&rz(0.41), 1, 4, SimilarityFn::TraceOverlap)
        .expect("recovered index answers neighbor queries");
    assert_eq!(near.key, UnitaryKey::canonical(&rz(0.4), 1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_discarded_cleanly() {
    let dir = scratch_dir("torn");
    let live = durable_session(&dir, 0);
    for k in 1..=3 {
        let u = rz(0.5 * k as f64);
        live.library()
            .insert_indexed(UnitaryKey::canonical(&u, 1), &u, entry(1, k as f64));
    }
    drop(live);
    // Crash mid-append: chop a few bytes off the last record.
    let wal = dir.join(WAL_FILE);
    let len = std::fs::metadata(&wal).expect("wal exists").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal");
    file.set_len(len - 3).expect("truncate");
    drop(file);

    let recovered = durable_session(&dir, 0);
    let report = recovered.recovery_report().expect("report").clone();
    assert_eq!(report.wal_records, 2, "torn third record is dropped");
    assert!(report.wal_truncated_bytes > 0);
    assert_eq!(report.entries, 2);
    assert!(recovered.cache_contains(&UnitaryKey::canonical(&rz(0.5), 1)));
    assert!(!recovered.cache_contains(&UnitaryKey::canonical(&rz(1.5), 1)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_wal_record_is_a_typed_store_error() {
    let dir = scratch_dir("corrupt");
    let live = durable_session(&dir, 0);
    let u = rz(0.7);
    live.library()
        .insert_indexed(UnitaryKey::canonical(&u, 1), &u, entry(1, 2.0));
    drop(live);
    // Flip one payload byte of the (complete) record: the length still
    // matches, the checksum no longer does.
    let wal = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    let payload_start = 8 + 8; // magic + frame header
    bytes[payload_start + 4] ^= 0xFF;
    std::fs::write(&wal, &bytes).expect("write corrupted wal");

    let err = Session::builder()
        .topology(Topology::linear(3))
        .persistence(&dir)
        .build()
        .expect_err("corruption must not recover silently");
    match err {
        Error::Store(e) => {
            let shown = e.to_string();
            assert!(shown.contains("checksum"), "unexpected error: {shown}");
            assert!(shown.contains("0 records ok"), "unexpected error: {shown}");
        }
        other => panic!("expected Error::Store, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_plus_wal_replay_equals_pure_wal_replay() {
    let wal_only = scratch_dir("pure-wal");
    let compacted = scratch_dir("compacted");
    // Same mutation sequence on both; the compacted session snapshots
    // every 3 inserts (and once explicitly), the other never does.
    let a = durable_session(&wal_only, 0);
    let b = durable_session(&compacted, 3);
    for k in 1..=8 {
        let u = rz(0.3 * k as f64);
        let key = UnitaryKey::canonical(&u, 1);
        a.library()
            .insert_indexed(key.clone(), &u, entry(1, k as f64));
        b.library().insert_indexed(key, &u, entry(1, k as f64));
        if k == 5 {
            b.checkpoint().expect("explicit mid-sequence checkpoint");
        }
    }
    let reference = a.cache_snapshot().to_json();
    drop(a);
    drop(b);

    let ra = durable_session(&wal_only, 0);
    let rb = durable_session(&compacted, 3);
    let report_a = ra.recovery_report().expect("report").clone();
    let report_b = rb.recovery_report().expect("report").clone();
    assert_eq!(report_a.snapshot_entries, 0);
    assert!(
        report_b.snapshot_entries > 0,
        "compaction must have produced a snapshot"
    );
    assert!(report_b.wal_records < report_a.wal_records);
    assert_eq!(ra.cache_snapshot().to_json(), reference);
    assert_eq!(rb.cache_snapshot().to_json(), reference);
    assert_eq!(ra.library().indexed_len(), 8);
    assert_eq!(rb.library().indexed_len(), 8);
    let eq = caches_equivalent(
        ra.models(),
        &ra.cache_snapshot(),
        &rb.cache_snapshot(),
        1e-9,
        1e-9,
    )
    .expect("oracle runs");
    assert!(eq.equivalent());
    let _ = std::fs::remove_dir_all(&wal_only);
    let _ = std::fs::remove_dir_all(&compacted);
}

#[test]
fn save_cache_artifacts_reindex_on_load() {
    let dir = scratch_dir("artifact");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("library.json");
    let source = Session::builder()
        .topology(Topology::linear(3))
        .build()
        .expect("session");
    for k in 1..=3 {
        let u = rz(0.6 * k as f64);
        source
            .library()
            .insert_indexed(UnitaryKey::canonical(&u, 1), &u, entry(1, k as f64));
    }
    source.save_cache(&path).expect("save");

    let fresh = Session::builder()
        .topology(Topology::linear(3))
        .build()
        .expect("session");
    assert_eq!(fresh.load_cache(&path).expect("load"), 3);
    // The historical warm-start gap: entries used to come back
    // un-indexed. Now the artifact embeds the canonical unitaries and
    // load re-indexes every one.
    assert_eq!(fresh.library().indexed_len(), 3);
    assert!(fresh
        .library()
        .nearest(&rz(0.61), 1, 4, SimilarityFn::TraceOverlap)
        .is_some());
    assert_eq!(
        fresh.cache_snapshot().to_json(),
        source.cache_snapshot().to_json()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn served_programs_survive_restart_without_recompiles() {
    let dir = scratch_dir("serve");
    let mut grape = accqoc_repro::grape::GrapeOptions::default();
    grape.stop.max_iters = 150;
    let build = || {
        Session::builder()
            .topology(Topology::linear(2))
            .grape(grape.clone())
            .persistence(&dir)
            .build()
            .expect("durable session")
    };
    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Rz(1, 0.4)]);

    let live = build();
    let first = live.serve_program(&program).expect("first serving");
    assert!(first.n_compiled > 0, "cold library must compile");
    let artifact = live.cache_snapshot().to_json();
    drop(live); // crash without checkpoint

    let recovered = build();
    assert_eq!(recovered.cache_snapshot().to_json(), artifact);
    let replay = recovered.serve_program(&program).expect("replay");
    assert_eq!(
        replay.n_compiled, 0,
        "recovered library must serve the replay entirely from cache"
    );
    assert_eq!(recovered.cache_snapshot().to_json(), artifact);
    let _ = std::fs::remove_dir_all(&dir);
}

/// One random library mutation for the round-trip property test.
#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Touch(u8),
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted pick (compat proptest has no `prop_oneof`): mostly
    // inserts, some touches, the occasional full clear.
    (0..12u8, 1..24u8).prop_map(|(kind, tag)| match kind {
        0..=7 => Op::Insert(tag),
        8..=10 => Op::Touch(tag),
        _ => Op::Clear,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any insert/touch/clear sequence against a capacity-bounded
    /// durable library (evictions included) recovers byte-identically.
    #[test]
    fn random_mutation_sequences_round_trip_through_recovery(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        seq in 0u32..1_000_000,
    ) {
        let dir = scratch_dir(&format!("prop-{seq}"));
        let live = Session::builder()
            .topology(Topology::linear(3))
            .library_capacity(4)
            .persistence_with(PersistOptions::new(&dir).snapshot_every(0))
            .build()
            .expect("durable session");
        for op in &ops {
            match op {
                Op::Insert(tag) => {
                    let u = rz(0.1 * *tag as f64);
                    live.library().insert_indexed(
                        UnitaryKey::canonical(&u, 1),
                        &u,
                        entry(1, *tag as f64),
                    );
                }
                Op::Touch(tag) => {
                    let u = rz(0.1 * *tag as f64);
                    live.library().touch(&UnitaryKey::canonical(&u, 1));
                }
                Op::Clear => live.library().clear(),
            }
        }
        let reference = live.cache_snapshot().to_json();
        let indexed = live.library().indexed_len();
        drop(live);

        let recovered = Session::builder()
            .topology(Topology::linear(3))
            .library_capacity(4)
            .persistence_with(PersistOptions::new(&dir).snapshot_every(0))
            .build()
            .expect("recovery");
        prop_assert_eq!(recovered.cache_snapshot().to_json(), reference);
        prop_assert_eq!(recovered.library().indexed_len(), indexed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
