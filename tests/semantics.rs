//! Cross-crate semantic invariants: QASM round trips through the
//! pipeline, mapping preserves circuit function, grouping preserves the
//! program unitary.

use accqoc_repro::circuit::{circuit_unitary, parse_qasm, permute_qubits, to_qasm, Circuit, Gate};
use accqoc_repro::group::{divide_circuit, GroupingPolicy};
use accqoc_repro::hw::Topology;
use accqoc_repro::linalg::{approx_eq_up_to_phase, Mat};
use accqoc_repro::map::{map_circuit, MappingOptions};
use accqoc_repro::workloads::{gse, qft};

#[test]
fn qasm_roundtrip_preserves_unitary() {
    let circuits = [
        qft(3),
        gse(3, 1),
        Circuit::from_gates(
            3,
            [
                Gate::Ccx(0, 1, 2),
                Gate::Swap(0, 2),
                Gate::U3(1, 0.3, -0.7, 1.1),
            ],
        ),
    ];
    for c in circuits {
        let qasm = to_qasm(&c);
        let parsed = parse_qasm(&qasm).expect("emitted qasm parses");
        let u1 = circuit_unitary(&c);
        let u2 = circuit_unitary(&parsed);
        assert!(
            approx_eq_up_to_phase(&u1, &u2, 1e-9),
            "roundtrip changed the unitary (diff {})",
            u1.max_abs_diff(&u2)
        );
    }
}

/// Undoes the final layout of a mapped circuit by appending adjacent swaps
/// so that the physical unitary can be compared against the logical one.
fn unwind_layout(mapped: &mut Circuit, layout: &mut [usize], target: &[usize], topo: &Topology) {
    for logical in 0..target.len() {
        while layout[logical] != target[logical] {
            let cur = layout[logical];
            let want = target[logical];
            // Step along a shortest path.
            let next = topo
                .neighbors(cur)
                .into_iter()
                .min_by_key(|&n| topo.distance(n, want))
                .expect("connected topology");
            mapped.push(Gate::Swap(cur, next));
            for slot in layout.iter_mut() {
                if *slot == cur {
                    *slot = next;
                } else if *slot == next {
                    *slot = cur;
                }
            }
        }
    }
}

#[test]
fn mapping_preserves_semantics_on_small_line() {
    let topo = Topology::linear(3);
    let programs = [
        qft(3),
        Circuit::from_gates(3, [Gate::Cx(0, 2), Gate::T(1), Gate::Cx(2, 0), Gate::H(0)]),
    ];
    for logical in programs {
        let mapped = map_circuit(&logical, &topo, &MappingOptions::default());
        let mut physical = mapped.circuit.clone();
        let mut layout = mapped.final_layout.clone();
        unwind_layout(&mut physical, &mut layout, &mapped.initial_layout, &topo);
        assert_eq!(layout, mapped.initial_layout);

        // initial_layout is identity for linear devices here, so the
        // physical unitary should equal the logical one directly.
        let u_logical = circuit_unitary(&logical);
        let u_physical = circuit_unitary(&physical);
        assert!(
            approx_eq_up_to_phase(&u_logical, &u_physical, 1e-9),
            "mapping changed semantics (diff {})",
            u_logical.max_abs_diff(&u_physical)
        );
    }
}

#[test]
fn grouping_preserves_program_unitary() {
    // Multiplying the group unitaries back together (respecting the DAG)
    // must reproduce the full program unitary.
    let program = Circuit::from_gates(
        3,
        [
            Gate::H(0),
            Gate::Cx(0, 1),
            Gate::T(1),
            Gate::Cx(1, 2),
            Gate::H(2),
            Gate::Cx(0, 1),
        ],
    );
    for policy in GroupingPolicy::paper_policies() {
        let (grouped, processed) = divide_circuit(&program, &policy);
        // Rebuild: apply groups in topological order, embedding each
        // group's local unitary at its global qubits.
        let dim = 1 << processed.n_qubits();
        let mut rebuilt = Mat::identity(dim);
        for group in &grouped.groups {
            let local = group.unitary();
            let embedded =
                accqoc_repro::circuit::embed_unitary(&local, &group.qubits, processed.n_qubits());
            rebuilt = embedded.matmul(&rebuilt);
        }
        let direct = circuit_unitary(&processed);
        assert!(
            approx_eq_up_to_phase(&direct, &rebuilt, 1e-9),
            "{}: grouped product diverged (diff {})",
            policy.label(),
            direct.max_abs_diff(&rebuilt)
        );
    }
}

#[test]
fn permute_qubits_consistency_across_crates() {
    // The canonical-permutation machinery used by dedup must agree with
    // explicit circuit relabeling.
    let c = Circuit::from_gates(2, [Gate::Cx(0, 1), Gate::T(0), Gate::H(1)]);
    let u = circuit_unitary(&c);
    let relabeled = circuit_unitary(&c.remapped(|q| 1 - q));
    assert!(approx_eq_up_to_phase(
        &permute_qubits(&u, &[1, 0], 2),
        &relabeled,
        1e-10
    ));
}

#[test]
fn every_policy_covers_all_gates() {
    let program = gse(4, 1);
    for policy in GroupingPolicy::paper_policies() {
        let (grouped, processed) = divide_circuit(&program, &policy);
        let grouped_gates: usize = grouped.groups.iter().map(|g| g.len()).sum();
        assert_eq!(grouped_gates, processed.len(), "{}", policy.label());
        for g in &grouped.groups {
            assert!(g.n_qubits() <= policy.max_qubits, "{}", policy.label());
        }
    }
}
