//! The differential compile oracle: every compile engine in the
//! workspace — sequential [`Session::precompile`], the parallel engine at
//! a pinned and at the default partition plan, and the pre-Session
//! [`AccQocCompiler`] shim — must produce *semantically* equivalent
//! pulses: same covered groups, same realized unitaries, same latencies
//! within tolerance. Byte-equality of cache artifacts is checked
//! elsewhere (`tests/parallel_determinism.rs`); this file checks the
//! physics, which also holds across engines whose bytes legitimately
//! differ.
//!
//! [`Session::precompile`]: accqoc::Session::precompile
//! [`AccQocCompiler`]: accqoc::AccQocCompiler

use accqoc_repro::accqoc::{
    caches_equivalent, AccQocConfig, ParallelOptions, PrecompileOrder, PulseCache,
};
use accqoc_repro::prelude::*;
use accqoc_repro::workloads::golden_suite;

fn session() -> Session {
    let mut grape = GrapeOptions::default();
    grape.stop.max_iters = 200;
    Session::builder()
        .topology(Topology::linear(3))
        .grape(grape)
        .build()
        .expect("valid session")
}

/// A family of similar programs producing a multi-group category, the
/// same shape `tests/parallel_determinism.rs` uses.
fn programs() -> Vec<Circuit> {
    (1..=4)
        .map(|k| {
            Circuit::from_gates(
                3,
                [
                    Gate::Rz(0, 0.12 * k as f64),
                    Gate::H(0),
                    Gate::Cx(0, 1),
                    Gate::Rz(1, 0.05 * k as f64),
                ],
            )
        })
        .collect()
}

#[test]
fn all_compile_engines_are_semantically_equivalent() {
    let progs = programs();

    // Engine A: the sequential reference.
    let seq = session();
    seq.precompile(&progs, PrecompileOrder::Mst).unwrap();
    let seq_cache = seq.cache_snapshot();
    assert!(!seq_cache.is_empty());

    // Engine B: parallel, partition plan pinned to one part — must agree
    // with the sequential reference to 1e-9 on every latency and realize
    // identical unitaries (it walks the exact same warm-start chain).
    let pinned = session();
    let opts = ParallelOptions::threads(4).with_plan_parts(1);
    pinned.precompile_parallel_with(&progs, &opts).unwrap();
    let report = caches_equivalent(
        seq.models(),
        &seq_cache,
        &pinned.cache_snapshot(),
        1e-12,
        1e-9,
    )
    .unwrap();
    assert!(
        report.equivalent(),
        "pinned-plan parallel diverged: {report:?}"
    );
    assert_eq!(report.n_common, seq_cache.len());
    assert!(report.max_latency_delta_ns <= 1e-9);

    // Engine C: parallel at the default plan width. Cut MST edges may
    // change pulse bytes (different warm starts), but every pulse still
    // hits the same canonical target, so realized unitaries agree to
    // well under the combined 1e-4 convergence budget. Latencies are an
    // *optimization* result, not a semantic one: a warm seed can extend
    // the feasibility frontier by several slices, so grant them a
    // handful of slices of slack here (the strict 1e-9 latency contract
    // is engine B's, where the warm-start chain is identical).
    let default_plan = session();
    default_plan.precompile_parallel(&progs, 4).unwrap();
    let report = caches_equivalent(
        seq.models(),
        &seq_cache,
        &default_plan.cache_snapshot(),
        2e-3,
        10.0,
    )
    .unwrap();
    assert!(
        report.equivalent(),
        "default-plan parallel diverged: {report:?}"
    );

    // Engine D: the pre-Session shim, compiling program by program into
    // an externally owned cache (per-program MSTs instead of one global
    // MST — different chains, same physics).
    #[allow(deprecated)]
    let shim = {
        let mut config = AccQocConfig::for_topology(Topology::linear(3));
        config.grape.stop.max_iters = 200;
        accqoc_repro::accqoc::AccQocCompiler::new(config)
    };
    let mut shim_cache = PulseCache::new();
    #[allow(deprecated)]
    for p in &progs {
        shim.compile_program(p, &mut shim_cache).unwrap();
    }
    let report = caches_equivalent(seq.models(), &seq_cache, &shim_cache, 2e-3, 10.0).unwrap();
    assert!(report.equivalent(), "pre-Session shim diverged: {report:?}");
}

#[test]
fn workload_verifies_after_parallel_compilation() {
    // A real suite workload through the parallel engine, then the
    // pulse-vs-unitary oracle end to end.
    let qft3 = golden_suite()
        .into_iter()
        .find(|p| p.name == "qft_3")
        .expect("qft_3 is golden")
        .circuit;
    let session = session();
    session
        .precompile_parallel(std::slice::from_ref(&qft3), 2)
        .unwrap();
    let compiled = session.compile_program(&qft3).unwrap();
    assert_eq!(compiled.coverage.covered, compiled.coverage.total);

    let report = session.verify_program(&qft3).unwrap();
    assert!(report.passed, "{report:?}");
    assert!(report.min_group_fidelity >= 0.999);
    let exact = report.exact_fidelity.expect("3 qubits is dense-verifiable");
    assert!(exact >= 0.98, "exact fidelity {exact}");
    assert!(report.state_fidelity.expect("state check ran") >= 0.98);

    // The report is also the artifact format of the golden corpus: it
    // must survive its own JSON dialect bit-exactly.
    let restored =
        accqoc_repro::accqoc::VerifyReport::from_json(&report.to_json()).expect("round-trip");
    assert_eq!(restored, report);
}
