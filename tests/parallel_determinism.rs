//! Concurrency guarantees of the parallel pre-compilation engine:
//! thread-count-invariant cache artifacts and a contention smoke test
//! for the sharded [`ConcurrentPulseCache`].

use accqoc::{CachedPulse, ConcurrentPulseCache, Session};
use accqoc_circuit::{Circuit, Gate, UnitaryKey};
use accqoc_grape::Pulse;
use accqoc_hw::Topology;
use accqoc_linalg::Mat;

fn session() -> Session {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    Session::builder()
        .topology(Topology::linear(3))
        .grape(grape)
        .build()
        .expect("valid session")
}

/// A family of similar programs producing a multi-group category (the
/// GRAPE seed is fixed by `InitStrategy::default()`, so runs are
/// deterministic end to end).
fn programs() -> Vec<Circuit> {
    (1..=4)
        .map(|k| {
            Circuit::from_gates(
                3,
                [
                    Gate::Rz(0, 0.12 * k as f64),
                    Gate::H(0),
                    Gate::Cx(0, 1),
                    Gate::Rz(1, 0.05 * k as f64),
                ],
            )
        })
        .collect()
}

#[test]
fn one_and_four_thread_precompile_write_identical_artifacts() {
    let dir = std::env::temp_dir().join("accqoc_parallel_determinism");
    std::fs::create_dir_all(&dir).unwrap();

    let mut paths = Vec::new();
    for threads in [1usize, 4] {
        let s = session();
        let (report, stats) = s.precompile_parallel(&programs(), threads).unwrap();
        assert!(report.n_unique_groups > 0);
        assert!(stats.total_iterations >= stats.makespan_iterations);
        let path = dir.join(format!("cache_{threads}threads.json"));
        s.save_cache(&path).unwrap();
        paths.push(path);
    }

    let one = std::fs::read(&paths[0]).unwrap();
    let four = std::fs::read(&paths[1]).unwrap();
    assert!(!one.is_empty());
    assert_eq!(
        one, four,
        "1-thread and 4-thread precompile must persist byte-identical caches"
    );
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn plan_width_one_matches_sequential_precompile_bit_for_bit() {
    use accqoc::{ParallelOptions, PrecompileOrder};
    // One plan part ⇒ no cut MST edges ⇒ the engine walks the exact
    // sequential warm-start chain, so the artifacts must be identical —
    // this pins the parallel engine to the sequential reference.
    let seq = session();
    seq.precompile(&programs(), PrecompileOrder::Mst).unwrap();

    let par = session();
    let opts = ParallelOptions::threads(4).with_plan_parts(1);
    let (_, stats) = par.precompile_parallel_with(&programs(), &opts).unwrap();
    assert_eq!(
        stats.cut_edges, 0,
        "one part per MST component cuts nothing"
    );

    assert_eq!(
        seq.cache_snapshot().to_json(),
        par.cache_snapshot().to_json(),
        "plan_parts = 1 must reproduce the sequential artifact"
    );
}

#[test]
fn batch_compile_matches_sequential_latencies() {
    let progs = programs();

    // Sequential reference.
    let seq = session();
    let seq_results: Vec<_> = progs
        .iter()
        .map(|p| seq.compile_program(p).unwrap())
        .collect();

    // Batch on a pool (own session, cold cache).
    let par = session();
    let (batch, stats) = par.compile_programs_parallel(&progs, 4).unwrap();
    assert_eq!(batch.len(), progs.len());
    assert!(stats.total_iterations > 0);

    for (s, b) in seq_results.iter().zip(&batch) {
        // Latencies agree wherever the fixed partition plan kept the warm
        // starts; cut MST edges may move a group onto a different (still
        // feasible-minimal) slice count, so allow a one-slice slack.
        assert!(
            (s.overall_latency_ns - b.overall_latency_ns).abs() <= 1.5,
            "sequential {} vs batch {}",
            s.overall_latency_ns,
            b.overall_latency_ns
        );
        assert_eq!(s.gate_based_latency_ns, b.gate_based_latency_ns);
        assert_eq!(s.swap_count, b.swap_count);
    }
}

#[test]
fn concurrent_cache_contention_smoke() {
    let cache = ConcurrentPulseCache::with_shards(8);
    let n_writers = 4;
    let n_readers = 4;
    let per_writer = 64;

    // Pre-build distinct keys (one per (writer, slot) pair).
    let keys: Vec<Vec<UnitaryKey>> = (0..n_writers)
        .map(|w| {
            (0..per_writer)
                .map(|i| {
                    let theta = 0.001 + w as f64 + i as f64 * 0.01;
                    let u = Mat::from_fn(2, 2, |r, c| {
                        if r == c {
                            accqoc_linalg::C64::cis(if r == 0 { -theta } else { theta })
                        } else {
                            accqoc_linalg::C64::real(0.0)
                        }
                    });
                    UnitaryKey::canonical(&u, 1)
                })
                .collect()
        })
        .collect();

    std::thread::scope(|scope| {
        for w in 0..n_writers {
            let cache = &cache;
            let keys = &keys;
            scope.spawn(move || {
                for (i, key) in keys[w].iter().enumerate() {
                    cache.insert(
                        key.clone(),
                        CachedPulse {
                            pulse: Pulse::zeros(2, 4, 1.0),
                            latency_ns: i as f64,
                            iterations: w,
                            n_qubits: 1,
                        },
                    );
                }
            });
        }
        for r in 0..n_readers {
            let cache = &cache;
            let keys = &keys;
            scope.spawn(move || {
                // Hammer lookups across every writer's key range while the
                // writers are inserting; all observed states must be
                // internally consistent.
                for round in 0..200 {
                    let w = (r + round) % n_writers;
                    for key in &keys[w] {
                        if let Some(entry) = cache.get(key) {
                            assert_eq!(entry.iterations, w, "entry belongs to writer {w}");
                        }
                    }
                    let len = cache.len();
                    assert!(len <= n_writers * per_writer);
                }
            });
        }
    });

    // All writes landed exactly once, and the snapshot agrees.
    let expected: usize = keys.iter().map(|k| k.len()).sum();
    assert_eq!(cache.len(), expected);
    let snapshot = cache.snapshot();
    assert_eq!(snapshot.len(), expected);
    for per in &keys {
        for key in per {
            assert!(snapshot.lookup(key).is_some());
        }
    }
    // Snapshot serialization is deterministic.
    assert_eq!(snapshot.to_json(), cache.snapshot().to_json());
}
