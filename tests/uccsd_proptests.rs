//! Property tests of the parameterized UCCSD workload family: grid
//! determinism, slice unitarity, the adjacent-θ warm-start contract
//! that the serving benchmarks lean on, and the zipf arrival stream
//! (seed-pinnable via `ACCQOC_PROPTEST_SEED`).

use accqoc_repro::accqoc::{warm_start_allowed, AccQocConfig};
use accqoc_repro::circuit::circuit_unitary;
use accqoc_repro::workloads::{
    arrival_stream, theta_grid, uccsd_family, uccsd_slice, zipf_arrivals, THETA_MAX, THETA_MIN,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn family_is_deterministic_and_names_are_unique(
        n in 2usize..5,
        slices in 1usize..4,
        grid in proptest::collection::vec(THETA_MIN..THETA_MAX, 2..6),
    ) {
        let a = uccsd_family(n, slices, &grid);
        let b = uccsd_family(n, slices, &grid);
        prop_assert_eq!(a.len(), grid.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.name, &y.name);
            prop_assert_eq!(&x.circuit, &y.circuit);
            prop_assert_eq!(x.circuit.n_qubits(), n);
            prop_assert_eq!(x.circuit.len(), 14 * slices);
        }
        let mut names: Vec<&str> = a.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        prop_assert_eq!(names.len(), grid.len());
    }

    #[test]
    fn every_slice_is_unitary(
        n in 2usize..5,
        slice in 0usize..6,
        theta in -3.0f64..3.0,
    ) {
        let u = circuit_unitary(&uccsd_slice(n, slice, theta));
        prop_assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn adjacent_grid_points_stay_inside_the_warm_gate(
        slice in 0usize..4,
        theta in THETA_MIN..THETA_MAX,
        spacing in 1e-4f64..0.081,
    ) {
        // The family's design contract: at up to the default grid
        // spacing (0.08), neighboring θ values land within the serving
        // tier's warm-start distance — a warm miss, never a scratch
        // compile. Checked at the excitation-slice granularity the
        // grouping pipeline actually hands to GRAPE.
        let gate = AccQocConfig::melbourne().warm_threshold;
        let a = circuit_unitary(&uccsd_slice(2, slice, theta));
        let b = circuit_unitary(&uccsd_slice(2, slice, theta + spacing));
        prop_assert!(
            warm_start_allowed(&a, &b, gate),
            "slices at θ {theta:.4} and {:.4} fell outside the {gate} warm gate",
            theta + spacing
        );
    }

    #[test]
    fn theta_grid_is_monotone_and_bounded(points in 2usize..40) {
        let grid = theta_grid(points);
        prop_assert_eq!(grid.len(), points);
        prop_assert!((grid[0] - THETA_MIN).abs() < 1e-12);
        prop_assert!((grid[points - 1] - THETA_MAX).abs() < 1e-12);
        for w in grid.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn zipf_arrivals_are_deterministic_in_range_and_extend_the_stream(
        pool in 1usize..20,
        length in 0usize..40,
        s in 0.0f64..2.5,
        seed in 0u64..1_000_000,
    ) {
        let a = zipf_arrivals(pool, length, s, seed);
        prop_assert_eq!(a.len(), length);
        prop_assert!(a.iter().all(|&i| i < pool));
        prop_assert_eq!(&a, &zipf_arrivals(pool, length, s, seed));
        // A longer stream from the same seed is an extension, not a
        // reshuffle — replays can grow without invalidating prefixes.
        let longer = zipf_arrivals(pool, length + 5, s, seed);
        prop_assert_eq!(&longer[..length], &a[..]);
    }

    #[test]
    fn unit_exponent_is_the_historical_stream(
        pool in 1usize..20,
        length in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        prop_assert_eq!(
            zipf_arrivals(pool, length, 1.0, seed),
            arrival_stream(pool, length, seed)
        );
    }
}
