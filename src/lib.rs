//! Umbrella crate for the AccQOC reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface
//! simply re-exports the workspace crates so examples can use one import.
//!
//! # Example
//!
//! ```no_run
//! use accqoc_repro::prelude::*;
//!
//! let session = Session::builder().topology(Topology::melbourne()).build()?;
//! let program = Circuit::from_gates(14, [Gate::H(0), Gate::Cx(0, 1)]);
//! let out = session.compile_program(&program)?;
//! println!("latency {:.1} ns ({:.2}x vs gate-based)",
//!          out.overall_latency_ns, out.latency_reduction());
//! # Ok::<(), accqoc_repro::accqoc::Error>(())
//! ```

#![warn(missing_docs)]

pub use accqoc;
pub use accqoc::prelude;
pub use accqoc_circuit as circuit;
pub use accqoc_grape as grape;
pub use accqoc_group as group;
pub use accqoc_hw as hw;
pub use accqoc_linalg as linalg;
pub use accqoc_map as map;
pub use accqoc_server as server;
pub use accqoc_sim as sim;
pub use accqoc_store as store;
pub use accqoc_workloads as workloads;
