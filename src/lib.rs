//! Umbrella crate for the AccQOC reproduction workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface
//! simply re-exports the workspace crates so examples can use one import.

pub use accqoc;
pub use accqoc_circuit as circuit;
pub use accqoc_grape as grape;
pub use accqoc_group as group;
pub use accqoc_hw as hw;
pub use accqoc_linalg as linalg;
pub use accqoc_map as map;
pub use accqoc_sim as sim;
pub use accqoc_workloads as workloads;
