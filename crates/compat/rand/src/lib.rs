//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand` covering exactly
//! what the AccQOC reproduction uses: a seedable deterministic generator
//! ([`rngs::StdRng`]) and [`Rng::gen_range`] over half-open and inclusive
//! integer/float ranges. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms, which the reproducibility
//! tests rely on.
//!
//! This is **not** a cryptographic RNG and makes no attempt to match the
//! upstream crate's value streams; only the API shape is preserved.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness with the sampling helpers this workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a range, like `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.uniform01()
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn uniform01_spread() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..4000).map(|_| rng.uniform01()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
