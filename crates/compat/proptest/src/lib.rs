//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing harness that keeps the repository's
//! `proptest!` test files compiling and running unchanged. It implements
//! the subset actually used here:
//!
//! - [`Strategy`] with [`Strategy::prop_map`] and
//!   [`Strategy::prop_filter_map`];
//! - range strategies over `f64`/`u8`/`usize`/`u64`, tuple strategies up
//!   to arity 4, and [`collection::vec`];
//! - the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], and [`prop_assume!`].
//!
//! Unlike upstream proptest there is **no shrinking** and no persistence:
//! each test runs a fixed number of seeded random cases (deterministic
//! across runs, seeded per test by a hash of the test name), and a failing
//! case panics with the rendered assertion message. `prop_assume!` skips
//! the current case rather than resampling it.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as TestRngCore;

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value; `None` means the case was rejected (e.g. by a
    /// filter) and the runner should retry with fresh randomness.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through a fallible `f`; `None` rejects the
    /// case. The `reason` is kept for API compatibility.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = reason;
        FilterMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rand::Rng::gen_range(rng, self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact size or a half-open
    /// range (upstream's `SizeRange` conversions).
    #[derive(Debug, Clone)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self(r)
        }
    }

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector of values from `element`, with length drawn from `len`
    /// (a `usize` for an exact length, or a range).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = rand::Rng::gen_range(rng, self.len.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest!` test files import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Environment variable pinning the RNG seed of every property test.
///
/// When set, its value (decimal, or hexadecimal with a `0x` prefix)
/// replaces the per-test name-hash seed, making RNG-sensitive failures
/// reproducible: a failing run prints the seed in effect, and re-running
/// the test with `ACCQOC_PROPTEST_SEED=<that seed>` replays the exact
/// case sequence.
pub const SEED_ENV: &str = "ACCQOC_PROPTEST_SEED";

/// Deterministic per-test default seed: FNV-1a over the test name.
fn name_seed(test_name: &str) -> u64 {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    seed
}

/// Parses a [`SEED_ENV`] value: decimal, or hex with a `0x`/`0X` prefix.
fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// The seed `run_property_test` will use for `test_name`: the env-pinned
/// seed when [`SEED_ENV`] is set, the test-name hash otherwise.
///
/// # Panics
///
/// Panics when [`SEED_ENV`] is set to something that is not a `u64`.
pub fn resolve_seed(test_name: &str) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(value) => parse_seed(&value).unwrap_or_else(|| {
            panic!("{SEED_ENV} must be a u64 (decimal or 0x-prefixed hex), got {value:?}")
        }),
        Err(_) => name_seed(test_name),
    }
}

/// Runs one property test: `cases` attempts, each generating arguments
/// via `gen` (retrying rejected cases) and running `body`.
///
/// Not called directly — the [`proptest!`] macro expands to this. The RNG
/// seed comes from [`resolve_seed`]; failures print it so they can be
/// replayed by exporting [`SEED_ENV`].
///
/// # Panics
///
/// Panics when a case fails or when generation rejects too many times.
pub fn run_property_test<A>(
    test_name: &str,
    config: &ProptestConfig,
    generate: impl Fn(&mut TestRng) -> Option<A>,
    body: impl Fn(A) -> Result<(), String>,
) {
    let seed = resolve_seed(test_name);
    let mut rng = TestRng::seed_from_u64(seed);
    const MAX_REJECTS: u32 = 1000;
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        match generate(&mut rng) {
            None => {
                rejects += 1;
                assert!(
                    rejects <= MAX_REJECTS,
                    "{test_name}: too many rejected cases ({MAX_REJECTS}) with seed {seed} \
                     (set {SEED_ENV}={seed} to reproduce)"
                );
            }
            Some(args) => {
                case += 1;
                if let Err(message) = body(args) {
                    panic!(
                        "{test_name}: property failed at case {case}/{} with seed {seed} \
                         (set {SEED_ENV}={seed} to reproduce): {message}",
                        config.cases
                    );
                }
            }
        }
    }
}

/// Declares property tests. Mirrors upstream `proptest!` syntax for the
/// forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property_test(
                stringify!($name),
                &config,
                |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng)?;)+
                    Some(($($arg,)+))
                },
                |($($arg,)+)| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skips the current case when `cond` is false (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_strategy_applies_function(v in (0u8..5).prop_map(|b| b as usize * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(v < 10);
        }

        #[test]
        fn filter_map_rejects(v in (0usize..10).prop_filter_map("even only", |x| {
            if x % 2 == 0 { Some(x) } else { None }
        })) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_strategy_lengths(v in collection::vec(0u8..4, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for b in v {
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn assume_skips(n in 0usize..4) {
            prop_assume!(n > 0);
            prop_assert!(n >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_property_test(
            "failing_property_panics",
            &ProptestConfig::with_cases(4),
            |_| Some(()),
            |()| Err("forced".into()),
        );
    }

    #[test]
    #[should_panic(expected = "ACCQOC_PROPTEST_SEED=")]
    fn failure_message_names_the_reproduction_seed() {
        crate::run_property_test(
            "failure_message_names_the_reproduction_seed",
            &ProptestConfig::with_cases(1),
            |_| Some(()),
            |()| Err("forced".into()),
        );
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(crate::parse_seed(" 42 "), Some(42));
        assert_eq!(crate::parse_seed("0xdeadbeef"), Some(0xdead_beef));
        assert_eq!(crate::parse_seed("0XFF"), Some(255));
        assert_eq!(crate::parse_seed(""), None);
        assert_eq!(crate::parse_seed("-3"), None);
        assert_eq!(crate::parse_seed("0xzz"), None);
        assert_eq!(crate::parse_seed("seed"), None);
    }

    #[test]
    fn default_seed_is_per_test_and_stable() {
        let a = crate::name_seed("alpha");
        assert_eq!(a, crate::name_seed("alpha"), "stable across calls");
        assert_ne!(a, crate::name_seed("beta"), "distinct per test");
    }

    #[test]
    fn env_pinned_seed_reproduces_case_sequences() {
        use rand::{Rng, SeedableRng};
        // Generate the full case stream twice from the same explicit
        // seed — this is exactly what re-running a failing test with
        // ACCQOC_PROPTEST_SEED exported does.
        let stream = |seed: u64| -> Vec<u64> {
            let mut rng = crate::TestRng::seed_from_u64(seed);
            (0..16).map(|_| rng.gen_range(0..1_000_000u64)).collect()
        };
        assert_eq!(stream(0xdead_beef), stream(0xdead_beef));
        assert_ne!(stream(0xdead_beef), stream(0xfeed_f00d));
    }
}
