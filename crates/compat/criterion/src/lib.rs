//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmark harness exposing the criterion
//! API surface its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up, then timed
//! over a fixed number of samples; the median per-iteration time is
//! printed. There is no statistical analysis, plotting, or baseline
//! comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's `BenchmarkId::new`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Explicit timing plan: warm-up iterations, timed iterations per
/// sample, and a sample count whose median is reported.
///
/// Criterion proper exposes no programmatic measurement entry point —
/// this is the stand-in's extension for the workspace's microbench tier
/// (`accqoc-bench --bin grape_kernels` and friends), which needs raw
/// numbers it can assert on and serialize rather than printed output.
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    /// Untimed iterations run once before sampling starts (page in
    /// code and data, settle the branch predictor).
    pub warmup_iters: u32,
    /// Timed iterations per sample. `0` auto-calibrates so one sample
    /// takes ~5 ms, keeping fast kernels clear of timer resolution.
    pub iters: u32,
    /// Number of samples taken; the measurement is their median, which
    /// shrugs off scheduler noise that would skew a mean.
    pub samples: usize,
}

impl Sampler {
    /// A plan with explicit warm-up, per-sample iteration count
    /// (`0` = auto-calibrate), and sample count (clamped to ≥ 3).
    pub fn new(warmup_iters: u32, iters: u32, samples: usize) -> Self {
        Self {
            warmup_iters,
            iters,
            samples: samples.max(3),
        }
    }

    /// Auto-calibrating plan: `samples` samples of ~5 ms each.
    pub fn calibrated(samples: usize) -> Self {
        Self::new(1, 0, samples)
    }

    /// Runs `f` under this plan and reports median-of-K statistics.
    pub fn measure<O>(&self, mut f: impl FnMut() -> O) -> Measurement {
        for _ in 0..self.warmup_iters {
            std_black_box(f());
        }
        let iters_per_sample = if self.iters > 0 {
            self.iters
        } else {
            // Aim for ~5 ms per sample so fast kernels are not measured
            // at timer resolution.
            let t0 = Instant::now();
            std_black_box(f());
            let once = t0.elapsed().max(Duration::from_nanos(1));
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u32
        };
        let n_samples = self.samples.max(3);
        let mut per_iter: Vec<Duration> = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            per_iter.push(start.elapsed() / iters_per_sample);
        }
        per_iter.sort_unstable();
        Measurement {
            median_ns: per_iter[per_iter.len() / 2].as_nanos() as f64,
            min_ns: per_iter[0].as_nanos() as f64,
            max_ns: per_iter[per_iter.len() - 1].as_nanos() as f64,
            samples: n_samples,
            iters_per_sample,
        }
    }
}

impl Default for Sampler {
    /// The calibrated plan [`Bencher::iter`] uses: 1 warm-up iteration,
    /// auto-calibrated sample length, 30 samples.
    fn default() -> Self {
        Self::calibrated(30)
    }
}

/// Median-of-K result of [`Sampler::measure`]. All times are
/// per-iteration nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration time across samples.
    pub median_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Samples actually taken.
    pub samples: usize,
    /// Timed iterations per sample (after calibration).
    pub iters_per_sample: u32,
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        let m = Sampler::calibrated(self.samples).measure(f);
        self.last_median = Duration::from_nanos(m.median_ns as u64);
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: sample_size.max(3),
        last_median: Duration::ZERO,
    };
    f(&mut bencher);
    println!("{name:<40} {:>12.3?}/iter", bencher.last_median);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Harness with the default sample size.
    pub fn new() -> Self {
        Self {
            default_sample_size: 0,
        }
    }

    fn sample_size_or_default(&self) -> usize {
        if self.default_sample_size == 0 {
            30
        } else {
            self.default_sample_size
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size_or_default(), &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size_or_default();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_1000", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::new();
        tiny_bench(&mut c);
    }

    #[test]
    fn sampler_fixed_iters_are_respected() {
        let mut calls = 0u64;
        let m = Sampler::new(2, 10, 4).measure(|| {
            calls += 1;
            calls
        });
        // 2 warm-up + 4 samples × 10 iters.
        assert_eq!(calls, 2 + 4 * 10);
        assert_eq!(m.samples, 4);
        assert_eq!(m.iters_per_sample, 10);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
    }

    #[test]
    fn sampler_calibrates_when_iters_is_zero() {
        let m = Sampler::calibrated(3).measure(|| std::hint::black_box(1 + 1));
        // A trivial closure must calibrate to many iterations per sample.
        assert!(m.iters_per_sample > 1);
        assert!(m.median_ns >= 0.0);
    }

    #[test]
    fn sampler_clamps_sample_count() {
        let m = Sampler::new(0, 1, 0).measure(|| 1);
        assert_eq!(m.samples, 3);
    }
}
