//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal wall-clock benchmark harness exposing the criterion
//! API surface its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up, then timed
//! over a fixed number of samples; the median per-iteration time is
//! printed. There is no statistical analysis, plotting, or baseline
//! comparison.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's `BenchmarkId::new`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            rendered: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and per-sample iteration calibration: aim for ~5 ms per
        // sample so fast kernels are not measured at timer resolution.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample =
            ((Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u32;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(f());
            }
            samples.push(start.elapsed() / iters_per_sample);
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: sample_size.max(3),
        last_median: Duration::ZERO,
    };
    f(&mut bencher);
    println!("{name:<40} {:>12.3?}/iter", bencher.last_median);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Harness with the default sample size.
    pub fn new() -> Self {
        Self {
            default_sample_size: 0,
        }
    }

    fn sample_size_or_default(&self) -> usize {
        if self.default_sample_size == 0 {
            30
        } else {
            self.default_sample_size
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size_or_default(), &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size_or_default();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("sum_1000", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut c = Criterion::new();
        tiny_bench(&mut c);
    }
}
