//! Golden-corpus regression: recompute the compact golden suite from a
//! fresh checkout and diff it against the checked-in snapshot under
//! `results/golden/`.
//!
//! A failure here means a change moved compiled latencies, group
//! structure, or pulse fidelities. If the movement is intentional,
//! regenerate the snapshot with
//! `cargo run --release -p accqoc-bench --bin verify_corpus` and explain
//! the drift in the commit; if it is not, the diff lines name exactly
//! which workload and metric regressed.

use accqoc_bench::golden::{compute_corpus, diff_corpus, golden_dir, GoldenCorpus, GOLDEN_FILE};

#[test]
fn golden_corpus_matches_fresh_recomputation() {
    let path = golden_dir().join(GOLDEN_FILE);
    let expected = GoldenCorpus::load(&path).unwrap_or_else(|e| {
        panic!(
            "checked-in corpus {} unreadable ({e}); regenerate with the verify_corpus bin",
            path.display()
        )
    });
    let actual = compute_corpus();

    let drift = diff_corpus(&expected, &actual);
    assert!(
        drift.is_empty(),
        "golden corpus drifted ({} lines):\n  {}\nregenerate with \
         `cargo run --release -p accqoc-bench --bin verify_corpus` if intentional",
        drift.len(),
        drift.join("\n  ")
    );

    // Beyond matching the snapshot, the recomputed corpus must satisfy
    // the absolute acceptance bar regardless of what was checked in.
    for row in &actual.rows {
        assert_eq!(row.coverage_rate, 1.0, "{}: not fully covered", row.name);
        assert!(
            row.min_group_fidelity >= 0.999,
            "{}: per-group fidelity {}",
            row.name,
            row.min_group_fidelity
        );
        assert!(
            row.exact_fidelity >= 0.98,
            "{}: exact program fidelity {}",
            row.name,
            row.exact_fidelity
        );
        assert!(
            row.overall_latency_ns > 0.0 && row.overall_latency_ns < row.gate_based_latency_ns,
            "{}: pulse latency {} vs gate-based {}",
            row.name,
            row.overall_latency_ns,
            row.gate_based_latency_ns
        );
    }
}
