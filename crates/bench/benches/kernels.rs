//! Numerical-kernel benchmarks: the operations GRAPE spends its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use accqoc_hw::ControlModel;
use accqoc_linalg::{eigh, expm_i, random_unitary, sqrtm_psd, Mat, C64};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn hermitian(n: usize) -> Mat {
    let g = Mat::from_fn(n, n, |i, j| {
        C64::new(
            ((i * 31 + j * 7) % 13) as f64 / 13.0,
            ((i + 3 * j) % 11) as f64 / 11.0 - 0.5,
        )
    });
    &g + &g.dagger()
}

fn bench_expm(c: &mut Criterion) {
    let mut group = c.benchmark_group("expm");
    for n in [2usize, 4, 8, 16] {
        let h = hermitian(n);
        group.bench_with_input(BenchmarkId::new("expm_i", n), &h, |b, h| {
            b.iter(|| expm_i(black_box(h), 1.0).unwrap())
        });
    }
    group.finish();
}

fn bench_eigh(c: &mut Criterion) {
    let mut group = c.benchmark_group("eigh");
    for n in [2usize, 4, 8] {
        let h = hermitian(n);
        group.bench_with_input(BenchmarkId::new("jacobi", n), &h, |b, h| {
            b.iter(|| eigh(black_box(h)).unwrap())
        });
    }
    group.finish();
}

fn bench_sqrtm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let u = random_unitary(4, &mut rng);
    let psd = u.dagger_matmul(&u.scale_re(1.0)); // identity-ish PSD
    let g = hermitian(4);
    let psd2 = g.dagger_matmul(&g);
    let mut group = c.benchmark_group("sqrtm");
    group.bench_function("psd_4x4", |b| {
        b.iter(|| sqrtm_psd(black_box(&psd2)).unwrap())
    });
    group.bench_function("identity_4x4", |b| {
        b.iter(|| sqrtm_psd(black_box(&psd)).unwrap())
    });
    group.finish();
}

fn bench_hamiltonian_assembly(c: &mut Criterion) {
    let model = ControlModel::spin_chain(2);
    let amps = vec![0.3, -0.5, 0.1, 0.9];
    c.bench_function("hamiltonian_2q", |b| {
        b.iter(|| model.hamiltonian(black_box(&amps)))
    });
}

criterion_group!(
    benches,
    bench_expm,
    bench_eigh,
    bench_sqrtm,
    bench_hamiltonian_assembly
);
criterion_main!(benches);
