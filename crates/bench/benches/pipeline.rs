//! Compilation-pipeline benchmarks: mapping, grouping, dedup, and a full
//! GRAPE solve.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use accqoc_circuit::{circuit_unitary, Circuit, Gate};
use accqoc_grape::{solve, GrapeOptions, GrapeProblem};
use accqoc_group::{dedup_groups, divide_circuit, GroupingPolicy};
use accqoc_hw::{ControlModel, Topology};
use accqoc_map::{crosstalk_metric, map_circuit, MappingOptions};
use accqoc_workloads::{nct_circuit, qft, NctSpec};

fn bench_mapping(c: &mut Criterion) {
    let topo = Topology::melbourne();
    let program = qft(8).decomposed(false);
    let mut group = c.benchmark_group("mapping");
    group.sample_size(20);
    group.bench_function("qft8_plain", |b| {
        b.iter(|| {
            map_circuit(
                black_box(&program),
                &topo,
                &MappingOptions {
                    crosstalk_aware: false,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("qft8_crosstalk_aware", |b| {
        b.iter(|| map_circuit(black_box(&program), &topo, &MappingOptions::default()))
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let spec = NctSpec {
        name: "bench",
        lines: 8,
        n_ccx: 30,
        n_cx: 40,
        n_x: 2,
        seed: 5,
    };
    let topo = Topology::melbourne();
    let mapped = map_circuit(
        &nct_circuit(&spec).decomposed(false),
        &topo,
        &MappingOptions::default(),
    );
    let mut group = c.benchmark_group("grouping");
    group.bench_function("divide_map2b4l", |b| {
        b.iter(|| divide_circuit(black_box(&mapped.circuit), &GroupingPolicy::map2b4l()))
    });
    let (grouped, _) = divide_circuit(&mapped.circuit, &GroupingPolicy::map2b4l());
    group.bench_function("dedup", |b| {
        b.iter(|| dedup_groups(black_box(&grouped.groups)))
    });
    group.bench_function("crosstalk_metric", |b| {
        b.iter(|| crosstalk_metric(black_box(&mapped.circuit), &topo))
    });
    group.finish();
}

fn bench_grape_solve(c: &mut Criterion) {
    let model = ControlModel::spin_chain(2);
    let cnot = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
    let mut group = c.benchmark_group("grape");
    group.sample_size(10);
    group.bench_function("cnot_40steps", |b| {
        b.iter(|| {
            solve(&GrapeProblem {
                model: &model,
                target: black_box(&cnot),
                n_steps: 40,
                options: GrapeOptions::default(),
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mapping, bench_grouping, bench_grape_solve);
criterion_main!(benches);
