//! The headline mechanism: MST-ordered warm-started compilation vs
//! from-scratch compilation of a similar-group category (Figure 15's
//! compile-speedup source).

use criterion::{criterion_group, criterion_main, Criterion};

use accqoc::{
    mst_compile_order, partition_tree, scratch_order, SimilarityFn, SimilarityGraph, WeightedTree,
};
use accqoc_circuit::{circuit_unitary, Circuit, Gate};
use accqoc_linalg::Mat;

fn family(n: usize) -> Vec<Mat> {
    (0..n)
        .map(|k| {
            circuit_unitary(&Circuit::from_gates(
                2,
                [
                    Gate::Rz(0, 0.1 + 0.13 * k as f64),
                    Gate::Cx(0, 1),
                    Gate::Rz(1, 0.2 + 0.11 * k as f64),
                ],
            ))
        })
        .collect()
}

fn bench_graph_and_mst(c: &mut Criterion) {
    let unitaries = family(60);
    let mut group = c.benchmark_group("similarity");
    group.sample_size(10);
    for f in [
        SimilarityFn::Frobenius,
        SimilarityFn::TraceOverlap,
        SimilarityFn::Uhlmann,
    ] {
        group.bench_function(format!("graph60_{}", f.label()), |b| {
            b.iter(|| SimilarityGraph::build(unitaries.clone(), f))
        });
    }
    let graph = SimilarityGraph::build(unitaries.clone(), SimilarityFn::Frobenius);
    group.bench_function("mst_order_60", |b| b.iter(|| mst_compile_order(&graph)));
    group.bench_function("scratch_order_60", |b| b.iter(|| scratch_order(60, &graph)));
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let unitaries = family(120);
    let graph = SimilarityGraph::build(unitaries, SimilarityFn::Frobenius);
    let order = mst_compile_order(&graph);
    let tree = WeightedTree::from_order(&order, 120);
    let mut group = c.benchmark_group("partition");
    for k in [2usize, 4, 8] {
        group.bench_function(format!("tree120_k{k}"), |b| {
            b.iter(|| partition_tree(&tree, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_and_mst, bench_partition);
criterion_main!(benches);
