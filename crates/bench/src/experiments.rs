//! Implementations of the paper's tables and figures.
//!
//! Every function returns plain row data; binaries print/CSV them. See
//! `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for measured
//! versus published numbers.

use std::collections::HashMap;

use accqoc::{
    brute_force_qoc, collect_category, mst_compile_order, optimize_group, scratch_order,
    BruteForceConfig, CompileOrder, Session, SimilarityFn, SimilarityGraph,
};
use accqoc_circuit::{Circuit, GateKind, UnitaryKey};
use accqoc_grape::Pulse;
use accqoc_group::GroupingPolicy;
use accqoc_hw::{NoiseModel, Topology};
use accqoc_linalg::Mat;
use accqoc_map::{
    crosstalk_metric, map_circuit, schedule_crosstalk_aware, MappingOptions, ScheduleOptions,
};
use accqoc_workloads::{nct_circuit, paper_specs, qft, BenchProgram};

use crate::context::{fast_mode, n_workers, ExperimentContext};

// ---------------------------------------------------------------------------
// Table I — grouping policies.
// ---------------------------------------------------------------------------

/// Rows of paper Table I: the six candidate policies.
pub fn table1_rows() -> Vec<Vec<String>> {
    GroupingPolicy::paper_policies()
        .into_iter()
        .map(|p| {
            vec![
                p.label(),
                p.swap_mode.prefix().to_string(),
                p.max_qubits.to_string(),
                p.max_layers.to_string(),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table II — instruction mixes.
// ---------------------------------------------------------------------------

/// The six gate kinds the paper tabulates.
pub const TABLE2_KINDS: [GateKind; 6] = [
    GateKind::X,
    GateKind::T,
    GateKind::H,
    GateKind::Cx,
    GateKind::Rz,
    GateKind::Tdg,
];

/// Per-program gate counts for the named Table II programs, plus the
/// suite-average instruction mix (as percentages) in the last row.
pub fn table2_rows(suite: &[BenchProgram]) -> Vec<Vec<String>> {
    let mut named: Vec<(String, Circuit)> = paper_specs()
        .iter()
        .map(|s| (s.name.to_string(), nct_circuit(s)))
        .collect();
    named.insert(2, ("qft_10".into(), qft(10)));
    named.insert(3, ("qft_16".into(), qft(16)));

    let mut rows = Vec::new();
    for (name, circuit) in &named {
        let counts = circuit.decomposed(false).counts_by_kind();
        let mut row = vec![name.clone()];
        for kind in TABLE2_KINDS {
            row.push(counts.get(&kind).copied().unwrap_or(0).to_string());
        }
        rows.push(row);
    }
    // Suite-wide average mix.
    let mut sums: HashMap<GateKind, f64> = HashMap::new();
    let mut total = 0.0;
    for p in suite {
        for (kind, count) in p.circuit.decomposed(false).counts_by_kind() {
            *sums.entry(kind).or_insert(0.0) += count as f64;
            total += count as f64;
        }
    }
    let mut avg = vec!["all".to_string()];
    for kind in TABLE2_KINDS {
        let frac = sums.get(&kind).copied().unwrap_or(0.0) / total;
        avg.push(format!("{:.2}%", 100.0 * frac));
    }
    rows.push(avg);
    rows
}

// ---------------------------------------------------------------------------
// Figure 5 — crosstalk and error rate.
// ---------------------------------------------------------------------------

/// Per-pair CX error with and without a nearby parallel CNOT on
/// Melbourne; returns `(pair, isolated, with-crosstalk, inflation)` rows.
pub fn fig5_rows() -> Vec<(String, f64, f64, f64)> {
    let noise = NoiseModel::melbourne();
    let topo = noise.topology().clone();
    let edges = topo.undirected_edges();
    let mut rows = Vec::new();
    for &(a, b) in edges.iter() {
        // Find a disturber edge at distance ≤ 1 not sharing a qubit.
        let disturber = edges.iter().find(|&&e| {
            e != (a, b)
                && e.0 != a
                && e.0 != b
                && e.1 != a
                && e.1 != b
                && topo.edge_distance((a, b), e) <= 1
        });
        if let Some(&d) = disturber {
            let base = noise.cx_error(a, b);
            let with = noise.cx_error_with_parallel(a, b, d);
            rows.push((format!("({a},{b})"), base, with, with / base));
            if rows.len() == 6 {
                break; // the paper shows six pairs
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 7 — coverage under map2b4l.
// ---------------------------------------------------------------------------

/// Coverage of evaluation programs against the pre-compiled session
/// cache: `(name, covered, total, rate)`.
pub fn fig7_rows(ctx: &ExperimentContext, n_programs: usize) -> Vec<(String, usize, usize, f64)> {
    let programs = ctx.eval_programs_sized(2000, n_programs);
    programs
        .iter()
        .map(|p| {
            let cov = ctx.session.coverage_of(&p.circuit);
            (p.name.clone(), cov.covered, cov.total, cov.rate())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 8 & 13 — iteration reduction from similarity-ordered training.
// ---------------------------------------------------------------------------

/// Compile cost (total GRAPE iterations over latency searches) of a group
/// category under a given compile order, applying the warm threshold.
pub fn order_cost(session: &Session, canonical: &[(Mat, usize)], order: &CompileOrder) -> usize {
    let mut pulses: HashMap<usize, Pulse> = HashMap::new();
    let mut total = 0usize;
    for step in &order.steps {
        let (target, n_qubits) = &canonical[step.vertex];
        let warm = step
            .parent
            .filter(|&p| {
                accqoc::warm_start_allowed(&canonical[p].0, target, session.config().warm_threshold)
            })
            .and_then(|p| pulses.get(&p));
        let r = session
            .compile_unitary(target, *n_qubits, warm)
            .expect("category groups compile");
        total += r.total_iterations;
        pulses.insert(step.vertex, r.outcome.pulse.clone());
    }
    total
}

/// Fixed-latency training cost of a category under a compile order:
/// every group is solved at its own (pre-established) slice count; warm
/// seeds come from MST parents that pass the trace-overlap gate. This is
/// the quantity paper §VI-G varies — "the training iterations of groups
/// with and without accelerated training" — with latencies already fixed
/// by pre-compilation.
pub fn training_cost(
    session: &Session,
    canonical: &[(Mat, usize)],
    steps: &[usize],
    order: &CompileOrder,
    gate: f64,
) -> usize {
    use accqoc_grape::{solve, GrapeProblem, InitStrategy};
    let mut pulses: HashMap<usize, Pulse> = HashMap::new();
    let mut total = 0usize;
    for step in &order.steps {
        let (target, n_qubits) = &canonical[step.vertex];
        let mut opts = session.config().grape.clone();
        if let Some(p) = step.parent {
            if SimilarityFn::TraceOverlap.distance(&canonical[p].0, target) <= gate {
                if let Some(pp) = pulses.get(&p) {
                    opts.init = InitStrategy::Warm(pp.clone());
                }
            }
        }
        let model = session
            .models()
            .for_qubits(*n_qubits)
            .expect("category arity in range");
        let out = solve(&GrapeProblem {
            model,
            target,
            n_steps: steps[step.vertex],
            options: opts,
        });
        total += out.iterations;
        if out.converged {
            pulses.insert(step.vertex, out.pulse);
        }
    }
    total
}

/// Establishes each group's minimal slice count with one cold binary
/// search per group (parallelized across groups).
pub fn category_steps(session: &Session, canonical: &[(Mat, usize)]) -> Vec<usize> {
    let mut steps = vec![0usize; canonical.len()];
    let chunk = (canonical.len() / n_workers().max(1)).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = canonical
            .chunks(chunk)
            .map(|chunk_items| {
                scope.spawn(move || {
                    chunk_items
                        .iter()
                        .map(|(u, n)| {
                            session
                                .compile_unitary(u, *n, None)
                                .expect("compiles")
                                .n_steps
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        let mut offset = 0usize;
        for h in handles {
            let part = h.join().expect("worker");
            steps[offset..offset + part.len()].copy_from_slice(&part);
            offset += part.len();
        }
    });
    steps
}

/// Iteration reduction (fraction) of MST-ordered training vs from-scratch
/// training for one category, per similarity function. Positive = fewer
/// iterations. The `inverse` control runs ungated — it exists precisely to
/// show what dissimilar seeds do (paper Figure 8 shows it increasing the
/// count).
pub fn similarity_reductions(
    session: &Session,
    canonical: &[(Mat, usize)],
) -> Vec<(&'static str, f64)> {
    let unitaries: Vec<Mat> = canonical.iter().map(|(u, _)| u.clone()).collect();
    let steps = category_steps(session, canonical);
    let any_graph = SimilarityGraph::build(unitaries.clone(), SimilarityFn::Frobenius);
    let scratch_ord = scratch_order(canonical.len(), &any_graph);
    let gate = session.config().warm_threshold;
    let orders: Vec<(&'static str, CompileOrder, f64)> = SimilarityFn::all()
        .into_iter()
        .map(|f| {
            let graph = SimilarityGraph::build(unitaries.clone(), f);
            let g = if f == SimilarityFn::InverseUhlmann {
                f64::INFINITY
            } else {
                gate
            };
            (f.label(), mst_compile_order(&graph), g)
        })
        .collect();

    let mut scratch_cost = 0usize;
    let mut costs: Vec<(&'static str, usize)> = Vec::new();
    std::thread::scope(|scope| {
        let steps_ref = &steps;
        let scratch_handle =
            scope.spawn(move || training_cost(session, canonical, steps_ref, &scratch_ord, -1.0));
        let handles: Vec<_> = orders
            .iter()
            .map(|(label, order, g)| {
                let (label, g) = (*label, *g);
                scope.spawn(move || {
                    (
                        label,
                        training_cost(session, canonical, steps_ref, order, g),
                    )
                })
            })
            .collect();
        scratch_cost = scratch_handle.join().expect("scratch worker");
        for h in handles {
            costs.push(h.join().expect("order worker"));
        }
    });

    costs
        .into_iter()
        .map(|(label, cost)| (label, 1.0 - cost as f64 / scratch_cost.max(1) as f64))
        .collect()
}

/// Truncates a category to its densest similarity neighborhood of `cap`
/// groups (Frobenius metric): the paper notes the MST acceleration "highly
/// relies on the size of the MST — for a larger MST the two groups
/// connected are more likely to be very close", so a small subsample must
/// keep neighbors together to reflect large-category behaviour.
pub fn truncate_category(canonical: Vec<(Mat, usize)>, cap: usize) -> Vec<(Mat, usize)> {
    if canonical.len() <= cap {
        return canonical;
    }
    let n = canonical.len();
    let dist = |i: usize, j: usize| -> f64 {
        SimilarityFn::Frobenius.distance(&canonical[i].0, &canonical[j].0)
    };
    // Seed = group with the smallest sum of distances to its cap−1 nearest.
    let mut best_seed = 0;
    let mut best_score = f64::INFINITY;
    for i in 0..n {
        let mut ds: Vec<f64> = (0..n).filter(|&j| j != i).map(|j| dist(i, j)).collect();
        ds.sort_by(f64::total_cmp);
        let score: f64 = ds.iter().take(cap - 1).filter(|d| d.is_finite()).sum();
        if score < best_score {
            best_score = score;
            best_seed = i;
        }
    }
    let mut by_dist: Vec<usize> = (0..n).collect();
    by_dist.sort_by(|&a, &b| dist(best_seed, a).total_cmp(&dist(best_seed, b)));
    let mut keep: Vec<usize> = by_dist.into_iter().take(cap).collect();
    keep.sort_unstable();
    keep.into_iter().map(|i| canonical[i].clone()).collect()
}

/// Figure 8: average iteration reduction per similarity function over the
/// profiled category (subsampled to `cap` groups for runtime).
pub fn fig8_rows(ctx: &ExperimentContext, cap: usize) -> Vec<(&'static str, f64)> {
    let programs = ctx.profile_programs();
    let (canonical, _, _) = collect_category(&ctx.session, &programs);
    let canonical = truncate_category(canonical, cap);
    similarity_reductions(&ctx.session, &canonical)
}

/// Figure 13: per-program iteration reductions for the five similarity
/// functions: `(program, [(label, reduction); 5])`.
pub fn fig13_rows(
    ctx: &ExperimentContext,
    n_programs: usize,
    cap: usize,
) -> Vec<(String, Vec<(&'static str, f64)>)> {
    let max_gates = if fast_mode() { 260 } else { 420 };
    let programs = ctx.eval_programs_sized(max_gates, n_programs);
    programs
        .iter()
        .map(|p| {
            let (canonical, _, _) =
                collect_category(&ctx.session, std::slice::from_ref(&p.circuit));
            let canonical = truncate_category(canonical, cap);
            (
                p.name.clone(),
                similarity_reductions(&ctx.session, &canonical),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 11 — crosstalk mitigation by mapping.
// ---------------------------------------------------------------------------

/// One Figure-11 row: crosstalk metric under plain mapping, the paper's
/// crosstalk-aware mapping, and (our extension) aware mapping plus the
/// stagger scheduler.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Program name.
    pub program: String,
    /// Crosstalk metric with the plain (distance-only) mapper.
    pub before: usize,
    /// Metric with the crosstalk-aware mapper (the paper's experiment).
    pub after_mapping: usize,
    /// Metric after additionally stagger-scheduling (extension, §VI-C
    /// calls systematic mitigation an open question).
    pub after_scheduling: usize,
}

impl Fig11Row {
    /// Reduction from crosstalk-aware mapping alone (paper's number).
    pub fn mapping_reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after_mapping as f64 / self.before as f64
        }
    }

    /// Reduction including the scheduler extension.
    pub fn scheduled_reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after_scheduling as f64 / self.before as f64
        }
    }
}

/// Crosstalk metric rows for Figure 11.
pub fn fig11_rows(ctx: &ExperimentContext, n_programs: usize) -> Vec<Fig11Row> {
    let topo = &ctx.session.config().topology;
    let programs = ctx.eval_programs_sized(1200, n_programs);
    programs
        .iter()
        .map(|p| {
            let decomposed = p.circuit.decomposed(false);
            let plain = map_circuit(
                &decomposed,
                topo,
                &MappingOptions {
                    crosstalk_aware: false,
                    ..Default::default()
                },
            );
            let aware = map_circuit(&decomposed, topo, &MappingOptions::default());
            let scheduled =
                schedule_crosstalk_aware(&aware.circuit, topo, &ScheduleOptions::default());
            Fig11Row {
                program: p.name.clone(),
                before: crosstalk_metric(&plain.circuit, topo),
                after_mapping: crosstalk_metric(&aware.circuit, topo),
                after_scheduling: scheduled.crosstalk(topo),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 12 — latency reduction across policies.
// ---------------------------------------------------------------------------

/// One figure-12 cell: latency reduction for a program under a policy,
/// without and with the most-frequent-group optimization.
#[derive(Debug, Clone)]
pub struct Fig12Cell {
    /// Program name.
    pub program: String,
    /// Policy label.
    pub policy: String,
    /// Gate-based latency, ns.
    pub gate_based_ns: f64,
    /// AccQOC latency, ns.
    pub accqoc_ns: f64,
    /// AccQOC latency after the §IV-G most-frequent-group optimization.
    pub accqoc_optimized_ns: f64,
}

impl Fig12Cell {
    /// Latency reduction without the optimization.
    pub fn reduction(&self) -> f64 {
        self.gate_based_ns / self.accqoc_ns
    }

    /// Latency reduction with the optimization.
    pub fn reduction_optimized(&self) -> f64 {
        self.gate_based_ns / self.accqoc_optimized_ns
    }
}

/// Runs the Figure 12 sweep: each policy gets its own session that
/// pre-compiles the shared category of the selected programs once (in
/// parallel); per-program latencies are then read off the session cache —
/// before and after optimizing the most frequent group.
pub fn fig12_cells(ctx: &ExperimentContext, n_programs: usize) -> Vec<Fig12Cell> {
    let max_gates = if fast_mode() { 240 } else { 500 };
    let programs = ctx.eval_programs_sized(max_gates, n_programs);
    let mut cells = Vec::new();

    for policy in GroupingPolicy::paper_policies() {
        let session = Session::builder()
            .topology(Topology::melbourne())
            .policy(policy)
            .build()
            .expect("paper policy session is valid");
        let circuits: Vec<Circuit> = programs.iter().map(|p| p.circuit.clone()).collect();

        let (report, _) = session
            .precompile_parallel(&circuits, n_workers())
            .expect("policy category compiles");

        // Latencies before the most-frequent-group optimization.
        let mut before: Vec<(String, f64, f64)> = Vec::new();
        for p in &programs {
            let out = session
                .compile_program(&p.circuit)
                .expect("covered program compiles");
            before.push((
                p.name.clone(),
                out.gate_based_latency_ns,
                out.overall_latency_ns,
            ));
        }

        // Optimize the most frequent group on a finer grid.
        if let Some(key) = report.most_frequent.clone() {
            let (canonical, keys, _) = collect_category(&session, &circuits);
            if let Some(idx) = keys.iter().position(|k| *k == key) {
                optimize_group(&session, &key, &canonical[idx].0, canonical[idx].1).ok();
            }
        }
        for (p, (name, gate_ns, acc_ns)) in programs.iter().zip(before) {
            let out = session
                .compile_program(&p.circuit)
                .expect("covered program compiles");
            cells.push(Fig12Cell {
                program: name,
                policy: policy.label(),
                gate_based_ns: gate_ns,
                accqoc_ns: acc_ns,
                accqoc_optimized_ns: out.overall_latency_ns,
            });
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Figure 14 — group-count scaling.
// ---------------------------------------------------------------------------

/// `(name, decomposed gates, unique map2b4l groups)` per suite program.
pub fn fig14_rows(ctx: &ExperimentContext) -> Vec<(String, usize, usize)> {
    let max_q = ctx.session.config().topology.n_qubits();
    ctx.suite
        .iter()
        .filter(|p| p.circuit.n_qubits() <= max_q)
        .map(|p| {
            let (canonical, _, _) =
                collect_category(&ctx.session, std::slice::from_ref(&p.circuit));
            (p.name.clone(), p.decomposed_len(), canonical.len())
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 15 — AccQOC vs brute-force QOC.
// ---------------------------------------------------------------------------

/// One figure-15 comparison row.
#[derive(Debug, Clone)]
pub struct Fig15Row {
    /// Program name.
    pub program: String,
    /// Gate-based latency (ns).
    pub gate_based_ns: f64,
    /// AccQOC latency (ns) and dynamic compile iterations.
    pub accqoc_ns: f64,
    /// Iterations AccQOC spent on uncovered groups.
    pub accqoc_iterations: usize,
    /// Brute-force QOC latency (ns) and total iterations.
    pub brute_force_ns: f64,
    /// Iterations brute force spent compiling every group from scratch.
    pub brute_force_iterations: usize,
}

/// Runs the AccQOC vs brute-force comparison on small evaluation
/// programs (the brute-force side compiles ≤`bf.max_qubits`-qubit groups
/// from scratch and dominates the runtime of this figure). Works on a
/// fork of the context session so the shared cache stays pristine.
pub fn fig15_rows(
    ctx: &ExperimentContext,
    n_programs: usize,
    bf: &BruteForceConfig,
) -> Vec<Fig15Row> {
    let max_gates = if fast_mode() { 150 } else { 260 };
    let programs = ctx.eval_programs_sized(max_gates, n_programs);
    let session = ctx.session.fork();
    let mut rows = Vec::new();
    for p in programs {
        let out = session
            .compile_program(&p.circuit)
            .expect("accqoc compiles");
        let bf_result =
            brute_force_qoc(&p.circuit, &session.config().topology, session.config(), bf)
                .expect("brute force compiles");
        rows.push(Fig15Row {
            program: p.name.clone(),
            gate_based_ns: out.gate_based_latency_ns,
            accqoc_ns: out.overall_latency_ns,
            accqoc_iterations: out.dynamic_iterations,
            brute_force_ns: bf_result.overall_latency_ns,
            brute_force_iterations: bf_result.total_iterations,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Threads vs speedup — the parallel pre-compilation engine on the
// Figure 13 workload.
// ---------------------------------------------------------------------------

/// One row of the threads-vs-speedup experiment: the Figure 13 program
/// set pre-compiled from a cold cache on a pool of `threads` workers.
#[derive(Debug, Clone)]
pub struct ThreadsRow {
    /// Worker-pool size.
    pub threads: usize,
    /// Wall-clock time of the parallel compile section, seconds.
    pub wall_s: f64,
    /// Speedup vs the 1-thread row (`wall(1) / wall(threads)`).
    pub speedup: f64,
    /// Unique groups compiled.
    pub groups: usize,
    /// GRAPE iterations across all parts (identical for every row: the
    /// plan is thread-count-invariant).
    pub total_iterations: usize,
    /// Iteration-metric makespan (heaviest part).
    pub makespan_iterations: usize,
    /// MST edges cut by the partition plan.
    pub cut_edges: usize,
    /// Busiest worker's busy time, seconds.
    pub busiest_worker_s: f64,
    /// SHA-agnostic artifact fingerprint: byte length of the serialized
    /// cache (equal across rows ⇔ plan determinism held).
    pub artifact_bytes: usize,
}

/// Runs the threads-vs-speedup sweep: the Figure 13 evaluation programs'
/// group category pre-compiled from scratch once per thread count on a
/// fresh session. Because the partition plan is fixed, every row does
/// *identical* GRAPE work — the wall-clock column isolates the engine's
/// parallel efficiency.
pub fn threads_speedup_rows(
    ctx: &ExperimentContext,
    thread_counts: &[usize],
    n_programs: usize,
) -> Vec<ThreadsRow> {
    let max_gates = if fast_mode() { 260 } else { 420 };
    let circuits: Vec<Circuit> = ctx
        .eval_programs_sized(max_gates, n_programs)
        .iter()
        .map(|p| p.circuit.clone())
        .collect();

    let mut rows: Vec<ThreadsRow> = Vec::new();
    let mut baseline_wall = f64::NAN;
    for &threads in thread_counts {
        let session = Session::builder()
            .topology(Topology::melbourne())
            .build()
            .expect("stock melbourne session is valid");
        let (report, stats) = session
            .precompile_parallel(&circuits, threads)
            .expect("fig13 workload compiles");
        let wall_s = stats.wall.as_secs_f64();
        if rows.is_empty() {
            baseline_wall = wall_s;
        }
        let busiest_worker_s = stats
            .worker_timings
            .iter()
            .map(|t| t.wall.as_secs_f64())
            .fold(0.0, f64::max);
        rows.push(ThreadsRow {
            threads,
            wall_s,
            speedup: baseline_wall / wall_s,
            groups: report.n_unique_groups,
            total_iterations: stats.total_iterations,
            makespan_iterations: stats.makespan_iterations,
            cut_edges: stats.cut_edges,
            busiest_worker_s,
            artifact_bytes: session.cache_snapshot().to_json().len(),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 9 — SG → MST → partition worked example.
// ---------------------------------------------------------------------------

/// Figure 9 walk-through data: MST steps `(vertex, parent, weight)`, the
/// shifted node weights, and the 2-way partition assignment.
pub type Fig9Example = (Vec<(usize, Option<usize>, f64)>, Vec<f64>, Vec<usize>);

/// The Figure 9 walk-through on a real 6-group category.
pub fn fig9_example(ctx: &ExperimentContext) -> Fig9Example {
    use accqoc::{partition_tree, WeightedTree};
    let programs = ctx.profile_programs();
    let (canonical, _, _) = collect_category(&ctx.session, &programs);
    let six = truncate_category(canonical, 6);
    let graph = SimilarityGraph::build(
        six.iter().map(|(u, _)| u.clone()).collect(),
        ctx.session.config().similarity,
    );
    let order = mst_compile_order(&graph);
    let tree = WeightedTree::from_order(&order, six.len());
    let partition = partition_tree(&tree, 2);
    (
        order
            .steps
            .iter()
            .map(|s| (s.vertex, s.parent, s.weight))
            .collect(),
        tree.weights.clone(),
        partition.part_of,
    )
}

/// Convenience: keys of a category (used by binaries for reporting).
pub fn category_keys(session: &Session, programs: &[Circuit]) -> Vec<UnitaryKey> {
    collect_category(session, programs).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_policies() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[5][0], "map2b4l");
    }

    #[test]
    fn table2_matches_paper_for_named_programs() {
        let suite = accqoc_workloads::full_suite();
        let rows = table2_rows(&suite);
        // 6 named programs + average row.
        assert_eq!(rows.len(), 7);
        // cm152a_212 row: x=5, t=304, h=152, cx=532, rz=0, tdg=228.
        let cm = rows.iter().find(|r| r[0] == "cm152a_212").unwrap();
        assert_eq!(cm[1..], ["5", "304", "152", "532", "0", "228"]);
        // qft_10: cx=90, rz=90.
        let q = rows.iter().find(|r| r[0] == "qft_10").unwrap();
        assert_eq!(q[4], "90");
        assert_eq!(q[5], "90");
    }

    #[test]
    fn fig5_shows_inflation_on_six_pairs() {
        let rows = fig5_rows();
        assert_eq!(rows.len(), 6);
        for (pair, base, with, ratio) in rows {
            assert!(with > base, "{pair}: {with} <= {base}");
            assert!((ratio - accqoc_hw::CROSSTALK_FACTOR).abs() < 1e-9);
        }
    }

    #[test]
    fn fig14_counts_grow_sublinearly() {
        let ctx = ExperimentContext::bare();
        let rows = fig14_rows(&ctx);
        assert!(rows.len() > 50);
        // Groups per gate shrinks as programs grow (sublinearity proxy):
        // compare the small-program mean ratio to the large-program one.
        let mut small = Vec::new();
        let mut large = Vec::new();
        for (_, gates, groups) in &rows {
            if *gates < 300 {
                small.push(*groups as f64 / *gates as f64);
            } else if *gates > 1000 {
                large.push(*groups as f64 / *gates as f64);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(!small.is_empty() && !large.is_empty());
        assert!(
            mean(&large) < mean(&small),
            "groups/gate should fall with size: {} vs {}",
            mean(&large),
            mean(&small)
        );
    }
}
