//! Shared experiment setup: session, benchmark suite, and a persistent
//! pre-compiled pulse cache.

use std::path::PathBuf;

use accqoc::{PrecompileReport, Session};
use accqoc_circuit::Circuit;
use accqoc_hw::Topology;
use accqoc_workloads::{full_suite, profiling_split, BenchProgram};

/// Seed for the profiling split (paper: "randomly select one-third").
pub const SPLIT_SEED: u64 = 42;

/// `true` when `ACCQOC_FAST=1`: experiments shrink their sample sizes so a
/// full figure sweep completes in a couple of minutes (useful for smoke
/// tests; published numbers should use the default mode).
pub fn fast_mode() -> bool {
    std::env::var("ACCQOC_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Where the shared pulse cache is persisted between figure binaries.
pub fn cache_path() -> PathBuf {
    if let Ok(p) = std::env::var("ACCQOC_CACHE") {
        return PathBuf::from(p);
    }
    PathBuf::from("results").join(if fast_mode() {
        "pulse_cache_fast.json"
    } else {
        "pulse_cache.json"
    })
}

/// Number of compile workers.
pub fn n_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Everything a figure binary needs.
pub struct ExperimentContext {
    /// The Melbourne/map2b4l session of the paper's headline setup; owns
    /// the (possibly pre-compiled) pulse cache.
    pub session: Session,
    /// The 159-program benchmark suite.
    pub suite: Vec<BenchProgram>,
    /// Indices of the profiling third (restricted to device-sized
    /// programs).
    pub profile_idx: Vec<usize>,
    /// Indices of the evaluation programs.
    pub eval_idx: Vec<usize>,
    /// Pre-compilation report when the cache was built in this process.
    pub report: Option<PrecompileReport>,
}

impl ExperimentContext {
    /// Builds the context without pre-compiling anything.
    ///
    /// # Panics
    ///
    /// Panics when the paper's stock configuration fails to validate
    /// (it cannot).
    pub fn bare() -> Self {
        let session = Session::builder()
            .topology(Topology::melbourne())
            .build()
            .expect("stock melbourne session is valid");
        let suite = full_suite();
        let max_q = session.config().topology.n_qubits();
        let (profile_raw, eval_raw) = profiling_split(&suite, SPLIT_SEED);
        let fits = |i: &usize| suite[*i].circuit.n_qubits() <= max_q;
        let profile_idx: Vec<usize> = profile_raw.into_iter().filter(fits).collect();
        let eval_idx: Vec<usize> = eval_raw.into_iter().filter(fits).collect();
        Self {
            session,
            suite,
            profile_idx,
            eval_idx,
            report: None,
        }
    }

    /// Builds the context and ensures the static pre-compilation cache is
    /// available: loaded from disk when present, otherwise compiled (in
    /// parallel) and saved.
    ///
    /// # Panics
    ///
    /// Panics if pre-compilation fails for a group (should not happen on
    /// the stock suite) or the cache file is unreadable.
    pub fn precompiled() -> Self {
        let mut ctx = Self::bare();
        let path = cache_path();
        if path.exists() {
            let loaded = ctx.session.load_cache(&path).expect("cache file readable");
            eprintln!(
                "[context] loaded {} cached groups from {}",
                loaded,
                path.display()
            );
            return ctx;
        }
        let programs = ctx.profile_programs();
        eprintln!(
            "[context] pre-compiling category from {} profiling programs on {} workers…",
            programs.len(),
            n_workers()
        );
        let t0 = std::time::Instant::now();
        let (report, stats) = ctx
            .session
            .precompile_parallel(&programs, n_workers())
            .expect("pre-compilation succeeds on the stock suite");
        eprintln!(
            "[context] {} unique groups, {} iterations ({} makespan) in {:.1?}",
            report.n_unique_groups,
            stats.total_iterations,
            stats.makespan_iterations,
            t0.elapsed()
        );
        ctx.report = Some(report);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).ok();
        }
        ctx.session.save_cache(&path).expect("cache file writable");
        ctx
    }

    /// The profiling programs (cloned circuits). In fast mode only a
    /// handful of the smallest are used.
    pub fn profile_programs(&self) -> Vec<Circuit> {
        let mut idx = self.profile_idx.clone();
        if fast_mode() {
            idx.sort_by_key(|&i| self.suite[i].decomposed_len());
            idx.truncate(6);
        }
        idx.iter().map(|&i| self.suite[i].circuit.clone()).collect()
    }

    /// Evaluation programs of a bounded size, smallest first.
    pub fn eval_programs_sized(&self, max_gates: usize, count: usize) -> Vec<&BenchProgram> {
        let mut idx: Vec<usize> = self
            .eval_idx
            .iter()
            .copied()
            .filter(|&i| self.suite[i].decomposed_len() <= max_gates)
            .collect();
        idx.sort_by_key(|&i| self.suite[i].decomposed_len());
        // Take a spread: smallest, then every k-th for variety.
        idx.truncate(count.max(1) * 2);
        idx.into_iter()
            .step_by(2)
            .take(count)
            .map(|i| &self.suite[i])
            .collect()
    }
}
