//! Experiment harness reproducing every table and figure of the AccQOC
//! paper's evaluation (§VI).
//!
//! Each `fig*`/`table*` binary in `src/bin/` regenerates one artifact;
//! this library holds the shared setup (compiler, suite, pulse-cache
//! persistence) and the experiment implementations so binaries stay thin
//! and integration tests can call the same code.

#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod golden;
pub mod serve;
pub mod table;

pub use context::{fast_mode, ExperimentContext};
pub use golden::{compute_corpus, diff_corpus, GoldenCorpus, GoldenRow};
pub use table::{print_table, write_csv};
