//! Minimal table rendering and CSV output for experiment results.

use std::io::Write;
use std::path::Path;

/// Prints an aligned text table: a header row plus data rows.
///
/// # Examples
///
/// ```
/// accqoc_bench::print_table(
///     &["name", "value"],
///     &[vec!["x".to_string(), "1".to_string()]],
/// );
/// ```
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let n_cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", line.join("  "));
    };
    render(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total = widths.iter().sum::<usize>() + 2 * n_cols;
    println!("  {}", "-".repeat(total));
    for row in rows {
        render(row);
    }
}

/// Writes rows as CSV under `results/` (creating the directory), so the
/// figures can be re-plotted outside this repository.
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    eprintln!("[csv] wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "x".into()],
            ],
        );
    }

    #[test]
    fn csv_roundtrip() {
        let rows = vec![vec!["p1".to_string(), "1.5".to_string()]];
        write_csv("test_tmp.csv", &["name", "v"], &rows).unwrap();
        let content = std::fs::read_to_string("results/test_tmp.csv").unwrap();
        assert!(content.contains("name,v"));
        assert!(content.contains("p1,1.5"));
        std::fs::remove_file("results/test_tmp.csv").ok();
    }
}
