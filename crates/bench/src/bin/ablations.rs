//! Ablation sweeps for the design choices DESIGN.md calls out:
//!
//! 1. warm-start gate threshold (trace infidelity) — how permissive can
//!    seeding be before dissimilar pulses start hurting;
//! 2. crosstalk weight in the mapping heuristic — swaps traded against
//!    close pairs;
//! 3. MST partition width — makespan vs cut-edge cost.
//!
//! Run with: `cargo run --release -p accqoc-bench --bin ablations`

use accqoc::{
    collect_category, mst_compile_order, partition_tree, scratch_order, SimilarityFn,
    SimilarityGraph, WeightedTree,
};
use accqoc_bench::experiments::{category_steps, training_cost, truncate_category};
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};
use accqoc_map::{crosstalk_metric, map_circuit, MappingOptions};

fn main() {
    let ctx = ExperimentContext::bare();
    warm_threshold_sweep(&ctx);
    crosstalk_weight_sweep(&ctx);
    partition_width_sweep(&ctx);
}

fn warm_threshold_sweep(ctx: &ExperimentContext) {
    println!("Ablation 1 — warm-start gate threshold (trace infidelity)\n");
    let programs = ctx.profile_programs();
    let (canonical, _, _) = collect_category(&ctx.session, &programs);
    let cap = if fast_mode() { 12 } else { 24 };
    let canonical = truncate_category(canonical, cap);
    let steps = category_steps(&ctx.session, &canonical);
    let unitaries: Vec<_> = canonical.iter().map(|(u, _)| u.clone()).collect();
    let graph = SimilarityGraph::build(unitaries, SimilarityFn::TraceOverlap);
    let order = mst_compile_order(&graph);
    let scratch = training_cost(
        &ctx.session,
        &canonical,
        &steps,
        &scratch_order(canonical.len(), &graph),
        -1.0,
    );

    let mut rows = Vec::new();
    for gate in [0.0, 0.02, 0.05, 0.15, 0.5, f64::INFINITY] {
        let cost = training_cost(&ctx.session, &canonical, &steps, &order, gate);
        rows.push(vec![
            format!("{gate}"),
            cost.to_string(),
            format!(
                "{:+.1}%",
                (1.0 - cost as f64 / scratch.max(1) as f64) * 100.0
            ),
        ]);
    }
    print_table(
        &["gate threshold", "iterations", "reduction vs scratch"],
        &rows,
    );
    println!("(scratch baseline: {scratch} iterations)\n");
    write_csv(
        "ablation_warm_gate.csv",
        &["gate", "iterations", "reduction"],
        &rows,
    )
    .ok();
}

fn crosstalk_weight_sweep(ctx: &ExperimentContext) {
    println!("Ablation 2 — crosstalk weight in the mapping heuristic\n");
    let topo = &ctx.session.config().topology;
    let programs = ctx.eval_programs_sized(800, if fast_mode() { 3 } else { 6 });
    let mut rows = Vec::new();
    for weight in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let mut total_xtalk = 0usize;
        let mut total_swaps = 0usize;
        for p in &programs {
            let mapped = map_circuit(
                &p.circuit.decomposed(false),
                topo,
                &MappingOptions {
                    crosstalk_aware: weight > 0.0,
                    crosstalk_weight: weight,
                    ..Default::default()
                },
            );
            total_xtalk += crosstalk_metric(&mapped.circuit, topo);
            total_swaps += mapped.swap_count;
        }
        rows.push(vec![
            format!("{weight}"),
            total_xtalk.to_string(),
            total_swaps.to_string(),
        ]);
    }
    print_table(&["weight", "total crosstalk", "total swaps"], &rows);
    println!();
    write_csv(
        "ablation_xtalk_weight.csv",
        &["weight", "crosstalk", "swaps"],
        &rows,
    )
    .ok();
}

fn partition_width_sweep(ctx: &ExperimentContext) {
    println!("Ablation 3 — MST partition width (workers vs makespan)\n");
    let programs = ctx.profile_programs();
    let (canonical, _, _) = collect_category(&ctx.session, &programs);
    let cap = if fast_mode() { 24 } else { 64 };
    let canonical = truncate_category(canonical, cap);
    let unitaries: Vec<_> = canonical.iter().map(|(u, _)| u.clone()).collect();
    let graph = SimilarityGraph::build(unitaries, SimilarityFn::TraceOverlap);
    let order = mst_compile_order(&graph);
    let tree = WeightedTree::from_order(&order, canonical.len());
    let total = tree.total_weight();

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8, 16] {
        let p = partition_tree(&tree, k);
        rows.push(vec![
            k.to_string(),
            p.n_parts.to_string(),
            format!("{:.2}", p.makespan(&tree)),
            format!("{:.2}", total / p.makespan(&tree).max(1e-12)),
            format!("{:.2}", p.balance(&tree)),
        ]);
    }
    print_table(
        &["k", "parts", "weight makespan", "speedup", "balance"],
        &rows,
    );
    write_csv(
        "ablation_partition.csv",
        &["k", "parts", "makespan", "speedup", "balance"],
        &rows,
    )
    .ok();
}
