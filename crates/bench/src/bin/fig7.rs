//! Regenerates paper Figure 7: coverage of programs under map2b4l.
use accqoc_bench::experiments::fig7_rows;
use accqoc_bench::{print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 7 — coverage of evaluation programs vs the pre-compiled category\n");
    let ctx = ExperimentContext::precompiled();
    let rows = fig7_rows(&ctx, 7);
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, covered, total, rate)| {
            vec![
                name.clone(),
                covered.to_string(),
                total.to_string(),
                format!("{:.1}%", rate * 100.0),
            ]
        })
        .collect();
    print_table(&["program", "covered", "groups", "coverage"], &display);
    let avg: f64 = rows.iter().map(|r| r.3).sum::<f64>() / rows.len().max(1) as f64;
    println!("\naverage coverage: {:.1}% (paper: 89.7%)", avg * 100.0);
    write_csv(
        "fig7.csv",
        &["program", "covered", "total", "rate"],
        &display,
    )
    .ok();
}
