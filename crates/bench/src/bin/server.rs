//! Loopback serving-daemon experiment: boot `accqoc-server` in-process,
//! replay a workload from concurrent clients, and assert the daemon is
//! *transparent* — served pulses byte-identical to what the in-process
//! [`Session::serve_program`] path produces on the same stream.
//!
//! Concurrent clients replaying the *same* stream are deterministic by
//! construction: in-flight coalescing means each group is compiled
//! exactly once, by whichever client gets there first, against a library
//! holding exactly the stream prefix — the same state the sequential
//! in-process replay sees. That is what makes a byte-level gate possible
//! at all.
//!
//! Modes:
//!
//! - default: a small fig13-style arrival stream served over loopback by
//!   2 clients (honors `ACCQOC_FAST=1`).
//! - `--check`: the golden suite replayed by 2 concurrent clients, then
//!   replayed again. Exits non-zero unless (a) every served pulse is
//!   byte-identical to the in-process baseline, (b) the warm-start share
//!   meets the same pinned 0.50 gate as `library_serve --check`, and
//!   (c) the second replay is fully cache-covered. The CI smoke gate for
//!   the daemon.
//! - `--connections N`: open N loopback connections (default 256), hold
//!   them all open simultaneously, and have every one complete a stats
//!   call and a serve. Exits non-zero if any connection is refused,
//!   any request is rejected busy, or any call fails. Pins that the
//!   event-loop transport sustains N concurrent connections — the old
//!   thread-per-connection design capped out at its 64-thread limit.
//!
//! The stream modes write per-response rows to `results/server_serve.csv`;
//! `--connections` writes per-connection latencies to
//! `results/server_connections.csv`.

use std::sync::Arc;

use accqoc::{PulseCache, ServeReport, Session};
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};
use accqoc_circuit::{Circuit, Gate};
use accqoc_hw::Topology;
use accqoc_server::{Client, Server, ServerConfig};
use accqoc_workloads::{arrival_stream, golden_suite};

/// Same pinned gate as `library_serve --check` (measured 0.550 on the
/// golden stream; the daemon must not change the measurement).
const CHECK_WARM_SHARE: f64 = 0.50;

/// Concurrent clients replaying the stream.
const N_CLIENTS: usize = 2;

const HEADER: [&str; 9] = [
    "phase",
    "client",
    "program",
    "coverage",
    "compiled",
    "warm",
    "iterations",
    "latency_reduction",
    "pulses_identical",
];

struct Row {
    phase: &'static str,
    client: usize,
    program: String,
    report: ServeReport,
    identical: bool,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.phase.to_string(),
            self.client.to_string(),
            self.program.clone(),
            format!("{:.3}", self.report.coverage.rate()),
            self.report.n_compiled.to_string(),
            self.report.n_warm_started.to_string(),
            self.report.dynamic_iterations.to_string(),
            format!("{:.2}", self.report.latency_reduction()),
            self.identical.to_string(),
        ]
    }
}

/// Default connection count for `--connections`, matching the CI gate.
const DEFAULT_CONNECTIONS: usize = 256;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        run_check();
    } else if let Some(at) = args.iter().position(|a| a == "--connections") {
        let n = match args.get(at + 1) {
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("--connections takes a positive count, got `{raw}`");
                std::process::exit(2);
            }),
            None => DEFAULT_CONNECTIONS,
        };
        run_connections(n);
    } else {
        run_stream();
    }
}

/// Serves `programs` in-process on `session`, returning per-program
/// reports plus the expected pulse artifact for each program (its
/// unique-group entries, serialized deterministically).
fn baseline_replay(
    session: &Session,
    programs: &[(String, Circuit)],
) -> Vec<(ServeReport, String)> {
    programs
        .iter()
        .map(|(_, circuit)| {
            let report = session.serve_program(circuit).expect("baseline serves");
            let mut cache = PulseCache::new();
            for group in &report.groups {
                cache.insert(
                    group.key.clone(),
                    session.cached(&group.key).expect("just served"),
                );
            }
            let json = cache.to_json();
            (report, json)
        })
        .collect()
}

/// Replays `programs` through the daemon from [`N_CLIENTS`] concurrent
/// connections, each sending the full stream in order, and compares
/// every returned pulse artifact byte-for-byte against the baseline.
fn daemon_replay(
    addr: std::net::SocketAddr,
    programs: &[(String, Circuit)],
    baseline: &[(ServeReport, String)],
    phase: &'static str,
) -> (Vec<Row>, usize) {
    let results: Vec<Vec<Row>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N_CLIENTS)
            .map(|client_idx| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    programs
                        .iter()
                        .zip(baseline)
                        .map(|((name, circuit), (expected_report, expected_pulses))| {
                            let (report, pulses) =
                                client.serve_program(circuit, true).expect("daemon serves");
                            let identical = pulses
                                .as_ref()
                                .map(|p| p.to_json() == *expected_pulses)
                                .unwrap_or(false)
                                && (report.overall_latency_ns - expected_report.overall_latency_ns)
                                    .abs()
                                    == 0.0;
                            Row {
                                phase,
                                client: client_idx,
                                program: name.clone(),
                                report,
                                identical,
                            }
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let rows: Vec<Row> = results.into_iter().flatten().collect();
    let mismatches = rows.iter().filter(|r| !r.identical).count();
    (rows, mismatches)
}

fn write_table(rows: &[Row]) {
    let cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    print_table(&HEADER, &cells);
    write_csv("server_serve.csv", &HEADER, &cells).ok();
}

fn golden_session() -> Session {
    // Mirrors library_serve --check: 5-qubit linear device, 300-iteration
    // GRAPE cap, stock similarity/warm-start config.
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    Session::builder()
        .topology(Topology::linear(5))
        .grape(grape)
        .build()
        .expect("5-qubit session is valid")
}

fn run_check() {
    println!("accqoc-server — golden-suite loopback check ({N_CLIENTS} clients)\n");
    let programs: Vec<(String, Circuit)> = golden_suite()
        .iter()
        .map(|p| (p.name.clone(), p.circuit.clone()))
        .collect();

    // In-process baseline (the byte-identity reference).
    let baseline_session = golden_session();
    let baseline = baseline_replay(&baseline_session, &programs);

    // Daemon over loopback.
    let daemon_session = Arc::new(golden_session());
    let server = Server::bind(
        Arc::clone(&daemon_session),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Pass 1: concurrent cold replay. Pass 2: must be fully covered.
    let (mut rows, mismatches) = daemon_replay(addr, &programs, &baseline, "serve");
    let (rows2, mismatches2) = daemon_replay(addr, &programs, &baseline, "replay");
    let replay_covered = rows2.iter().all(|r| r.report.n_compiled == 0);
    rows.extend(rows2);
    write_table(&rows);

    let mut client = Client::connect(addr).expect("stats client connects");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server ran cleanly");

    // Library-level byte identity: after serving, the daemon's whole
    // artifact equals the in-process artifact.
    let snapshot_identical =
        daemon_session.cache_snapshot().to_json() == baseline_session.cache_snapshot().to_json();
    let warm_share = stats.library.warm_share();
    let warm_cheaper =
        stats.library.mean_warm_iterations() < stats.library.mean_scratch_iterations();
    let baseline_stats = baseline_session.library().stats();

    println!();
    println!(
        "daemon compiles: {} ({} warm / {} scratch), baseline compiles: {}",
        stats.library.misses,
        stats.library.warm_compiles,
        stats.library.scratch_compiles,
        baseline_stats.misses,
    );
    println!(
        "warm share {:.3} (gate {CHECK_WARM_SHARE}), coalesced waits {}, busy rejections {}",
        warm_share, stats.server.coalesced_waits, stats.server.requests_rejected_busy,
    );

    let mut failed = false;
    if mismatches + mismatches2 > 0 {
        eprintln!(
            "FAIL: {} responses were not byte-identical to in-process serving",
            mismatches + mismatches2
        );
        failed = true;
    }
    if !snapshot_identical {
        eprintln!("FAIL: daemon library snapshot diverged from the in-process artifact");
        failed = true;
    }
    if stats.library.misses != baseline_stats.misses {
        eprintln!(
            "FAIL: daemon compiled {} groups, in-process baseline compiled {} (coalescing broken?)",
            stats.library.misses, baseline_stats.misses
        );
        failed = true;
    }
    if warm_share < CHECK_WARM_SHARE {
        eprintln!(
            "FAIL: warm-start share {warm_share:.3} below pinned threshold {CHECK_WARM_SHARE}"
        );
        failed = true;
    }
    if !replay_covered {
        eprintln!("FAIL: replayed stream was not fully served from the library");
        failed = true;
    }
    if !warm_cheaper {
        eprintln!(
            "FAIL: warm compiles not cheaper than scratch ({:.1} vs {:.1} mean iterations)",
            stats.library.mean_warm_iterations(),
            stats.library.mean_scratch_iterations()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nOK: {} responses byte-identical, warm share {warm_share:.3} >= {CHECK_WARM_SHARE}, replay fully covered",
        rows.len()
    );
}

fn run_stream() {
    println!("accqoc-server — arrival-stream serving over loopback ({N_CLIENTS} clients)\n");
    let ctx = ExperimentContext::bare();
    let (n, max_gates) = if fast_mode() { (3, 260) } else { (5, 420) };
    let pool = ctx.eval_programs_sized(max_gates, n);
    let programs: Vec<(String, Circuit)> = arrival_stream(pool.len(), pool.len() * 2, 0x5EED)
        .into_iter()
        .map(|i| (pool[i].name.clone(), pool[i].circuit.clone()))
        .collect();

    // Baseline on the context session, daemon on an identical fresh one.
    let baseline = baseline_replay(&ctx.session, &programs);
    let daemon_session = Arc::new(
        Session::builder()
            .topology(Topology::melbourne())
            .build()
            .expect("stock melbourne session is valid"),
    );
    let server = Server::bind(
        Arc::clone(&daemon_session),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let (rows, mismatches) = daemon_replay(addr, &programs, &baseline, "serve");
    write_table(&rows);

    let mut client = Client::connect(addr).expect("stats client connects");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server ran cleanly");

    println!();
    println!(
        "served {} responses across {N_CLIENTS} clients: {} compiles ({} warm), {} hits, {} coalesced waits",
        rows.len(),
        stats.library.misses,
        stats.library.warm_compiles,
        stats.library.hits,
        stats.server.coalesced_waits,
    );
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses were not byte-identical to in-process serving");
        std::process::exit(1);
    }
    println!("all served pulses byte-identical to in-process Session::serve_program");
}

/// Opens `n` loopback connections, holds them all open at once, and has
/// each complete a stats call and a serve. Two barriers make the
/// concurrency claim exact: no request is sent until every socket is
/// connected, and no socket closes until every request has been
/// answered — so all `n` connections are provably open simultaneously.
fn run_connections(n: usize) {
    println!("accqoc-server — concurrent-connection soak ({n} connections)\n");
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    let session = Arc::new(
        Session::builder()
            .topology(Topology::linear(2))
            .grape(grape)
            .build()
            .expect("2-qubit session is valid"),
    );
    let config = ServerConfig {
        workers: 4,
        // Room for every connection's request at once, plus the final
        // stats/shutdown client.
        queue_capacity: n + 8,
        max_connections: n + 8,
        ..ServerConfig::default()
    };
    let server = Server::bind(Arc::clone(&session), "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // One shared single-group program: the first serve compiles it, the
    // other n-1 either coalesce onto that compile or hit the library.
    let program = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
    let all_connected = Arc::new(std::sync::Barrier::new(n));
    let all_answered = Arc::new(std::sync::Barrier::new(n));

    let mut cells: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|idx| {
                let all_connected = Arc::clone(&all_connected);
                let all_answered = Arc::clone(&all_answered);
                let program = &program;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    all_connected.wait();
                    let t0 = std::time::Instant::now();
                    client.stats().expect("stats over a saturated daemon");
                    let stats_us = t0.elapsed().as_micros();
                    let t1 = std::time::Instant::now();
                    let (report, _) = client
                        .serve_program(program, false)
                        .expect("serve over a saturated daemon");
                    let serve_us = t1.elapsed().as_micros();
                    all_answered.wait();
                    vec![
                        idx.to_string(),
                        stats_us.to_string(),
                        serve_us.to_string(),
                        format!("{:.3}", report.coverage.rate()),
                    ]
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread"))
            .collect()
    });
    cells.sort_by_key(|row| row[0].parse::<usize>().unwrap_or(0));
    let header = ["connection", "stats_us", "serve_us", "coverage"];
    write_csv("server_connections.csv", &header, &cells).ok();

    let mut client = Client::connect(addr).expect("stats client connects");
    let stats = client.stats().expect("stats");
    client.shutdown().expect("shutdown");
    let counters = server_thread
        .join()
        .expect("server thread")
        .expect("server ran cleanly");

    let micros = |col: usize| -> Vec<u128> {
        let mut v: Vec<u128> = cells.iter().map(|r| r[col].parse().unwrap_or(0)).collect();
        v.sort_unstable();
        v
    };
    let stats_us = micros(1);
    let serve_us = micros(2);
    let pct = |v: &[u128], p: f64| v[((v.len() - 1) as f64 * p) as usize];
    println!(
        "stats latency us: p50 {} p95 {} max {}",
        pct(&stats_us, 0.5),
        pct(&stats_us, 0.95),
        stats_us.last().copied().unwrap_or(0),
    );
    println!(
        "serve latency us: p50 {} p95 {} max {}",
        pct(&serve_us, 0.5),
        pct(&serve_us, 0.95),
        serve_us.last().copied().unwrap_or(0),
    );
    println!(
        "accepted {} rejected {} busy {} compiles {} coalesced waits {}",
        counters.connections_accepted,
        counters.connections_rejected,
        counters.requests_rejected_busy,
        stats.library.misses,
        stats.server.coalesced_waits,
    );

    let mut failed = false;
    // n soak connections plus the final stats/shutdown client.
    if counters.connections_accepted != n as u64 + 1 {
        eprintln!(
            "FAIL: accepted {} connections, expected {}",
            counters.connections_accepted,
            n + 1
        );
        failed = true;
    }
    if counters.connections_rejected != 0 {
        eprintln!(
            "FAIL: {} connections refused below the configured cap",
            counters.connections_rejected
        );
        failed = true;
    }
    if counters.requests_rejected_busy != 0 {
        eprintln!(
            "FAIL: {} requests rejected busy with a queue sized for the soak",
            counters.requests_rejected_busy
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nOK: {n} simultaneous connections each completed a stats call and a serve");
}
