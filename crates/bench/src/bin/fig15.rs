//! Regenerates paper Figure 15: AccQOC vs brute-force QOC.
use accqoc::BruteForceConfig;
use accqoc_bench::experiments::fig15_rows;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 15 — AccQOC vs brute-force QOC (latency and compile cost)\n");
    let ctx = ExperimentContext::precompiled();
    let n = if fast_mode() { 2 } else { 4 };
    let bf = BruteForceConfig::default();
    println!(
        "(brute-force groups capped at {} qubits / {} layers — the paper used up to 10 qubits\n taking hours; the trade-off direction is what matters)\n",
        bf.max_qubits, bf.max_layers
    );
    let rows = fig15_rows(&ctx, n, &bf);
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                format!("{:.2}x", r.gate_based_ns / r.accqoc_ns),
                format!("{:.2}x", r.gate_based_ns / r.brute_force_ns),
                r.accqoc_iterations.to_string(),
                r.brute_force_iterations.to_string(),
                format!(
                    "{:.1}x",
                    r.brute_force_iterations as f64 / r.accqoc_iterations.max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        &[
            "program",
            "accqoc latency red.",
            "bf latency red.",
            "accqoc iters",
            "bf iters",
            "compile speedup",
        ],
        &display,
    );
    let sum_acc: usize = rows.iter().map(|r| r.accqoc_iterations).sum();
    let sum_bf: usize = rows.iter().map(|r| r.brute_force_iterations).sum();
    let avg_acc: f64 = rows
        .iter()
        .map(|r| r.gate_based_ns / r.accqoc_ns)
        .sum::<f64>()
        / rows.len().max(1) as f64;
    let avg_bf: f64 = rows
        .iter()
        .map(|r| r.gate_based_ns / r.brute_force_ns)
        .sum::<f64>()
        / rows.len().max(1) as f64;
    println!(
        "\naggregate: accqoc {avg_acc:.2}x latency vs bf {avg_bf:.2}x (paper: 2.43x vs 3.01x);\n compile speedup {:.1}x (paper: 9.88x)",
        sum_bf as f64 / sum_acc.max(1) as f64
    );
    write_csv(
        "fig15.csv",
        &[
            "program",
            "accqoc_red",
            "bf_red",
            "accqoc_iters",
            "bf_iters",
            "speedup",
        ],
        &display,
    )
    .ok();
}
