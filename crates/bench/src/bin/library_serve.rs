//! Online-serving experiment: replay a workload as an arrival stream
//! against the pulse library and report hit rate, warm-start share, and
//! the mean GRAPE iteration cost warm vs scratch.
//!
//! Modes:
//!
//! - default: the fig13 evaluation workload (Melbourne device, eval
//!   split, smallest programs first) served cold — a service warming up
//!   on real traffic. Honors `ACCQOC_FAST=1`.
//! - `--check`: the golden suite (the deterministic ≤5-qubit corpus
//!   programs) replayed twice on a 5-qubit device. Exits non-zero when
//!   the warm-start share of compiles drops below the pinned threshold
//!   or the second pass is not fully cache-covered — the CI regression
//!   gate for the fingerprint index and the warm-start path.
//!
//! Both modes write a per-program row table to
//! `results/library_serve.csv`.

use accqoc::Session;
use accqoc_bench::serve::{serve_stream, summary_lines, ServeRow, SERVE_HEADER};
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};
use accqoc_hw::Topology;
use accqoc_workloads::{arrival_stream, golden_suite};

/// Pinned CI threshold: warm-start share of compiles on the golden
/// stream. The pinned setup measures 0.550 (22 of 40 compiles
/// warm-started) — the golden workload's intrinsic similarity budget —
/// and the run is deterministic, so 0.50 is a tight gate: a broken
/// fingerprint index or warm-start gate drops the share to 0, and even
/// a mild retrieval regression (a couple of lost neighbors) trips it.
const CHECK_WARM_SHARE: f64 = 0.50;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if check {
        run_check();
    } else {
        run_stream();
    }
}

fn write_table(rows: &[ServeRow]) {
    let cells: Vec<Vec<String>> = rows.iter().map(ServeRow::cells).collect();
    print_table(&SERVE_HEADER, &cells);
    write_csv("library_serve.csv", &SERVE_HEADER, &cells).ok();
}

fn run_stream() {
    println!("Pulse library — online serving on the fig13 workload\n");
    let ctx = ExperimentContext::bare();
    let (n, max_gates) = if fast_mode() { (3, 260) } else { (7, 420) };
    let pool = ctx.eval_programs_sized(max_gates, n);
    // Rank-weighted arrivals with repetition: a hot head re-arrives, so
    // the stream exercises hits as well as warm misses.
    let programs: Vec<_> = arrival_stream(pool.len(), pool.len() * 3, 0x5EED)
        .into_iter()
        .map(|i| (pool[i].name.clone(), pool[i].circuit.clone()))
        .collect();
    let (rows, stats) = serve_stream(&ctx.session, &programs).expect("stream serves");
    write_table(&rows);
    println!();
    for line in summary_lines(&stats) {
        println!("{line}");
    }
}

fn run_check() {
    println!("Pulse library — golden-suite serving check\n");
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    let session = Session::builder()
        .topology(Topology::linear(5))
        .grape(grape)
        .build()
        .expect("5-qubit session is valid");
    let programs: Vec<_> = golden_suite()
        .iter()
        .map(|p| (p.name.clone(), p.circuit.clone()))
        .collect();

    // Pass 1: a cold library warms up on the stream.
    let (mut rows, _) = serve_stream(&session, &programs).expect("cold pass serves");
    // Pass 2: the replayed stream must be fully covered.
    let (rows2, stats) = serve_stream(&session, &programs).expect("warm pass serves");
    rows.extend(rows2);
    write_table(&rows);
    println!();
    for line in summary_lines(&stats) {
        println!("{line}");
    }

    let warm_share = stats.warm_share();
    let replay_covered = rows[programs.len()..].iter().all(|r| r.compiled == 0);
    let warm_cheaper = stats.mean_warm_iterations() < stats.mean_scratch_iterations();
    let mut failed = false;
    if warm_share < CHECK_WARM_SHARE {
        eprintln!(
            "FAIL: warm-start share {:.3} below pinned threshold {CHECK_WARM_SHARE}",
            warm_share
        );
        failed = true;
    }
    if !replay_covered {
        eprintln!("FAIL: replayed stream was not fully served from the library");
        failed = true;
    }
    if !warm_cheaper {
        eprintln!(
            "FAIL: warm compiles not cheaper than scratch ({:.1} vs {:.1} mean iterations)",
            stats.mean_warm_iterations(),
            stats.mean_scratch_iterations()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nOK: warm share {:.3} >= {CHECK_WARM_SHARE}, replay fully covered, warm cheaper than scratch",
        warm_share
    );
}
