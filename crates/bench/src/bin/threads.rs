//! Threads-vs-speedup sweep of the parallel pre-compilation engine on
//! the Figure 13 workload: identical GRAPE work per row (the partition
//! plan is thread-count-invariant), only the worker-pool size changes.
use accqoc_bench::experiments::threads_speedup_rows;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Parallel pre-compilation — wall-clock speedup vs worker threads\n");
    let ctx = ExperimentContext::bare();
    let n_programs = if fast_mode() { 3 } else { 7 };
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 2, 4];
    if max_threads >= 8 {
        counts.push(8);
    }
    counts.retain(|&t| t <= max_threads.max(4));
    let rows = threads_speedup_rows(&ctx, &counts, n_programs);

    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.2}", r.wall_s),
                format!("{:.2}x", r.speedup),
                r.groups.to_string(),
                r.total_iterations.to_string(),
                r.makespan_iterations.to_string(),
                r.cut_edges.to_string(),
                r.artifact_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "threads",
            "wall_s",
            "speedup",
            "groups",
            "iters",
            "makespan",
            "cuts",
            "artifact_bytes",
        ],
        &display,
    );

    let deterministic = rows.windows(2).all(|w| {
        w[0].artifact_bytes == w[1].artifact_bytes && w[0].total_iterations == w[1].total_iterations
    });
    println!(
        "\nartifact identical across thread counts: {}",
        if deterministic { "yes" } else { "NO — bug!" }
    );
    if let Some(best) = rows
        .iter()
        .map(|r| r.speedup)
        .fold(None, |m: Option<f64>, s| Some(m.map_or(s, |m| m.max(s))))
    {
        println!("best speedup over 1 thread: {best:.2}x");
    }
    write_csv(
        "threads.csv",
        &[
            "threads",
            "wall_s",
            "speedup",
            "groups",
            "iters",
            "makespan",
            "cuts",
            "artifact_bytes",
        ],
        &display,
    )
    .ok();
}
