//! Regenerates the golden regression corpus (`results/golden/corpus.json`)
//! and the per-workload fidelity table (`results/verify_fidelity.csv`).
//!
//! Default mode recomputes the compact golden suite on the corpus session
//! (5-qubit linear device), prints the fidelity table, reports any drift
//! against the checked-in snapshot, and rewrites both artifacts. With
//! `--check` the snapshot is left untouched and the process exits
//! non-zero on drift — the CI gate (one GRAPE sweep buys both the diff
//! and the uploaded fidelity table; the `golden_corpus` test covers the
//! same contract under plain `cargo test`).
//!
//! With `ACCQOC_VERIFY_FULL=1` it additionally sweeps *every* suite
//! workload that fits the Melbourne device through pre-compile → verify
//! and asserts the paper-level invariant: per-group gate fidelity at
//! least 0.999 for every workload. This is the slow, exhaustive oracle —
//! run it deliberately, not in the default CI path.

use std::io::Write;

use accqoc::Session;
use accqoc_bench::golden::{compute_corpus, diff_corpus, golden_dir, GoldenCorpus, GOLDEN_FILE};
use accqoc_bench::print_table;
use accqoc_hw::Topology;
use accqoc_workloads::full_suite;

fn main() {
    println!("Semantic verification — golden corpus regeneration\n");
    let t0 = std::time::Instant::now();
    let corpus = compute_corpus();

    let header = [
        "workload",
        "qubits",
        "instances",
        "unique",
        "coverage",
        "latency_ns",
        "gate_ns",
        "min_group_fid",
        "bound",
        "exact_fid",
        "state_fid",
    ];
    let rows: Vec<Vec<String>> = corpus
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.n_qubits.to_string(),
                r.instances.to_string(),
                r.unique_groups.to_string(),
                format!("{:.2}", r.coverage_rate),
                format!("{:.1}", r.overall_latency_ns),
                format!("{:.1}", r.gate_based_latency_ns),
                format!("{:.6}", r.min_group_fidelity),
                format!("{:.6}", r.program_fidelity_bound),
                format!("{:.6}", r.exact_fidelity),
                format!("{:.6}", r.state_fidelity),
            ]
        })
        .collect();
    print_table(&header, &rows);
    println!(
        "\nrecomputed {} workloads in {:.1?}",
        corpus.rows.len(),
        t0.elapsed()
    );

    let check_only = std::env::args().any(|a| a == "--check");
    let path = golden_dir().join(GOLDEN_FILE);
    let drift = match GoldenCorpus::load(&path) {
        Ok(previous) => {
            let drift = diff_corpus(&previous, &corpus);
            if drift.is_empty() {
                println!("no drift against {}", path.display());
            } else {
                println!("drift against {} ({} lines):", path.display(), drift.len());
                for line in &drift {
                    println!("  {line}");
                }
            }
            drift
        }
        Err(e) => {
            println!("no previous corpus ({e})");
            vec![format!("previous corpus unreadable: {e}")]
        }
    };
    if check_only {
        println!("--check: leaving {} untouched", path.display());
    } else {
        corpus.save(&path).expect("corpus snapshot writable");
        println!("wrote {}", path.display());
    }
    // Anchor the CSV next to the corpus (workspace results/), not the
    // CWD-relative results/ that `write_csv` uses — both artifacts must
    // land in the same place however the binary is invoked.
    let csv_path = golden_dir().join("../verify_fidelity.csv");
    let mut csv = std::fs::File::create(&csv_path).expect("fidelity csv writable");
    writeln!(csv, "{}", header.join(",")).unwrap();
    for row in &rows {
        writeln!(csv, "{}", row.join(",")).unwrap();
    }
    println!("wrote {}", csv_path.display());
    if check_only && !drift.is_empty() {
        eprintln!("--check failed: golden corpus drifted");
        std::process::exit(1);
    }

    if std::env::var("ACCQOC_VERIFY_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        verify_full_suite();
    }
}

/// Exhaustive mode: verify every Melbourne-sized workload in the suite.
fn verify_full_suite() {
    println!("\nFull-suite verification (ACCQOC_VERIFY_FULL=1) — this takes a while…");
    let session = Session::builder()
        .topology(Topology::melbourne())
        .build()
        .expect("stock melbourne session");
    let max_q = session.config().topology.n_qubits();
    let suite = full_suite();
    let eligible: Vec<_> = suite
        .iter()
        .filter(|p| p.circuit.n_qubits() <= max_q)
        .collect();
    println!(
        "{} of {} workloads fit the device",
        eligible.len(),
        suite.len()
    );
    let mut worst: Option<(String, f64)> = None;
    for (i, program) in eligible.iter().enumerate() {
        let t = std::time::Instant::now();
        session
            .compile_program(&program.circuit)
            .expect("suite workload compiles");
        let report = session
            .verify_program(&program.circuit)
            .expect("suite workload verifies");
        assert!(
            report.min_group_fidelity >= 0.999,
            "{}: per-group fidelity {} below 0.999",
            program.name,
            report.min_group_fidelity
        );
        if worst
            .as_ref()
            .is_none_or(|(_, f)| report.min_group_fidelity < *f)
        {
            worst = Some((program.name.clone(), report.min_group_fidelity));
        }
        println!(
            "  [{}/{}] {}: min group fid {:.6}, {} instances ({:.1?})",
            i + 1,
            eligible.len(),
            program.name,
            report.min_group_fidelity,
            report.n_instances,
            t.elapsed()
        );
    }
    if let Some((name, fid)) = worst {
        println!("\nfull suite verified; worst per-group fidelity {fid:.6} ({name})");
    }
}
