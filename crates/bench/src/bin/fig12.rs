//! Regenerates paper Figure 12: latency reduction across the six grouping
//! policies, with and without most-frequent-group optimization.
use accqoc_bench::experiments::fig12_cells;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 12 — latency reduction vs gate-based, 6 policies per program\n");
    let ctx = ExperimentContext::bare();
    let n = if fast_mode() { 2 } else { 6 };
    let cells = fig12_cells(&ctx, n);
    let display: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.program.clone(),
                c.policy.clone(),
                format!("{:.0}", c.gate_based_ns),
                format!("{:.0}", c.accqoc_ns),
                format!("{:.2}x", c.reduction()),
                format!("{:.2}x", c.reduction_optimized()),
            ]
        })
        .collect();
    print_table(
        &[
            "program",
            "policy",
            "gate-based ns",
            "accqoc ns",
            "reduction",
            "w/ mfg-opt",
        ],
        &display,
    );
    let avg: f64 = cells.iter().map(|c| c.reduction()).sum::<f64>() / cells.len().max(1) as f64;
    println!(
        "\naverage latency reduction: {avg:.2}x (paper: 1.2x–2.6x range, avg 2.43x for map2b4l)"
    );
    write_csv(
        "fig12.csv",
        &[
            "program",
            "policy",
            "gate_ns",
            "accqoc_ns",
            "reduction",
            "reduction_opt",
        ],
        &display,
    )
    .ok();
}
