//! Sharded-deployment experiment: spawn three worker daemons as real
//! subprocesses (each owning a durable store), put the consistent-hash
//! router in front, replay the golden suite through the router, and
//! assert the deployment is *transparent* — every report and every
//! served pulse byte-identical to the in-process
//! [`Session::serve_program`] path on one session.
//!
//! Modes:
//!
//! - default: a truncated golden stream through the deployment, with
//!   byte-identity reporting (honors `ACCQOC_FAST=1`).
//! - `--check`: the full golden suite, replayed twice, plus a
//!   kill/restart pass. Exits non-zero unless (a) every response is
//!   byte-identical to the in-process baseline, (b) the summed shard
//!   counters equal the baseline's and meet the pinned 0.50 warm-share
//!   gate, (c) the second replay is fully cache-covered, and (d) after
//!   killing the width-2 owner the router answers a typed
//!   `shard_unavailable` (bounded, never a hang) and a restart from the
//!   shard's data dir resumes with *zero* scratch recompiles of
//!   persisted groups. The CI smoke gate for the sharded tier.
//!
//! Writes per-response rows to `results/shard_serve.csv`. Worker
//! daemons are found next to this binary (build the workspace, or at
//! least `accqoc-server`, first).

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use accqoc::{PulseCache, ServeReport, Session};
use accqoc_bench::{fast_mode, print_table, write_csv};
use accqoc_circuit::Circuit;
use accqoc_hw::Topology;
use accqoc_server::router::{RouterConfig, RouterHandler};
use accqoc_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use accqoc_workloads::golden_suite;

/// Same pinned gate as `library_serve --check` and `server --check`
/// (measured 0.550 on the golden stream; sharding must not change the
/// measurement — the counters are summed across shards).
const CHECK_WARM_SHARE: f64 = 0.50;

const SHARDS: usize = 3;
const QUBITS: usize = 5;
const MAX_ITERS: usize = 300;

const HEADER: [&str; 7] = [
    "phase",
    "program",
    "coverage",
    "compiled",
    "warm",
    "iterations",
    "pulses_identical",
];

struct Row {
    phase: &'static str,
    program: String,
    report: ServeReport,
    identical: bool,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.phase.to_string(),
            self.program.clone(),
            format!("{:.3}", self.report.coverage.rate()),
            self.report.n_compiled.to_string(),
            self.report.n_warm_started.to_string(),
            self.report.dynamic_iterations.to_string(),
            self.identical.to_string(),
        ]
    }
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    run(check);
}

fn golden_session() -> Session {
    // Mirrors server --check: 5-qubit linear device, 300-iteration
    // GRAPE cap, stock similarity/warm-start config — and the workers
    // are spawned with exactly these flags.
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = MAX_ITERS;
    Session::builder()
        .topology(Topology::linear(QUBITS))
        .grape(grape)
        .build()
        .expect("5-qubit session is valid")
}

/// A worker daemon subprocess. The stdout reader stays alive for the
/// daemon's lifetime so its shutdown println never hits a closed pipe.
struct Worker {
    child: Child,
    stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
}

fn daemon_binary() -> PathBuf {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("binary directory");
    let daemon = dir.join(format!("daemon{}", std::env::consts::EXE_SUFFIX));
    if !daemon.exists() {
        eprintln!(
            "worker binary not found at {} — build it first (`cargo build --release -p accqoc-server`)",
            daemon.display()
        );
        std::process::exit(2);
    }
    daemon
}

fn spawn_worker(daemon: &Path, addr: &str, data_dir: &Path) -> Worker {
    let mut child = Command::new(daemon)
        .args([
            "--addr",
            addr,
            "--qubits",
            &QUBITS.to_string(),
            "--max-iters",
            &MAX_ITERS.to_string(),
            "--data-dir",
            data_dir.to_str().expect("utf-8 path"),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn worker daemon");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("worker stdout");
        assert!(n > 0, "worker exited before announcing its address");
        if let Some(rest) = line.strip_prefix("accqoc-server listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after prefix")
                .to_string();
        }
    };
    Worker {
        child,
        stdout,
        addr,
    }
}

/// Serves `programs` in-process on `session`, returning per-program
/// reports plus the expected pulse artifact for each program.
fn baseline_replay(
    session: &Session,
    programs: &[(String, Circuit)],
) -> Vec<(ServeReport, String)> {
    programs
        .iter()
        .map(|(_, circuit)| {
            let report = session.serve_program(circuit).expect("baseline serves");
            let mut cache = PulseCache::new();
            for group in &report.groups {
                cache.insert(
                    group.key.clone(),
                    session.cached(&group.key).expect("just served"),
                );
            }
            let json = cache.to_json();
            (report, json)
        })
        .collect()
}

/// Replays `programs` through the router and compares every response —
/// report and pulse bytes — against the baseline.
fn router_replay(
    client: &mut Client,
    programs: &[(String, Circuit)],
    baseline: &[(ServeReport, String)],
    phase: &'static str,
) -> (Vec<Row>, usize) {
    let rows: Vec<Row> = programs
        .iter()
        .zip(baseline)
        .map(|((name, circuit), (expected_report, expected_pulses))| {
            let (report, pulses) = client.serve_program(circuit, true).expect("router serves");
            let identical = pulses
                .as_ref()
                .map(|p| p.to_json() == *expected_pulses)
                .unwrap_or(false)
                && report == *expected_report;
            Row {
                phase,
                program: name.clone(),
                report,
                identical,
            }
        })
        .collect();
    let mismatches = rows.iter().filter(|r| !r.identical).count();
    (rows, mismatches)
}

fn run(check: bool) {
    let mut programs: Vec<(String, Circuit)> = golden_suite()
        .iter()
        .map(|p| (p.name.clone(), p.circuit.clone()))
        .collect();
    if !check {
        let keep = if fast_mode() { 4 } else { 6 };
        programs.truncate(keep);
    }
    println!(
        "accqoc shard router — {} golden programs through {SHARDS} worker daemons{}\n",
        programs.len(),
        if check { " (check mode)" } else { "" },
    );

    // In-process baseline (the byte-identity reference), served twice:
    // the deployment also replays the stream twice, and pass 2 must be
    // compared against a warmed baseline, not the cold one.
    let baseline_session = golden_session();
    let baseline_cold = baseline_replay(&baseline_session, &programs);
    let baseline_warm = baseline_replay(&baseline_session, &programs);

    // The deployment: worker subprocesses with durable stores, router
    // in-process in front.
    let daemon = daemon_binary();
    let data_base = std::env::temp_dir().join(format!("accqoc-shard-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_base);
    std::fs::create_dir_all(&data_base).expect("create data base");
    let mut workers: Vec<Worker> = (0..SHARDS)
        .map(|i| {
            spawn_worker(
                &daemon,
                "127.0.0.1:0",
                &data_base.join(format!("shard-{i}")),
            )
        })
        .collect();
    let shard_addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let handler = Arc::new(RouterHandler::new(
        Arc::new(golden_session()),
        shard_addrs.clone(),
        RouterConfig {
            attempts: 2,
            backoff: Duration::from_millis(10),
            connect_timeout: Duration::from_millis(500),
            ..RouterConfig::default()
        },
    ));
    for (shard, addr) in shard_addrs.iter().enumerate() {
        println!(
            "shard {shard}: {addr} (owns widths {:?})",
            (1..=QUBITS)
                .filter(|&w| handler.owner_of(w) == shard)
                .collect::<Vec<_>>(),
        );
    }
    println!();
    let router = Server::bind_with_handler(handler, "127.0.0.1:0", ServerConfig::default())
        .expect("bind router");
    let router_addr = router.local_addr();
    let router_thread = std::thread::spawn(move || router.run());
    let mut client = Client::connect(router_addr).expect("connect router");

    // Pass 1: cold replay. Pass 2: must be fully covered.
    let (mut rows, mut mismatches) = router_replay(&mut client, &programs, &baseline_cold, "serve");
    let (rows2, mismatches2) = router_replay(&mut client, &programs, &baseline_warm, "replay");
    let replay_covered = rows2.iter().all(|r| r.report.n_compiled == 0);
    mismatches += mismatches2;
    rows.extend(rows2);

    // Aggregated counters: the summed shard numbers must equal the
    // single-process baseline's.
    let stats = client.stats().expect("router stats");
    let baseline_stats = baseline_session.library().stats();
    let warm_share = stats.library.warm_share();
    let counters_match =
        stats.library == baseline_stats && stats.library_len == baseline_session.cache_len();

    println!(
        "deployment compiles: {} ({} warm / {} scratch) across {SHARDS} shards, baseline: {}",
        stats.library.misses,
        stats.library.warm_compiles,
        stats.library.scratch_compiles,
        baseline_stats.misses,
    );
    println!(
        "warm share {warm_share:.3} (gate {CHECK_WARM_SHARE}), library {} entries",
        stats.library_len
    );

    // Kill/restart pass (check mode): chaos on the width-2 owner.
    let mut chaos_ok = true;
    if check {
        println!("\nkill/restart pass: killing shard 2 (the width-2 owner) ...");
        workers[2].child.kill().expect("kill shard 2");
        workers[2].child.wait().expect("reap shard 2");
        let started = std::time::Instant::now();
        match client.serve_program(&programs[0].1, false) {
            Err(ClientError::Remote(wire)) if wire.code == ErrorCode::ShardUnavailable => {
                println!(
                    "typed shard_unavailable in {:?} (bounded by the retry budget)",
                    started.elapsed()
                );
            }
            other => {
                eprintln!("FAIL: expected shard_unavailable, got {other:?}");
                chaos_ok = false;
            }
        }
        workers[2] = spawn_worker(&daemon, &shard_addrs[2], &data_base.join("shard-2"));
        // A third baseline pass is all hits, exactly like the second.
        let (rows3, mismatches3) =
            router_replay(&mut client, &programs, &baseline_warm, "post-restart");
        let restart_covered = rows3.iter().all(|r| r.report.n_compiled == 0);
        mismatches += mismatches3;
        rows.extend(rows3);
        let mut direct = Client::connect(&*workers[2].addr).expect("connect restarted shard");
        let shard_stats = direct.stats().expect("shard stats");
        if shard_stats.library.scratch_compiles != 0 || shard_stats.library.warm_compiles != 0 {
            eprintln!(
                "FAIL: restarted shard recompiled persisted groups ({} scratch, {} warm)",
                shard_stats.library.scratch_compiles, shard_stats.library.warm_compiles,
            );
            chaos_ok = false;
        }
        if !restart_covered {
            eprintln!("FAIL: post-restart replay was not fully served from the recovered library");
            chaos_ok = false;
        }
        if chaos_ok {
            println!(
                "restarted from its data dir: {} entries recovered, replay all hits, zero recompiles",
                shard_stats.library_len
            );
        }
    }

    let cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    print_table(&HEADER, &cells);
    write_csv("shard_serve.csv", &HEADER, &cells).ok();

    // Drain the whole deployment through the router.
    client.shutdown().expect("shutdown");
    router_thread
        .join()
        .expect("router thread")
        .expect("router ran cleanly");
    for worker in &mut workers {
        let status = worker.child.wait().expect("worker exits");
        assert!(status.success(), "worker exited with {status}");
        let mut rest = String::new();
        use std::io::Read;
        worker.stdout.read_to_string(&mut rest).ok();
    }
    let _ = std::fs::remove_dir_all(&data_base);

    let mut failed = false;
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses were not byte-identical to in-process serving");
        failed = true;
    }
    if check {
        if !counters_match {
            eprintln!("FAIL: summed shard counters diverged from the in-process baseline");
            failed = true;
        }
        if warm_share < CHECK_WARM_SHARE {
            eprintln!(
                "FAIL: warm-start share {warm_share:.3} below pinned threshold {CHECK_WARM_SHARE}"
            );
            failed = true;
        }
        if !replay_covered {
            eprintln!("FAIL: replayed stream was not fully served from the shard libraries");
            failed = true;
        }
        if !chaos_ok {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nOK: {} responses byte-identical across {SHARDS} shards{}",
        rows.len(),
        if check {
            ", counters match, replay covered, kill/restart recovered"
        } else {
            ""
        },
    );
}
