//! Regenerates paper Figure 11: crosstalk mitigation by mapping.
use accqoc_bench::experiments::fig11_rows;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 11 — crosstalk metric before/after crosstalk-aware mapping\n");
    let ctx = ExperimentContext::bare();
    let n = if fast_mode() { 6 } else { 12 };
    let rows = fig11_rows(&ctx, n);
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.program.clone(),
                r.before.to_string(),
                r.after_mapping.to_string(),
                format!("{:.1}%", r.mapping_reduction() * 100.0),
                r.after_scheduling.to_string(),
                format!("{:.1}%", r.scheduled_reduction() * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "program",
            "plain",
            "aware-map",
            "reduction",
            "+scheduler",
            "ext. reduction",
        ],
        &display,
    );
    let avg: f64 =
        rows.iter().map(|r| r.mapping_reduction()).sum::<f64>() / rows.len().max(1) as f64;
    let avg_ext: f64 =
        rows.iter().map(|r| r.scheduled_reduction()).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\naverage: mapping-only {:.1}% (paper: 17.6%); with scheduler extension {:.1}%",
        avg * 100.0,
        avg_ext * 100.0
    );
    write_csv(
        "fig11.csv",
        &[
            "program",
            "plain",
            "aware_map",
            "map_reduction",
            "scheduled",
            "sched_reduction",
        ],
        &display,
    )
    .ok();
}
