//! Regenerates paper Table II: instruction mixes of benchmark programs.
use accqoc_bench::experiments::table2_rows;
use accqoc_bench::{print_table, write_csv};
use accqoc_workloads::full_suite;

fn main() {
    println!("Table II — instruction mixes (counts; last row = suite average mix)\n");
    let suite = full_suite();
    let rows = table2_rows(&suite);
    print_table(&["program", "x", "t", "h", "cx", "rz", "tdg"], &rows);
    write_csv(
        "table2.csv",
        &["program", "x", "t", "h", "cx", "rz", "tdg"],
        &rows,
    )
    .ok();
    println!("\npaper row (cm152a_212): x=5 t=304 h=152 cx=532 rz=0 tdg=228");
    println!("paper avg             : x=0.10% t=22% h=15% cx=45% rz=1.1% tdg=17%");
}
