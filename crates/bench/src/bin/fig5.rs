//! Regenerates paper Figure 5: crosstalk inflation of CX error rates.
use accqoc_bench::experiments::fig5_rows;
use accqoc_bench::{print_table, write_csv};

fn main() {
    println!("Figure 5 — CX error with/without a nearby parallel CNOT (Melbourne)\n");
    let rows = fig5_rows();
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|(pair, base, with, ratio)| {
            vec![
                pair.clone(),
                format!("{:.4}", base),
                format!("{:.4}", with),
                format!("{:.0}%", (ratio - 1.0) * 100.0),
            ]
        })
        .collect();
    print_table(
        &["pair", "isolated err", "w/ crosstalk", "inflation"],
        &display,
    );
    let avg: f64 = rows.iter().map(|r| r.3 - 1.0).sum::<f64>() / rows.len() as f64;
    println!("\naverage inflation: {:.0}% (paper: ~20%)", avg * 100.0);
    write_csv(
        "fig5.csv",
        &["pair", "isolated", "crosstalk", "ratio"],
        &display,
    )
    .ok();
}
