//! Regenerates paper Table I: the six grouping policies.
use accqoc_bench::experiments::table1_rows;
use accqoc_bench::{print_table, write_csv};

fn main() {
    println!("Table I — parameter settings of the 6 grouping policies\n");
    let rows = table1_rows();
    print_table(&["policy", "swap handling", "# qubits", "# layers"], &rows);
    write_csv("table1.csv", &["policy", "swap", "qubits", "layers"], &rows).ok();
}
