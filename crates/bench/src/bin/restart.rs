//! Kill-and-recover experiment for the durable library tier.
//!
//! Replays the golden arrival stream (the fig13-style 2-pass golden
//! suite) three ways:
//!
//! 1. **baseline** — one uninterrupted session, no persistence: the
//!    byte-identity reference.
//! 2. **live** — a durable session (`SessionBuilder::persistence`)
//!    serves the first programs, checkpoints mid-stream, serves one
//!    more program so the write-ahead log holds a suffix past the
//!    snapshot, then "crashes" (the process state is dropped without a
//!    shutdown checkpoint).
//! 3. **recovered** — a fresh durable session on the same directory
//!    recovers snapshot + WAL suffix and serves the remainder of the
//!    stream.
//!
//! Gates (enforced under `--check`, reported always):
//!
//! - the recovered cache snapshot is byte-identical to the pre-crash
//!   snapshot, and `caches_equivalent` confirms semantic equivalence;
//! - the fingerprint index is fully re-built (recovered entries
//!   warm-start, not just exact-hit) — zero scratch recompiles of any
//!   group that was in the recovered library;
//! - every served program (live and recovered phases alike) produces
//!   pulses byte-identical to the uninterrupted baseline, and the final
//!   library artifact equals the baseline's.
//!
//! Writes `results/restart_serve.csv` and seeds `BENCH_persist.json`
//! (recovery wall time, WAL replay throughput) at the working
//! directory root.

use std::time::Instant;

use accqoc::json::JsonValue;
use accqoc::{caches_equivalent, PersistOptions, PulseCache, ServeReport, Session};
use accqoc_bench::{print_table, write_csv};
use accqoc_circuit::Circuit;
use accqoc_hw::Topology;
use accqoc_workloads::golden_suite;

/// Programs served before the mid-stream checkpoint.
const PRE_CHECKPOINT: usize = 2;

/// Programs served by the live session before the simulated crash (the
/// serving past [`PRE_CHECKPOINT`] lives only in the WAL suffix).
const PRE_CRASH: usize = 3;

const HEADER: [&str; 7] = [
    "phase",
    "program",
    "coverage",
    "compiled",
    "warm",
    "iterations",
    "identical",
];

struct Row {
    phase: &'static str,
    program: String,
    report: ServeReport,
    identical: bool,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.phase.to_string(),
            self.program.clone(),
            format!("{:.3}", self.report.coverage.rate()),
            self.report.n_compiled.to_string(),
            self.report.n_warm_started.to_string(),
            self.report.dynamic_iterations.to_string(),
            self.identical.to_string(),
        ]
    }
}

/// Mirrors `library_serve --check`: 5-qubit linear device,
/// 300-iteration GRAPE cap, stock similarity/warm-start config.
fn golden_builder() -> accqoc::SessionBuilder {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    Session::builder()
        .topology(Topology::linear(5))
        .grape(grape)
}

/// The per-program artifact: the served groups' entries, serialized
/// deterministically (the byte-identity unit of comparison).
fn program_artifact(session: &Session, report: &ServeReport) -> String {
    let mut cache = PulseCache::new();
    for group in &report.groups {
        cache.insert(
            group.key.clone(),
            session.cached(&group.key).expect("just served"),
        );
    }
    cache.to_json()
}

/// Serves one program and scores it against the baseline reference.
fn serve_scored(
    session: &Session,
    phase: &'static str,
    name: &str,
    circuit: &Circuit,
    expected: Option<&(ServeReport, String)>,
) -> (Row, String) {
    let report = session.serve_program(circuit).expect("stream serves");
    let artifact = program_artifact(session, &report);
    let identical = expected.is_none_or(|(expected_report, expected_artifact)| {
        artifact == *expected_artifact
            && report.overall_latency_ns == expected_report.overall_latency_ns
    });
    (
        Row {
            phase,
            program: name.to_string(),
            report,
            identical,
        },
        artifact,
    )
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("accqoc restart — durable-tier kill-and-recover on the golden stream\n");

    // The 2-pass golden arrival stream (same shape as library_serve).
    let suite = golden_suite();
    let stream: Vec<(String, Circuit)> = suite
        .iter()
        .chain(suite.iter())
        .map(|p| (p.name.clone(), p.circuit.clone()))
        .collect();

    let data_dir = std::env::temp_dir().join(format!("accqoc-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // Phase 1: uninterrupted baseline (the reference bytes).
    let baseline_session = golden_builder().build().expect("baseline session");
    let mut rows: Vec<Row> = Vec::with_capacity(stream.len() * 2);
    let mut baseline: Vec<(ServeReport, String)> = Vec::with_capacity(stream.len());
    for (name, circuit) in &stream {
        let (row, artifact) = serve_scored(&baseline_session, "baseline", name, circuit, None);
        baseline.push((row.report.clone(), artifact));
        rows.push(row);
    }
    let baseline_final = baseline_session.cache_snapshot().to_json();

    // Phase 2: durable session, checkpoint mid-stream, crash after one
    // more program (auto-compaction off so the WAL suffix survives).
    let options = PersistOptions::new(&data_dir).snapshot_every(0);
    let live = golden_builder()
        .persistence_with(options.clone())
        .build()
        .expect("live durable session");
    assert_eq!(
        live.recovery_report().map(|r| r.entries),
        Some(0),
        "fresh data dir must cold-start empty"
    );
    for (i, (name, circuit)) in stream.iter().take(PRE_CRASH).enumerate() {
        let (row, _) = serve_scored(&live, "live", name, circuit, Some(&baseline[i]));
        rows.push(row);
        if i + 1 == PRE_CHECKPOINT {
            live.checkpoint().expect("mid-stream checkpoint");
        }
    }
    let pre_crash_snapshot = live.cache_snapshot();
    let pre_crash_indexed = live.library().indexed_len();
    let pre_crash_keys: Vec<_> = pre_crash_snapshot.iter().map(|(k, _)| k.clone()).collect();
    drop(live); // the "crash": no shutdown checkpoint, WAL suffix on disk

    // Phase 3: recover and serve the remainder.
    let recovery_start = Instant::now();
    let recovered = golden_builder()
        .persistence_with(options)
        .build()
        .expect("recovery");
    let recovery_ms = recovery_start.elapsed().as_secs_f64() * 1e3;
    let report = recovered
        .recovery_report()
        .cloned()
        .expect("durable session has a report");

    let recovered_snapshot = recovered.cache_snapshot();
    let snapshot_identical = recovered_snapshot.to_json() == pre_crash_snapshot.to_json();
    let equivalence = caches_equivalent(
        recovered.models(),
        &pre_crash_snapshot,
        &recovered_snapshot,
        1e-9,
        1e-9,
    )
    .expect("equivalence oracle runs");
    let index_restored = recovered.library().indexed_len() == pre_crash_indexed;

    let mut scratch_recompiles_of_persisted = 0usize;
    for (i, (name, circuit)) in stream.iter().enumerate().skip(PRE_CRASH) {
        let (row, _) = serve_scored(&recovered, "recovered", name, circuit, Some(&baseline[i]));
        for group in &row.report.groups {
            if !group.hit && group.warm_from.is_none() && pre_crash_keys.contains(&group.key) {
                scratch_recompiles_of_persisted += 1;
            }
        }
        rows.push(row);
    }
    let final_identical = recovered.cache_snapshot().to_json() == baseline_final;
    let mismatches = rows.iter().filter(|r| !r.identical).count();

    let cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    print_table(&HEADER, &cells);
    write_csv("restart_serve.csv", &HEADER, &cells).ok();

    let wal_replay_rate = if recovery_ms > 0.0 {
        report.wal_records as f64 / (recovery_ms / 1e3)
    } else {
        0.0
    };
    let bench = JsonValue::Object(vec![
        ("recovery_ms".into(), JsonValue::Number(recovery_ms)),
        (
            "snapshot_entries".into(),
            JsonValue::Number(report.snapshot_entries as f64),
        ),
        (
            "wal_records".into(),
            JsonValue::Number(report.wal_records as f64),
        ),
        (
            "wal_replay_records_per_s".into(),
            JsonValue::Number(wal_replay_rate),
        ),
        (
            "recovered_entries".into(),
            JsonValue::Number(report.entries as f64),
        ),
        (
            "recovered_indexed".into(),
            JsonValue::Number(report.indexed as f64),
        ),
        (
            "scratch_recompiles_of_persisted".into(),
            JsonValue::Number(scratch_recompiles_of_persisted as f64),
        ),
        (
            "byte_identical_rows".into(),
            JsonValue::Number((rows.len() - mismatches) as f64),
        ),
        ("rows".into(), JsonValue::Number(rows.len() as f64)),
    ]);
    std::fs::write("BENCH_persist.json", bench.to_pretty() + "\n").ok();

    println!();
    println!(
        "recovery: {} entries ({} indexed) in {recovery_ms:.1} ms = snapshot {} + {} WAL records ({wal_replay_rate:.0} records/s)",
        report.entries, report.indexed, report.snapshot_entries, report.wal_records,
    );
    println!(
        "snapshot byte-identical: {snapshot_identical}, equivalent: {}, index restored: {index_restored}",
        equivalence.equivalent(),
    );

    let mut failed = false;
    if !snapshot_identical {
        eprintln!("FAIL: recovered snapshot is not byte-identical to the pre-crash snapshot");
        failed = true;
    }
    if !equivalence.equivalent() {
        eprintln!("FAIL: recovered cache not semantically equivalent to the pre-crash cache");
        failed = true;
    }
    if !index_restored {
        eprintln!(
            "FAIL: fingerprint index not restored ({} indexed, pre-crash {pre_crash_indexed})",
            recovered.library().indexed_len(),
        );
        failed = true;
    }
    if scratch_recompiles_of_persisted > 0 {
        eprintln!(
            "FAIL: {scratch_recompiles_of_persisted} persisted groups were recompiled from scratch after recovery"
        );
        failed = true;
    }
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} served programs diverged from the uninterrupted baseline");
        failed = true;
    }
    if !final_identical {
        eprintln!("FAIL: final recovered library artifact diverged from the baseline artifact");
        failed = true;
    }

    let _ = std::fs::remove_dir_all(&data_dir);
    if failed && check {
        std::process::exit(1);
    }
    if !failed {
        println!(
            "\nOK: recovered byte-identical ({} entries, {} indexed), remainder served identically, 0 scratch recompiles of persisted groups",
            report.entries, report.indexed,
        );
    }
}
