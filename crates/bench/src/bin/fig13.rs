//! Regenerates paper Figure 13: per-program iteration reduction for each
//! similarity function.
use accqoc_bench::experiments::fig13_rows;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 13 — iteration reduction per program × similarity function\n");
    let ctx = ExperimentContext::bare();
    let (n, cap) = if fast_mode() { (3, 10) } else { (7, 20) };
    let rows = fig13_rows(&ctx, n, cap);
    let mut display = Vec::new();
    for (program, reductions) in &rows {
        let mut row = vec![program.clone()];
        row.extend(
            reductions
                .iter()
                .map(|(_, r)| format!("{:+.1}%", r * 100.0)),
        );
        display.push(row);
    }
    print_table(
        &["program", "l1", "l2", "fidelity1", "fidelity2", "inverse"],
        &display,
    );
    // Max reduction across programs for the best function.
    let best = rows
        .iter()
        .flat_map(|(_, rs)| {
            rs.iter()
                .filter(|(l, _)| *l == "fidelity1")
                .map(|(_, r)| *r)
        })
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nmax fidelity1 reduction: {:.1}% (paper max: 28%)",
        best * 100.0
    );
    write_csv(
        "fig13.csv",
        &["program", "l1", "l2", "fidelity1", "fidelity2", "inverse"],
        &display,
    )
    .ok();
}
