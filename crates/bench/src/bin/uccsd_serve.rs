//! Parameterized-workload serving experiment: replay the UCCSD θ-grid
//! family as zipf-weighted arrival traffic and measure how much of the
//! GRAPE cost the pulse library amortizes across the sweep.
//!
//! This is the regime the paper's similarity machinery was built for:
//! adjacent grid points are *nearly identical* unitaries, so nearly
//! every compile should be rescued by a fingerprint warm start — far
//! above the fixed golden suite's intrinsic similarity budget.
//!
//! Modes:
//!
//! - default: sweep θ-grid densities (coarse → fine, plus a
//!   capacity-bounded run that forces evictions) and record warm share,
//!   exact-hit share, mean warm-vs-scratch iterations, and eviction
//!   counts per density. Honors `ACCQOC_FAST=1`.
//! - `--check`: the default-density stream served three ways — in
//!   process, through the daemon with 1 client, and through the daemon
//!   with 2 concurrent clients (in-flight coalescing makes the replay
//!   deterministic). Exits non-zero unless the warm share clears the
//!   pinned 0.80 gate, warm compiles are cheaper than scratch on mean
//!   GRAPE iterations, and every daemon serving is byte-identical to
//!   the in-process baseline across both client counts. The CI
//!   `uccsd-smoke` gate.
//!
//! Both modes write per-serving rows to `results/uccsd_serve.csv` and
//! the density summary to `BENCH_uccsd.json` at the working-directory
//! root.

use std::sync::Arc;

use accqoc::json::JsonValue;
use accqoc::{LibraryStats, PulseCache, ServeReport, Session, SessionBuilder};
use accqoc_bench::{fast_mode, print_table, write_csv};
use accqoc_circuit::Circuit;
use accqoc_hw::Topology;
use accqoc_server::{Client, Server, ServerConfig};
use accqoc_workloads::{theta_grid, uccsd_family, zipf_arrivals, DEFAULT_GRID_POINTS};

/// Pinned CI threshold: warm-start share of compiles on the default
/// θ-grid stream. The family is engineered so every grid point past the
/// first warm-starts from its neighbor, which measures well above this;
/// the golden suite's fixed circuits manage only 0.550. A broken
/// fingerprint index, warm-start gate, or θ-grid spacing drops it hard.
const CHECK_WARM_SHARE: f64 = 0.80;

/// Register width of the benchmark family (fits the 5-qubit golden
/// device and the exact verification oracle).
const UCCSD_QUBITS: usize = 4;

/// Ansatz depth: slices per program.
const UCCSD_SLICES: usize = 3;

/// Zipf exponent of the arrival stream — slightly hotter than the
/// rank-weighted default, so re-arrivals (exact hits) show up alongside
/// the warm misses.
const ZIPF_EXPONENT: f64 = 1.1;

/// Arrival-stream seed.
const STREAM_SEED: u64 = 0x0CC5;

/// Daemon replays checked under `--check`: the same stream from 1
/// client, then from 2 concurrent clients.
const CLIENT_COUNTS: [usize; 2] = [1, 2];

/// Library bound of the "capped" density row (default mode): small
/// enough that the θ-sweep's working set rotates and evictions are
/// nonzero.
const CAPPED_CAPACITY: usize = 4;

const HEADER: [&str; 8] = [
    "phase",
    "client",
    "arrival",
    "program",
    "compiled",
    "warm",
    "iterations",
    "identical",
];

struct Row {
    phase: String,
    client: usize,
    arrival: usize,
    program: String,
    report: ServeReport,
    /// `None` when there is no byte-identity reference (default mode).
    identical: Option<bool>,
}

impl Row {
    fn cells(&self) -> Vec<String> {
        vec![
            self.phase.clone(),
            self.client.to_string(),
            self.arrival.to_string(),
            self.program.clone(),
            self.report.n_compiled.to_string(),
            self.report.n_warm_started.to_string(),
            self.report.dynamic_iterations.to_string(),
            self.identical.map_or_else(|| "-".into(), |b| b.to_string()),
        ]
    }
}

/// One density's cumulative counters for the summary table / JSON.
struct DensityStats {
    density: String,
    grid_points: usize,
    servings: usize,
    stats: LibraryStats,
}

impl DensityStats {
    fn json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("density".into(), JsonValue::String(self.density.clone())),
            (
                "grid_points".into(),
                JsonValue::Number(self.grid_points as f64),
            ),
            ("servings".into(), JsonValue::Number(self.servings as f64)),
            (
                "compiles".into(),
                JsonValue::Number(self.stats.misses as f64),
            ),
            (
                "warm_share".into(),
                JsonValue::Number(self.stats.warm_share()),
            ),
            (
                "exact_hit_share".into(),
                JsonValue::Number(self.stats.hit_rate()),
            ),
            (
                "mean_warm_iterations".into(),
                JsonValue::Number(self.stats.mean_warm_iterations()),
            ),
            (
                "mean_scratch_iterations".into(),
                JsonValue::Number(self.stats.mean_scratch_iterations()),
            ),
            (
                "evictions".into(),
                JsonValue::Number(self.stats.evictions as f64),
            ),
        ])
    }

    fn summary_cells(&self) -> Vec<String> {
        vec![
            self.density.clone(),
            self.grid_points.to_string(),
            self.servings.to_string(),
            self.stats.misses.to_string(),
            format!("{:.3}", self.stats.warm_share()),
            format!("{:.3}", self.stats.hit_rate()),
            format!("{:.1}", self.stats.mean_warm_iterations()),
            format!("{:.1}", self.stats.mean_scratch_iterations()),
            self.stats.evictions.to_string(),
        ]
    }
}

const SUMMARY_HEADER: [&str; 9] = [
    "density",
    "grid_points",
    "servings",
    "compiles",
    "warm_share",
    "exact_hit_share",
    "warm_iters",
    "scratch_iters",
    "evictions",
];

/// Mirrors the other serving checks: 5-qubit linear device,
/// 300-iteration GRAPE cap, stock similarity/warm-start config.
fn golden_builder() -> SessionBuilder {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 300;
    Session::builder()
        .topology(Topology::linear(5))
        .grape(grape)
}

/// The zipf arrival stream over a `points`-point θ-grid family: two
/// arrivals per grid point on average, so re-arrivals exercise exact
/// hits while fresh grid points exercise warm misses.
fn stream_for(points: usize) -> Vec<(String, Circuit)> {
    let family = uccsd_family(UCCSD_QUBITS, UCCSD_SLICES, &theta_grid(points));
    zipf_arrivals(family.len(), family.len() * 2, ZIPF_EXPONENT, STREAM_SEED)
        .into_iter()
        .map(|i| (family[i].name.clone(), family[i].circuit.clone()))
        .collect()
}

/// The per-serving artifact: the served groups' entries, serialized
/// deterministically (the byte-identity unit of comparison). A
/// capacity-bounded library can evict a group served earlier in the
/// same program before we read it back (the capped sweep phase); the
/// artifact then holds the surviving entries. The byte-identity check
/// phases run unbounded, where every served group is still cached.
fn serving_artifact(session: &Session, report: &ServeReport) -> String {
    let mut cache = PulseCache::new();
    for group in &report.groups {
        if let Some(entry) = session.cached(&group.key) {
            cache.insert(group.key.clone(), entry);
        }
    }
    cache.to_json()
}

/// Serves a stream in-process, returning rows plus the byte-identity
/// reference (per-serving artifact + report) for daemon comparison.
fn serve_in_process(
    session: &Session,
    stream: &[(String, Circuit)],
    phase: &str,
) -> (Vec<Row>, Vec<(ServeReport, String)>) {
    let mut rows = Vec::with_capacity(stream.len());
    let mut reference = Vec::with_capacity(stream.len());
    for (arrival, (name, circuit)) in stream.iter().enumerate() {
        let report = session.serve_program(circuit).expect("stream serves");
        let artifact = serving_artifact(session, &report);
        rows.push(Row {
            phase: phase.to_string(),
            client: 0,
            arrival,
            program: name.clone(),
            report: report.clone(),
            identical: None,
        });
        reference.push((report, artifact));
    }
    (rows, reference)
}

/// Replays the stream through a fresh daemon from `n_clients` concurrent
/// connections (each sending the full stream in order) and scores every
/// response byte-for-byte against the in-process reference. Returns the
/// rows, the mismatch count, and the daemon's final state for
/// library-level comparison.
fn daemon_replay(
    stream: &[(String, Circuit)],
    reference: &[(ServeReport, String)],
    n_clients: usize,
) -> (Vec<Row>, usize, Arc<Session>, LibraryStats) {
    let session = Arc::new(golden_builder().build().expect("daemon session"));
    let server = Server::bind(Arc::clone(&session), "127.0.0.1:0", ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());
    let phase = format!("daemon{n_clients}");

    let results: Vec<Vec<Row>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|client_idx| {
                let phase = &phase;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    stream
                        .iter()
                        .zip(reference)
                        .enumerate()
                        .map(
                            |(arrival, ((name, circuit), (expected, expected_artifact)))| {
                                let (report, pulses) =
                                    client.serve_program(circuit, true).expect("daemon serves");
                                let identical = pulses
                                    .as_ref()
                                    .map(|p| p.to_json() == *expected_artifact)
                                    .unwrap_or(false)
                                    && report.overall_latency_ns == expected.overall_latency_ns;
                                Row {
                                    phase: phase.clone(),
                                    client: client_idx,
                                    arrival,
                                    program: name.clone(),
                                    report,
                                    identical: Some(identical),
                                }
                            },
                        )
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    let mut shutdown = Client::connect(addr).expect("shutdown client");
    let stats = shutdown.stats().expect("stats");
    shutdown.shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server ran cleanly");

    let rows: Vec<Row> = results.into_iter().flatten().collect();
    let mismatches = rows.iter().filter(|r| r.identical == Some(false)).count();
    (rows, mismatches, session, stats.library)
}

fn write_bench_json(densities: &[DensityStats], daemon: Option<JsonValue>) {
    let mut fields = vec![
        (
            "workload".into(),
            JsonValue::String(format!(
                "uccsd_{UCCSD_QUBITS}_{UCCSD_SLICES} zipf(s={ZIPF_EXPONENT})"
            )),
        ),
        (
            "densities".into(),
            JsonValue::Array(densities.iter().map(DensityStats::json).collect()),
        ),
    ];
    if let Some(daemon) = daemon {
        fields.push(("daemon".into(), daemon));
    }
    let text = JsonValue::Object(fields).to_pretty() + "\n";
    std::fs::write("BENCH_uccsd.json", text).ok();
}

fn write_table(rows: &[Row]) {
    let cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    print_table(&HEADER, &cells);
    write_csv("uccsd_serve.csv", &HEADER, &cells).ok();
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    if check {
        run_check();
    } else {
        run_sweep();
    }
}

fn run_sweep() {
    println!("UCCSD θ-grid family — serving sweep over grid densities\n");
    let densities: &[(&str, usize)] = if fast_mode() {
        &[("coarse", 3), ("default", 5)]
    } else {
        &[
            ("coarse", 5),
            ("default", DEFAULT_GRID_POINTS),
            ("fine", 13),
        ]
    };
    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for &(density, points) in densities {
        let stream = stream_for(points);
        let session = golden_builder().build().expect("sweep session");
        let (density_rows, _) = serve_in_process(&session, &stream, density);
        rows.extend(density_rows);
        summaries.push(DensityStats {
            density: density.to_string(),
            grid_points: points,
            servings: stream.len(),
            stats: session.library().stats(),
        });
    }
    // A capacity-bounded run at the default density: the θ-sweep working
    // set no longer fits, so the LRU rotates and evictions are nonzero.
    let capped_points = densities.last().map_or(DEFAULT_GRID_POINTS, |d| d.1);
    let stream = stream_for(capped_points);
    let session = golden_builder()
        .library_capacity(CAPPED_CAPACITY)
        .build()
        .expect("capped session");
    let (capped_rows, _) = serve_in_process(&session, &stream, "capped");
    rows.extend(capped_rows);
    summaries.push(DensityStats {
        density: format!("capped({CAPPED_CAPACITY})"),
        grid_points: capped_points,
        servings: stream.len(),
        stats: session.library().stats(),
    });

    write_table(&rows);
    println!();
    let cells: Vec<Vec<String>> = summaries.iter().map(DensityStats::summary_cells).collect();
    print_table(&SUMMARY_HEADER, &cells);
    write_bench_json(&summaries, None);
    println!("\nwrote results/uccsd_serve.csv and BENCH_uccsd.json");
}

fn run_check() {
    println!(
        "UCCSD θ-grid family — serving check ({}-point grid, zipf s={ZIPF_EXPONENT})\n",
        DEFAULT_GRID_POINTS
    );
    let stream = stream_for(DEFAULT_GRID_POINTS);

    // In-process baseline: the byte-identity reference and the gated
    // warm-share measurement.
    let baseline_session = golden_builder().build().expect("baseline session");
    let (mut rows, reference) = serve_in_process(&baseline_session, &stream, "baseline");
    let stats = baseline_session.library().stats();

    // Daemon replays: same stream, 1 client then 2 concurrent clients.
    // Coalescing compiles each group exactly once against the sequential
    // prefix state, so both must be byte-identical to the baseline.
    let mut total_mismatches = 0usize;
    let mut daemon_fields = Vec::new();
    let mut daemon_snapshots = Vec::new();
    let mut coalescing_ok = true;
    for &n_clients in &CLIENT_COUNTS {
        let (daemon_rows, mismatches, session, daemon_stats) =
            daemon_replay(&stream, &reference, n_clients);
        println!(
            "daemon x{n_clients}: {} responses, {} mismatched, {} compiles (baseline {})",
            daemon_rows.len(),
            mismatches,
            daemon_stats.misses,
            stats.misses,
        );
        if daemon_stats.misses != stats.misses {
            coalescing_ok = false;
        }
        total_mismatches += mismatches;
        daemon_fields.push((
            format!("clients_{n_clients}_byte_identical"),
            JsonValue::Bool(mismatches == 0),
        ));
        daemon_snapshots.push(session.cache_snapshot().to_json());
        rows.extend(daemon_rows);
    }
    write_table(&rows);

    let warm_share = stats.warm_share();
    let warm_cheaper = stats.mean_warm_iterations() < stats.mean_scratch_iterations();
    let baseline_snapshot = baseline_session.cache_snapshot().to_json();
    let snapshots_identical = daemon_snapshots.iter().all(|s| *s == baseline_snapshot);

    println!();
    println!(
        "compiles: {} ({} warm / {} scratch), exact hits: {} ({} servings)",
        stats.misses,
        stats.warm_compiles,
        stats.scratch_compiles,
        stats.hits,
        stream.len(),
    );
    println!(
        "warm share {warm_share:.3} (gate {CHECK_WARM_SHARE}), mean iterations warm {:.1} vs scratch {:.1}",
        stats.mean_warm_iterations(),
        stats.mean_scratch_iterations(),
    );

    write_bench_json(
        &[DensityStats {
            density: "default".into(),
            grid_points: DEFAULT_GRID_POINTS,
            servings: stream.len(),
            stats,
        }],
        Some(JsonValue::Object(daemon_fields)),
    );

    let mut failed = false;
    if stats.misses == 0 {
        eprintln!("FAIL: the stream compiled nothing");
        failed = true;
    }
    if warm_share < CHECK_WARM_SHARE {
        eprintln!(
            "FAIL: warm-start share {warm_share:.3} below pinned threshold {CHECK_WARM_SHARE}"
        );
        failed = true;
    }
    if !warm_cheaper {
        eprintln!(
            "FAIL: warm compiles not cheaper than scratch ({:.1} vs {:.1} mean iterations)",
            stats.mean_warm_iterations(),
            stats.mean_scratch_iterations()
        );
        failed = true;
    }
    if total_mismatches > 0 {
        eprintln!(
            "FAIL: {total_mismatches} daemon responses were not byte-identical to in-process serving"
        );
        failed = true;
    }
    if !snapshots_identical {
        eprintln!("FAIL: a daemon library snapshot diverged from the in-process artifact");
        failed = true;
    }
    if !coalescing_ok {
        eprintln!("FAIL: a daemon replay compiled a different group count than the baseline");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nOK: warm share {warm_share:.3} >= {CHECK_WARM_SHARE}, warm cheaper than scratch, \
         daemon byte-identical across client counts {CLIENT_COUNTS:?}"
    );
}
