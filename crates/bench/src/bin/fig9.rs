//! Regenerates paper Figure 9: SG → MST → weight shift → balanced
//! partition, worked on a real 6-group category.
use accqoc_bench::{print_table, ExperimentContext};

fn main() {
    println!("Figure 9 — similarity graph to partitioned MST walk-through\n");
    let ctx = ExperimentContext::bare();
    let (steps, weights, parts) = accqoc_bench::experiments::fig9_example(&ctx);

    println!("(b) MST in Prim selection order (parent ∅ = identity vertex):");
    let rows: Vec<Vec<String>> = steps
        .iter()
        .map(|(v, p, w)| {
            vec![
                format!("g{v}"),
                p.map(|p| format!("g{p}")).unwrap_or_else(|| "∅".into()),
                format!("{w:.4}"),
            ]
        })
        .collect();
    print_table(&["vertex", "parent", "edge weight"], &rows);

    println!("\n(c) edge weights shifted onto nodes:");
    let rows: Vec<Vec<String>> = weights
        .iter()
        .enumerate()
        .map(|(v, w)| vec![format!("g{v}"), format!("{w:.4}")])
        .collect();
    print_table(&["vertex", "node weight"], &rows);

    println!("\n(d) balanced 2-way partition:");
    let rows: Vec<Vec<String>> = parts
        .iter()
        .enumerate()
        .map(|(v, p)| vec![format!("g{v}"), format!("worker {p}")])
        .collect();
    print_table(&["vertex", "assigned to"], &rows);
}
