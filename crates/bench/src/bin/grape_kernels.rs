//! GRAPE kernel microbenchmarks: the raw-speed tier under the serving
//! experiments.
//!
//! Times the register-blocked complex kernels of `accqoc-linalg` against
//! the verbatim pre-blocking loops (kept as `kernels::reference`), plus
//! the two compound operations the serving stack spends its time in —
//! `expm_i_hermitian` and a full spectral `cost_and_gradient_into`
//! pass — across dimensions 2/4/8/16. Both sides of each pair run under
//! the same median-of-K sampler, so the reported speedups compare like
//! with like.
//!
//! Modes:
//!
//! - default: measure everything, print the table, write per-kernel rows
//!   to `results/grape_kernels.csv` and the summary to
//!   `BENCH_grape.json`. Honors `ACCQOC_FAST=1` (fewer samples).
//! - `--check`: first prove bit-identity — every blocked kernel against
//!   its reference over all dimensions 1–17 (covering every
//!   non-multiple-of-tile remainder), exact on all bytes — then gate on
//!   raw speed: the blocked dim-8 matmul must beat the naive loop by at
//!   least [`CHECK_MIN_SPEEDUP`]× on median time. Exits non-zero on any
//!   failure. The CI `grape-bench` gate.

use accqoc::json::JsonValue;
use accqoc_bench::{fast_mode, print_table, write_csv};
use accqoc_grape::{cost_and_gradient_into, GradientMethod, Workspace};
use accqoc_hw::ControlModel;
use accqoc_linalg::{expm_i_hermitian, kernels, Mat, C64};
use criterion::{black_box, Sampler};

/// Pinned CI threshold: blocked dim-8 matmul speedup over the naive
/// reference loop, median-of-K under one shared harness. The 2×4 tiling
/// measures well above this; a regression to memory accumulators or a
/// lost slice hoist drops it hard.
const CHECK_MIN_SPEEDUP: f64 = 1.2;

/// Matrix dimensions swept by the measurement mode: 1–4 qubits.
const DIMS: [usize; 4] = [2, 4, 8, 16];

/// Dimensions the `--check` bit-identity sweep covers: every remainder
/// class of the 2×4 tile, including the degenerate 1×1.
const CHECK_DIMS: std::ops::RangeInclusive<usize> = 1..=17;

/// GRAPE slices of the cost-and-gradient pass.
const COST_STEPS: usize = 8;

const HEADER: [&str; 5] = ["kernel", "dim", "blocked_ns", "naive_ns", "speedup"];

/// One (kernel, dim) measurement. `naive_ns` is `None` for compound
/// operations that have no preserved naive twin (`expm_i`,
/// `cost_and_gradient`).
struct Row {
    kernel: &'static str,
    dim: usize,
    blocked_ns: f64,
    naive_ns: Option<f64>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.naive_ns.map(|n| n / self.blocked_ns)
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.kernel.to_string(),
            self.dim.to_string(),
            format!("{:.1}", self.blocked_ns),
            self.naive_ns
                .map_or_else(|| "-".into(), |n| format!("{n:.1}")),
            self.speedup()
                .map_or_else(|| "-".into(), |s| format!("{s:.2}")),
        ]
    }

    fn json(&self) -> JsonValue {
        let mut fields = vec![
            ("kernel".into(), JsonValue::String(self.kernel.into())),
            ("dim".into(), JsonValue::Number(self.dim as f64)),
            ("blocked_ns".into(), JsonValue::Number(self.blocked_ns)),
        ];
        if let Some(naive) = self.naive_ns {
            fields.push(("naive_ns".into(), JsonValue::Number(naive)));
        }
        if let Some(s) = self.speedup() {
            fields.push(("speedup".into(), JsonValue::Number(s)));
        }
        JsonValue::Object(fields)
    }
}

/// Deterministic non-trivial complex test data (the same LCG the kernel
/// unit tests use): no zeros, no symmetry for the kernels to exploit.
fn fill(len: usize, salt: u64) -> Vec<C64> {
    let mut state = salt.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (0..len).map(|_| C64::new(next(), next())).collect()
}

/// A deterministic dense Hermitian matrix for the eigensolver-backed
/// benchmarks.
fn hermitian(n: usize, salt: u64) -> Mat {
    let data = fill(n * n, salt);
    let mut h = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let a = data[i * n + j];
            let b = data[j * n + i].conj();
            h[(i, j)] = C64::new(0.5 * (a.re + b.re), 0.5 * (a.im + b.im));
        }
    }
    h
}

fn sampler() -> Sampler {
    if fast_mode() {
        Sampler::calibrated(5)
    } else {
        Sampler::calibrated(15)
    }
}

/// Times one blocked/naive kernel pair at dimension `n` under the shared
/// sampler; `run` receives (a, b, scratch, out) slices of length `n²`.
fn time_pair(
    n: usize,
    blocked: impl Fn(&[C64], &[C64], &mut [C64], &mut [C64]),
    naive: impl Fn(&[C64], &[C64], &mut [C64], &mut [C64]),
) -> (f64, f64) {
    let a = fill(n * n, 17 + n as u64);
    let b = fill(n * n, 29 + n as u64);
    let mut scratch = vec![accqoc_linalg::ZERO; n * n];
    let mut out = vec![accqoc_linalg::ZERO; n * n];
    let s = sampler();
    let blocked_ns = s
        .measure(|| {
            blocked(&a, &b, &mut scratch, &mut out);
            black_box(out[0])
        })
        .median_ns;
    let naive_ns = s
        .measure(|| {
            naive(&a, &b, &mut scratch, &mut out);
            black_box(out[0])
        })
        .median_ns;
    (blocked_ns, naive_ns)
}

fn measure_dim(n: usize) -> Vec<Row> {
    let mut rows = Vec::new();

    let (blocked, naive) = time_pair(
        n,
        |a, b, _, out| kernels::matmul(a, b, out, n, n, n),
        |a, b, _, out| kernels::reference::matmul(a, b, out, n, n, n),
    );
    rows.push(Row {
        kernel: "matmul",
        dim: n,
        blocked_ns: blocked,
        naive_ns: Some(naive),
    });

    let (blocked, naive) = time_pair(
        n,
        |a, b, _, out| kernels::dagger_matmul(a, b, out, n, n, n),
        |a, b, _, out| kernels::reference::dagger_matmul(a, b, out, n, n, n),
    );
    rows.push(Row {
        kernel: "dagger_matmul",
        dim: n,
        blocked_ns: blocked,
        naive_ns: Some(naive),
    });

    let (blocked, naive) = time_pair(
        n,
        |a, b, _, out| kernels::matmul_dagger(a, b, out, n, n, n),
        |a, b, _, out| kernels::reference::matmul_dagger(a, b, out, n, n, n),
    );
    rows.push(Row {
        kernel: "matmul_dagger",
        dim: n,
        blocked_ns: blocked,
        naive_ns: Some(naive),
    });

    let (blocked, naive) = time_pair(
        n,
        |v, m, scratch, out| kernels::rotate(v, m, scratch, out, n),
        |v, m, scratch, out| kernels::reference::rotate(v, m, scratch, out, n),
    );
    rows.push(Row {
        kernel: "rotate",
        dim: n,
        blocked_ns: blocked,
        naive_ns: Some(naive),
    });

    let h = hermitian(n, 43 + n as u64);
    let expm_ns = sampler()
        .measure(|| black_box(expm_i_hermitian(&h, 0.25).expect("hermitian input")))
        .median_ns;
    rows.push(Row {
        kernel: "expm_i",
        dim: n,
        blocked_ns: expm_ns,
        naive_ns: None,
    });

    rows
}

/// A full spectral cost-and-gradient pass on the spin chain whose
/// Hilbert dimension is `2^qubits`, on a warmed workspace (steady-state
/// serving conditions: zero heap allocations per call).
fn measure_cost_grad(qubits: usize) -> Row {
    let model = ControlModel::spin_chain(qubits);
    let dim = model.dim();
    let target = Mat::identity(dim);
    let n_ctrl = model.n_controls();
    let params: Vec<f64> = (0..n_ctrl * COST_STEPS)
        .map(|i| 0.05 * ((i % 7) as f64 - 3.0))
        .collect();
    let mut ws = Workspace::new();
    let mut grad = Vec::new();
    // Warm the workspace so the timed region is the steady state.
    cost_and_gradient_into(
        &model,
        &target,
        &params,
        COST_STEPS,
        GradientMethod::Spectral,
        &mut ws,
        &mut grad,
    );
    let ns = sampler()
        .measure(|| {
            black_box(cost_and_gradient_into(
                &model,
                &target,
                &params,
                COST_STEPS,
                GradientMethod::Spectral,
                &mut ws,
                &mut grad,
            ))
        })
        .median_ns;
    Row {
        kernel: "cost_and_gradient",
        dim,
        blocked_ns: ns,
        naive_ns: None,
    }
}

fn measure_all() -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &DIMS {
        rows.extend(measure_dim(n));
    }
    for qubits in 1..=DIMS.len() {
        rows.push(measure_cost_grad(qubits));
    }
    rows
}

fn write_outputs(rows: &[Row]) {
    let cells: Vec<Vec<String>> = rows.iter().map(Row::cells).collect();
    print_table(&HEADER, &cells);
    write_csv("grape_kernels.csv", &HEADER, &cells).ok();
    let json = JsonValue::Object(vec![
        (
            "workload".into(),
            JsonValue::String("grape kernel microbenchmarks".into()),
        ),
        (
            "kernels".into(),
            JsonValue::Array(rows.iter().map(Row::json).collect()),
        ),
    ]);
    std::fs::write("BENCH_grape.json", json.to_pretty() + "\n").ok();
}

/// Exact byte comparison of two complex buffers.
fn identical(a: &[C64], b: &[C64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
}

/// Bit-identity sweep: every blocked kernel against its reference, all
/// dims 1–17, rectangular shapes included for the three matmul forms.
fn check_bit_identity() -> usize {
    let mut failures = 0usize;
    for n in CHECK_DIMS {
        // Rectangular shapes exercise remainder handling in every
        // direction: (m, k, n) with distinct values.
        let (m, k) = (n.max(2) - 1, n + 2);
        for &(rm, rk, rn) in &[(n, n, n), (m, k, n)] {
            let a = fill(rm * rk, 3 + rm as u64);
            let b = fill(rk * rn, 5 + rn as u64);
            let mut got = vec![accqoc_linalg::ZERO; rm * rn];
            let mut want = vec![accqoc_linalg::ZERO; rm * rn];
            kernels::matmul(&a, &b, &mut got, rm, rk, rn);
            kernels::reference::matmul(&a, &b, &mut want, rm, rk, rn);
            if !identical(&got, &want) {
                eprintln!("FAIL: matmul {rm}x{rk}x{rn} not bit-identical to reference");
                failures += 1;
            }

            let a = fill(rk * rm, 7 + rm as u64);
            let b = fill(rk * rn, 11 + rn as u64);
            kernels::dagger_matmul(&a, &b, &mut got, rk, rm, rn);
            kernels::reference::dagger_matmul(&a, &b, &mut want, rk, rm, rn);
            if !identical(&got, &want) {
                eprintln!("FAIL: dagger_matmul {rk}x{rm}x{rn} not bit-identical to reference");
                failures += 1;
            }

            let a = fill(rm * rk, 13 + rm as u64);
            let b = fill(rn * rk, 19 + rn as u64);
            kernels::matmul_dagger(&a, &b, &mut got, rm, rk, rn);
            kernels::reference::matmul_dagger(&a, &b, &mut want, rm, rk, rn);
            if !identical(&got, &want) {
                eprintln!("FAIL: matmul_dagger {rm}x{rk}x{rn} not bit-identical to reference");
                failures += 1;
            }
        }

        let v = fill(n * n, 23 + n as u64);
        let m_in = fill(n * n, 31 + n as u64);
        let mut scratch = vec![accqoc_linalg::ZERO; n * n];
        let mut got = vec![accqoc_linalg::ZERO; n * n];
        let mut want = vec![accqoc_linalg::ZERO; n * n];
        kernels::rotate(&v, &m_in, &mut scratch, &mut got, n);
        scratch.fill(accqoc_linalg::ZERO);
        kernels::reference::rotate(&v, &m_in, &mut scratch, &mut want, n);
        if !identical(&got, &want) {
            eprintln!("FAIL: rotate {n}x{n} not bit-identical to reference");
            failures += 1;
        }
    }
    failures
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("GRAPE kernel microbenchmarks — blocked vs naive reference\n");

    if check {
        let failures = check_bit_identity();
        if failures == 0 {
            println!(
                "bit-identity: all kernels match their reference over dims {}-{}",
                CHECK_DIMS.start(),
                CHECK_DIMS.end()
            );
        }

        let rows = measure_all();
        write_outputs(&rows);
        let dim8 = rows
            .iter()
            .find(|r| r.kernel == "matmul" && r.dim == 8)
            .expect("dim-8 matmul row");
        let speedup = dim8.speedup().expect("matmul has a naive twin");
        println!(
            "\ndim-8 matmul: blocked {:.1} ns vs naive {:.1} ns ({speedup:.2}x, gate {CHECK_MIN_SPEEDUP}x)",
            dim8.blocked_ns,
            dim8.naive_ns.unwrap_or(f64::NAN),
        );
        let mut failed = failures > 0;
        if speedup < CHECK_MIN_SPEEDUP {
            eprintln!(
                "FAIL: dim-8 matmul speedup {speedup:.2}x below pinned threshold {CHECK_MIN_SPEEDUP}x"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "\nOK: bit-identical over dims {}-{}, dim-8 matmul {speedup:.2}x >= {CHECK_MIN_SPEEDUP}x",
            CHECK_DIMS.start(),
            CHECK_DIMS.end()
        );
    } else {
        let rows = measure_all();
        write_outputs(&rows);
        println!("\nwrote results/grape_kernels.csv and BENCH_grape.json");
    }
}
