//! Regenerates paper Figure 14: group count vs gate count scaling.
use accqoc_bench::experiments::fig14_rows;
use accqoc_bench::{print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 14 — unique map2b4l groups vs program size\n");
    let ctx = ExperimentContext::bare();
    let mut rows = fig14_rows(&ctx);
    rows.sort_by_key(|r| r.1);
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, gates, groups)| {
            vec![
                name.clone(),
                gates.to_string(),
                groups.to_string(),
                format!("{:.3}", *groups as f64 / *gates as f64),
            ]
        })
        .collect();
    // Print a subsample to keep the console readable; CSV has everything.
    let sampled: Vec<Vec<String>> = display
        .iter()
        .step_by(8.max(display.len() / 18))
        .cloned()
        .collect();
    print_table(&["program", "gates", "groups", "groups/gate"], &sampled);
    write_csv(
        "fig14.csv",
        &["program", "gates", "groups", "ratio"],
        &display,
    )
    .ok();
    println!(
        "\n({} programs total — see results/fig14.csv; shape: groups grow sublinearly)",
        rows.len()
    );
}
