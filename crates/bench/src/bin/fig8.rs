//! Regenerates paper Figure 8: average iteration reduction per similarity
//! function on the profiled category.
use accqoc_bench::experiments::fig8_rows;
use accqoc_bench::{fast_mode, print_table, write_csv, ExperimentContext};

fn main() {
    println!("Figure 8 — iteration reduction of MST-ordered training per similarity function\n");
    let ctx = ExperimentContext::bare();
    let cap = if fast_mode() { 12 } else { 28 };
    let rows = fig8_rows(&ctx, cap);
    let display: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, red)| vec![label.to_string(), format!("{:+.1}%", red * 100.0)])
        .collect();
    print_table(&["similarity fn", "iteration reduction"], &display);
    println!("\npaper shape: fidelity1 best; inverse (anti-similarity) hurts");
    write_csv("fig8.csv", &["function", "reduction"], &display).ok();
}
