//! The golden regression corpus: fidelity/latency snapshots per golden
//! workload, checked into `results/golden/` and re-derived from a fresh
//! checkout by `tests/golden_corpus.rs`.
//!
//! The corpus is the contract every future scaling PR compiles against:
//! for each program in [`accqoc_workloads::golden_suite`], the full
//! pipeline (pre-compile → compile → verify) must keep reproducing the
//! recorded coverage, latencies, and fidelities within the documented
//! tolerances. Regenerate deliberately with the `verify_corpus` binary
//! after a change that legitimately moves the numbers, and say why in
//! the commit.
//!
//! Everything here is deterministic: the suite generators are seeded,
//! GRAPE's initial pulse is fixed, and the sequential pre-compile walks
//! one MST order — so the recomputed corpus matches the snapshot exactly
//! on one platform, and the diff tolerances only absorb cross-platform
//! floating-point (libm) drift.

use std::path::{Path, PathBuf};

use accqoc::json::{self, JsonValue};
use accqoc::{PrecompileOrder, Session, VerifyOptions};
use accqoc_hw::Topology;
use accqoc_workloads::{golden_suite, BenchProgram};

/// File name of the corpus snapshot inside [`golden_dir`].
pub const GOLDEN_FILE: &str = "corpus.json";

/// Latency tolerance (ns) for corpus diffs: a few GRAPE slices. A single
/// cross-platform FP (libm) flip of one binary-search boundary can also
/// reseed that group's MST children through `search.initial_guess`, so
/// legitimate drift is a small multiple of one slice, not exactly one.
pub const LATENCY_TOL_NS: f64 = 4.0;

/// Fidelity tolerance for corpus diffs.
pub const FIDELITY_TOL: f64 = 1e-3;

/// The checked-in corpus directory (`results/golden/` at the workspace
/// root), resolved from this crate's manifest so tests and binaries agree
/// regardless of the working directory.
pub fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/golden")
}

/// One workload's recorded pipeline + verification outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenRow {
    /// Workload name (suite convention).
    pub name: String,
    /// Logical register width.
    pub n_qubits: usize,
    /// Group instances after the front end.
    pub instances: usize,
    /// Unique groups after de-duplication.
    pub unique_groups: usize,
    /// Cache coverage rate at compile time (1.0 after pre-compilation).
    pub coverage_rate: f64,
    /// Overall pulse latency (Algorithm 3), ns.
    pub overall_latency_ns: f64,
    /// Gate-based baseline latency, ns.
    pub gate_based_latency_ns: f64,
    /// Worst per-group gate fidelity from the verification oracle.
    pub min_group_fidelity: f64,
    /// Multiplicative whole-program fidelity bound.
    pub program_fidelity_bound: f64,
    /// Exact dense-composition process fidelity (all golden programs are
    /// narrow enough for the exact path).
    pub exact_fidelity: f64,
    /// `|0…0⟩` output-state overlap of reconstructed vs reference.
    pub state_fidelity: f64,
}

/// The whole corpus: one row per golden workload, in suite order.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCorpus {
    /// Per-workload rows.
    pub rows: Vec<GoldenRow>,
}

impl GoldenCorpus {
    /// Serializes to pretty JSON (byte-deterministic).
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::String(r.name.clone())),
                    ("n_qubits".into(), JsonValue::Number(r.n_qubits as f64)),
                    ("instances".into(), JsonValue::Number(r.instances as f64)),
                    (
                        "unique_groups".into(),
                        JsonValue::Number(r.unique_groups as f64),
                    ),
                    ("coverage_rate".into(), JsonValue::Number(r.coverage_rate)),
                    (
                        "overall_latency_ns".into(),
                        JsonValue::Number(r.overall_latency_ns),
                    ),
                    (
                        "gate_based_latency_ns".into(),
                        JsonValue::Number(r.gate_based_latency_ns),
                    ),
                    (
                        "min_group_fidelity".into(),
                        JsonValue::Number(r.min_group_fidelity),
                    ),
                    (
                        "program_fidelity_bound".into(),
                        JsonValue::Number(r.program_fidelity_bound),
                    ),
                    ("exact_fidelity".into(), JsonValue::Number(r.exact_fidelity)),
                    ("state_fidelity".into(), JsonValue::Number(r.state_fidelity)),
                ])
            })
            .collect();
        JsonValue::Object(vec![("workloads".into(), JsonValue::Array(rows))]).to_pretty()
    }

    /// Parses a corpus produced by [`GoldenCorpus::to_json`].
    ///
    /// # Errors
    ///
    /// [`accqoc::Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> accqoc::Result<Self> {
        let malformed = |message: &str| json::JsonError {
            message: format!("golden corpus: {message}"),
            offset: 0,
        };
        let doc = json::parse(text)?;
        let mut rows = Vec::new();
        for entry in doc
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| malformed("missing `workloads` array"))?
        {
            let num = |field: &str| -> accqoc::Result<f64> {
                entry
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| malformed(&format!("row missing number `{field}`")).into())
            };
            let int = |field: &str| -> accqoc::Result<usize> {
                entry
                    .get(field)
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| malformed(&format!("row missing integer `{field}`")).into())
            };
            rows.push(GoldenRow {
                name: entry
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| malformed("row missing `name`"))?
                    .to_string(),
                n_qubits: int("n_qubits")?,
                instances: int("instances")?,
                unique_groups: int("unique_groups")?,
                coverage_rate: num("coverage_rate")?,
                overall_latency_ns: num("overall_latency_ns")?,
                gate_based_latency_ns: num("gate_based_latency_ns")?,
                min_group_fidelity: num("min_group_fidelity")?,
                program_fidelity_bound: num("program_fidelity_bound")?,
                exact_fidelity: num("exact_fidelity")?,
                state_fidelity: num("state_fidelity")?,
            });
        }
        Ok(Self { rows })
    }

    /// Loads a corpus snapshot from disk.
    ///
    /// # Errors
    ///
    /// [`accqoc::Error::Io`] / [`accqoc::Error::Json`] on unreadable or
    /// malformed files.
    pub fn load(path: impl AsRef<Path>) -> accqoc::Result<Self> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Writes the corpus snapshot (creating parent directories).
    ///
    /// # Errors
    ///
    /// [`accqoc::Error::Io`] on filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> accqoc::Result<()> {
        if let Some(dir) = path.as_ref().parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())?;
        Ok(())
    }
}

/// The session configuration the golden corpus is recorded under: a
/// 5-qubit linear device (every golden program maps onto it and stays
/// inside the exact verification oracle) with the repository's standard
/// capped GRAPE budget. Changing this configuration invalidates the
/// corpus — regenerate it in the same change.
pub fn golden_session() -> Session {
    let mut grape = accqoc_grape::GrapeOptions::default();
    grape.stop.max_iters = 200;
    Session::builder()
        .topology(Topology::linear(5))
        .grape(grape)
        .build()
        .expect("golden session config is valid")
}

/// Recomputes the corpus from scratch: sequential pre-compilation of the
/// golden suite's group category (the deterministic reference engine),
/// then compile + verify per workload.
///
/// # Panics
///
/// Panics when a golden workload fails to compile or verify — that *is*
/// the regression signal when run from a test.
pub fn compute_corpus() -> GoldenCorpus {
    let programs = golden_suite();
    let session = golden_session();
    let circuits: Vec<_> = programs.iter().map(|p| p.circuit.clone()).collect();
    session
        .precompile(&circuits, PrecompileOrder::Mst)
        .expect("golden suite pre-compiles");
    let rows = programs.iter().map(|p| compute_row(&session, p)).collect();
    GoldenCorpus { rows }
}

fn compute_row(session: &Session, program: &BenchProgram) -> GoldenRow {
    let compiled = session
        .compile_program(&program.circuit)
        .expect("golden workload compiles");
    let report = session
        .verify_program_with(&program.circuit, &VerifyOptions::default())
        .expect("golden workload verifies");
    GoldenRow {
        name: program.name.clone(),
        n_qubits: program.circuit.n_qubits(),
        instances: report.n_instances,
        unique_groups: report.groups.len(),
        coverage_rate: compiled.coverage.rate(),
        overall_latency_ns: compiled.overall_latency_ns,
        gate_based_latency_ns: compiled.gate_based_latency_ns,
        min_group_fidelity: report.min_group_fidelity,
        program_fidelity_bound: report.program_fidelity_bound,
        exact_fidelity: report
            .exact_fidelity
            .expect("golden programs are narrow enough for the exact oracle"),
        state_fidelity: report.state_fidelity.expect("state check runs with exact"),
    }
}

/// Compares a recomputed corpus against the checked-in snapshot; returns
/// one human-readable line per mismatch (empty means the corpus holds).
///
/// Structure (names, counts, coverage) must match exactly; latencies are
/// compared within [`LATENCY_TOL_NS`] and fidelities within
/// [`FIDELITY_TOL`].
pub fn diff_corpus(expected: &GoldenCorpus, actual: &GoldenCorpus) -> Vec<String> {
    let mut out = Vec::new();
    if expected.rows.len() != actual.rows.len() {
        out.push(format!(
            "corpus size changed: expected {} workloads, got {}",
            expected.rows.len(),
            actual.rows.len()
        ));
        return out;
    }
    for (e, a) in expected.rows.iter().zip(&actual.rows) {
        let ctx = &e.name;
        if e.name != a.name {
            out.push(format!("workload order changed: {ctx} vs {}", a.name));
            continue;
        }
        let mut exact = |field: &str, x: usize, y: usize| {
            if x != y {
                out.push(format!("{ctx}: {field} expected {x}, got {y}"));
            }
        };
        exact("n_qubits", e.n_qubits, a.n_qubits);
        exact("instances", e.instances, a.instances);
        exact("unique_groups", e.unique_groups, a.unique_groups);
        let mut close = |field: &str, x: f64, y: f64, tol: f64| {
            if (x - y).abs() > tol {
                out.push(format!(
                    "{ctx}: {field} expected {x}, got {y} (tolerance {tol})"
                ));
            }
        };
        close("coverage_rate", e.coverage_rate, a.coverage_rate, 1e-12);
        close(
            "overall_latency_ns",
            e.overall_latency_ns,
            a.overall_latency_ns,
            LATENCY_TOL_NS,
        );
        close(
            "gate_based_latency_ns",
            e.gate_based_latency_ns,
            a.gate_based_latency_ns,
            LATENCY_TOL_NS,
        );
        close(
            "min_group_fidelity",
            e.min_group_fidelity,
            a.min_group_fidelity,
            FIDELITY_TOL,
        );
        close(
            "program_fidelity_bound",
            e.program_fidelity_bound,
            a.program_fidelity_bound,
            FIDELITY_TOL,
        );
        close(
            "exact_fidelity",
            e.exact_fidelity,
            a.exact_fidelity,
            FIDELITY_TOL,
        );
        close(
            "state_fidelity",
            e.state_fidelity,
            a.state_fidelity,
            FIDELITY_TOL,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenCorpus {
        GoldenCorpus {
            rows: vec![GoldenRow {
                name: "qft_3".into(),
                n_qubits: 3,
                instances: 9,
                unique_groups: 9,
                coverage_rate: 1.0,
                overall_latency_ns: 169.0,
                gate_based_latency_ns: 415.0,
                min_group_fidelity: 0.99991,
                program_fidelity_bound: 0.9991,
                exact_fidelity: 0.9993,
                state_fidelity: 0.9995,
            }],
        }
    }

    #[test]
    fn corpus_json_round_trips() {
        let corpus = sample();
        let restored = GoldenCorpus::from_json(&corpus.to_json()).unwrap();
        assert_eq!(restored, corpus);
        assert!(GoldenCorpus::from_json("{}").is_err());
        assert!(GoldenCorpus::from_json("nope").is_err());
    }

    #[test]
    fn diff_flags_each_kind_of_drift() {
        let base = sample();
        assert!(diff_corpus(&base, &base.clone()).is_empty());

        let mut latency = base.clone();
        latency.rows[0].overall_latency_ns += 10.0;
        let d = diff_corpus(&base, &latency);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("overall_latency_ns"), "{d:?}");

        // Within tolerance: no report.
        let mut slight = base.clone();
        slight.rows[0].overall_latency_ns += 1.0;
        slight.rows[0].exact_fidelity += 1e-5;
        assert!(diff_corpus(&base, &slight).is_empty());

        let mut structural = base.clone();
        structural.rows[0].unique_groups = 8;
        assert!(!diff_corpus(&base, &structural).is_empty());

        let mut missing = base.clone();
        missing.rows.clear();
        let d = diff_corpus(&base, &missing);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("size changed"));
    }
}
