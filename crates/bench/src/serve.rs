//! Arrival-stream replay against the pulse library (online serving).
//!
//! The paper's evaluation is batch-shaped: precompile a category, then
//! measure coverage. The serving experiment instead replays a workload
//! as an *arrival stream* — programs hit [`Session::serve_program`] one
//! at a time against whatever the library holds so far — and reports the
//! quantities that matter for a pulse-compilation service: cache hit
//! rate, the share of compiles rescued by fingerprint warm starts, and
//! the mean GRAPE iteration cost warm vs scratch.

use accqoc::{LibraryStats, ServeReport, Session};
use accqoc_circuit::Circuit;

/// One served program of the stream.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Program name.
    pub program: String,
    /// Instance coverage at arrival time (paper §V-A semantics).
    pub coverage: f64,
    /// Unique groups compiled (misses).
    pub compiled: usize,
    /// Compiles that were warm-started from a fingerprint neighbor.
    pub warm_started: usize,
    /// GRAPE iterations spent on this program.
    pub iterations: usize,
    /// Latency reduction vs gate-based compilation.
    pub latency_reduction: f64,
}

impl ServeRow {
    fn from_report(program: &str, report: &ServeReport) -> Self {
        Self {
            program: program.to_string(),
            coverage: report.coverage.rate(),
            compiled: report.n_compiled,
            warm_started: report.n_warm_started,
            iterations: report.dynamic_iterations,
            latency_reduction: report.latency_reduction(),
        }
    }

    /// CSV/table cells, aligned with [`SERVE_HEADER`].
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.program.clone(),
            format!("{:.3}", self.coverage),
            self.compiled.to_string(),
            self.warm_started.to_string(),
            self.iterations.to_string(),
            format!("{:.2}", self.latency_reduction),
        ]
    }
}

/// Column header for [`ServeRow::cells`].
pub const SERVE_HEADER: [&str; 6] = [
    "program",
    "coverage",
    "compiled",
    "warm",
    "iterations",
    "latency_reduction",
];

/// Replays `programs` as an arrival stream through
/// [`Session::serve_program`], returning the per-program rows and the
/// library's cumulative serving counters.
///
/// # Errors
///
/// Propagates the first group-compilation failure.
pub fn serve_stream(
    session: &Session,
    programs: &[(String, Circuit)],
) -> Result<(Vec<ServeRow>, LibraryStats), accqoc::Error> {
    let mut rows = Vec::with_capacity(programs.len());
    for (name, circuit) in programs {
        let report = session.serve_program(circuit)?;
        rows.push(ServeRow::from_report(name, &report));
    }
    Ok((rows, session.library().stats()))
}

/// Formats the cumulative counters as summary lines for the table
/// footer / stderr.
pub fn summary_lines(stats: &LibraryStats) -> Vec<String> {
    vec![
        format!(
            "unique groups served: {} ({} hits, {} compiled)",
            stats.hits + stats.misses,
            stats.hits,
            stats.misses
        ),
        format!(
            "hit rate {:.1}%, warm-start share of compiles {:.1}%",
            stats.hit_rate() * 100.0,
            stats.warm_share() * 100.0
        ),
        format!(
            "mean GRAPE iterations: warm {:.1} vs scratch {:.1}",
            stats.mean_warm_iterations(),
            stats.mean_scratch_iterations()
        ),
    ]
}
