//! Grouping policies: the `{swap, map} × 2b{2,3,4}l` cataloging system of
//! paper §IV-B (Table I).
//!
//! `2bNl` means: at most 2 qubits per group, at most `N` layers of global
//! depth. The swap-handling mode distinguishes machines with native swaps
//! ("swap" policies keep them) from those without ("map" policies
//! decompose each swap into three CNOTs, which can then merge or cancel
//! with neighboring gates — §IV-F).

use std::fmt;
use std::str::FromStr;

/// How inserted swap gates are treated before grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapMode {
    /// Decompose each swap into three CNOTs ("map" prefix).
    Map,
    /// Keep swaps as native two-qubit operations ("swap" prefix).
    Swap,
}

impl SwapMode {
    /// The policy-label prefix.
    pub fn prefix(self) -> &'static str {
        match self {
            SwapMode::Map => "map",
            SwapMode::Swap => "swap",
        }
    }
}

/// A grouping policy.
///
/// # Examples
///
/// ```
/// use accqoc_group::{GroupingPolicy, SwapMode};
///
/// let p = GroupingPolicy::new(SwapMode::Map, 2, 4);
/// assert_eq!(p.label(), "map2b4l");
/// assert_eq!("map2b4l".parse::<GroupingPolicy>().unwrap(), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupingPolicy {
    /// Swap handling before grouping.
    pub swap_mode: SwapMode,
    /// Maximum distinct qubits per group (2 throughout the paper: larger
    /// groups "take too much time to train with QOC").
    pub max_qubits: usize,
    /// Maximum global-depth layers per group.
    pub max_layers: usize,
}

impl GroupingPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_qubits == 0` or `max_layers == 0`.
    pub fn new(swap_mode: SwapMode, max_qubits: usize, max_layers: usize) -> Self {
        assert!(max_qubits >= 1, "need at least one qubit per group");
        assert!(max_layers >= 1, "need at least one layer per group");
        Self {
            swap_mode,
            max_qubits,
            max_layers,
        }
    }

    /// The paper's label, e.g. `"map2b4l"`.
    pub fn label(&self) -> String {
        format!(
            "{}{}b{}l",
            self.swap_mode.prefix(),
            self.max_qubits,
            self.max_layers
        )
    }

    /// The six candidate policies of Table I, in the paper's order.
    pub fn paper_policies() -> Vec<GroupingPolicy> {
        let mut out = Vec::with_capacity(6);
        for &mode in &[SwapMode::Swap, SwapMode::Map] {
            for layers in 2..=4 {
                out.push(GroupingPolicy::new(mode, 2, layers));
            }
        }
        out
    }

    /// The policy the paper selects for its headline results (§V-A, VI-F).
    pub fn map2b4l() -> Self {
        Self::new(SwapMode::Map, 2, 4)
    }

    /// `true` when swaps should be decomposed into CNOTs pre-grouping.
    pub fn decompose_swaps(&self) -> bool {
        self.swap_mode == SwapMode::Map
    }
}

impl fmt::Display for GroupingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from parsing a policy label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid grouping policy label {:?} (expected e.g. \"map2b4l\")",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for GroupingPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError(s.to_string());
        let (mode, rest) = if let Some(r) = s.strip_prefix("swap") {
            (SwapMode::Swap, r)
        } else if let Some(r) = s.strip_prefix("map") {
            (SwapMode::Map, r)
        } else {
            return Err(err());
        };
        let (bits, layers) = rest.split_once('b').ok_or_else(err)?;
        let layers = layers.strip_suffix('l').ok_or_else(err)?;
        let max_qubits: usize = bits.parse().map_err(|_| err())?;
        let max_layers: usize = layers.parse().map_err(|_| err())?;
        if max_qubits == 0 || max_layers == 0 {
            return Err(err());
        }
        Ok(GroupingPolicy {
            swap_mode: mode,
            max_qubits,
            max_layers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        let labels: Vec<String> = GroupingPolicy::paper_policies()
            .iter()
            .map(|p| p.label())
            .collect();
        assert_eq!(
            labels,
            vec!["swap2b2l", "swap2b3l", "swap2b4l", "map2b2l", "map2b3l", "map2b4l"]
        );
    }

    #[test]
    fn parse_roundtrip() {
        for p in GroupingPolicy::paper_policies() {
            let parsed: GroupingPolicy = p.label().parse().unwrap();
            assert_eq!(parsed, p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "", "2b4l", "mapXbYl", "map0b4l", "map2b0l", "map2b4", "swap2x4l",
        ] {
            assert!(
                bad.parse::<GroupingPolicy>().is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn swap_mode_controls_decomposition() {
        assert!(GroupingPolicy::map2b4l().decompose_swaps());
        assert!(!GroupingPolicy::new(SwapMode::Swap, 2, 4).decompose_swaps());
    }

    #[test]
    fn display_is_label() {
        assert_eq!(GroupingPolicy::map2b4l().to_string(), "map2b4l");
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let _ = GroupingPolicy::new(SwapMode::Map, 2, 0);
    }
}
