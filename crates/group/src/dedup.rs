//! Group de-duplication (paper §IV-C).
//!
//! "After dividing a quantum program into groups, we 'de-duplicate' these
//! groups by calculating their corresponding matrices and eliminating
//! duplicated ones. Two groups with permutated Qubits but same operations
//! are also treated as duplicate."

use std::collections::HashMap;

use accqoc_circuit::UnitaryKey;

use crate::group::GateGroup;

/// Result of de-duplicating a group list.
#[derive(Debug, Clone)]
pub struct DedupResult {
    /// One representative group per equivalence class, in first-seen order.
    pub unique: Vec<GateGroup>,
    /// For every input group, the index of its representative in `unique`.
    pub assignment: Vec<usize>,
    /// Canonical key per unique group (aligned with `unique`).
    pub keys: Vec<UnitaryKey>,
}

impl DedupResult {
    /// Number of equivalence classes.
    pub fn n_unique(&self) -> usize {
        self.unique.len()
    }

    /// Occurrence count per unique group.
    pub fn frequencies(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.unique.len()];
        for &a in &self.assignment {
            freq[a] += 1;
        }
        freq
    }

    /// Index of the most frequent unique group (paper §IV-G optimizes this
    /// one extra hard), or `None` when empty.
    pub fn most_frequent(&self) -> Option<usize> {
        let freq = self.frequencies();
        (0..freq.len()).max_by_key(|&i| freq[i])
    }
}

/// De-duplicates groups by canonical unitary key.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::Gate;
/// use accqoc_group::{dedup_groups, GateGroup};
///
/// let a = GateGroup::from_global_gates(vec![0, 1], &[(0, Gate::Cx(0, 1))]);
/// let b = GateGroup::from_global_gates(vec![4, 7], &[(1, Gate::Cx(7, 4))]);
/// let r = dedup_groups(&[a, b]);
/// assert_eq!(r.n_unique(), 1);
/// assert_eq!(r.assignment, vec![0, 0]);
/// ```
pub fn dedup_groups(groups: &[GateGroup]) -> DedupResult {
    let mut by_key: HashMap<UnitaryKey, usize> = HashMap::new();
    let mut unique: Vec<GateGroup> = Vec::new();
    let mut keys: Vec<UnitaryKey> = Vec::new();
    let mut assignment = Vec::with_capacity(groups.len());

    for g in groups {
        let key = g.key();
        let idx = *by_key.entry(key.clone()).or_insert_with(|| {
            unique.push(g.clone());
            keys.push(key);
            unique.len() - 1
        });
        assignment.push(idx);
    }
    DedupResult {
        unique,
        assignment,
        keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::Gate;

    fn cx_group(q0: usize, q1: usize, idx: usize) -> GateGroup {
        GateGroup::from_global_gates(vec![q0.min(q1), q0.max(q1)], &[(idx, Gate::Cx(q0, q1))])
    }

    #[test]
    fn identical_groups_collapse() {
        let groups = vec![cx_group(0, 1, 0), cx_group(2, 3, 1), cx_group(5, 6, 2)];
        let r = dedup_groups(&groups);
        assert_eq!(r.n_unique(), 1);
        assert_eq!(r.assignment, vec![0, 0, 0]);
        assert_eq!(r.frequencies(), vec![3]);
    }

    #[test]
    fn permuted_qubits_collapse() {
        // cx(0,1) vs cx(1,0): same operation under qubit relabeling.
        let groups = vec![cx_group(0, 1, 0), cx_group(1, 0, 1)];
        let r = dedup_groups(&groups);
        assert_eq!(r.n_unique(), 1);
    }

    #[test]
    fn different_operations_stay_distinct() {
        let h = GateGroup::from_global_gates(vec![0], &[(0, Gate::H(0))]);
        let t = GateGroup::from_global_gates(vec![0], &[(1, Gate::T(0))]);
        let r = dedup_groups(&[h, t]);
        assert_eq!(r.n_unique(), 2);
        assert_eq!(r.assignment, vec![0, 1]);
    }

    #[test]
    fn composite_equivalence_detected() {
        // H·H = I on one qubit equals the empty-product identity of T·T·Sdg…
        // simpler: two different gate sequences with the same unitary.
        let a = GateGroup::from_global_gates(vec![0], &[(0, Gate::H(0)), (1, Gate::H(0))]);
        let b = GateGroup::from_global_gates(vec![3], &[(2, Gate::S(3)), (3, Gate::Sdg(3))]);
        let r = dedup_groups(&[a, b]);
        assert_eq!(r.n_unique(), 1, "both are the identity");
    }

    #[test]
    fn most_frequent_reported() {
        let groups = vec![
            cx_group(0, 1, 0),
            GateGroup::from_global_gates(vec![0], &[(1, Gate::H(0))]),
            cx_group(2, 3, 2),
            cx_group(4, 5, 3),
        ];
        let r = dedup_groups(&groups);
        assert_eq!(r.n_unique(), 2);
        assert_eq!(r.most_frequent(), Some(0));
        assert!(dedup_groups(&[]).most_frequent().is_none());
    }

    #[test]
    fn frequencies_sum_to_input_count() {
        let groups = vec![cx_group(0, 1, 0), cx_group(0, 1, 1), cx_group(1, 0, 2)];
        let r = dedup_groups(&groups);
        assert_eq!(r.frequencies().iter().sum::<usize>(), 3);
    }
}
