//! Gate grouping for QOC pulse compilation (paper §IV).
//!
//! AccQOC compiles pulses per *gate group* — a ≤2-qubit, depth-bounded
//! subcircuit equivalent to a small unitary. This crate implements the
//! `{swap,map}2bNl` policies (Table I), Algorithm 1 (bit dividing),
//! Algorithm 2 (layer dividing), the group DAG with the Algorithm 3
//! latency dynamic program, and group de-duplication up to global phase
//! and qubit permutation (§IV-C).
//!
//! # Example
//!
//! ```
//! use accqoc_circuit::{Circuit, Gate};
//! use accqoc_group::{dedup_groups, divide_circuit, GroupingPolicy};
//!
//! let c = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]);
//! let (grouped, _) = divide_circuit(&c, &GroupingPolicy::map2b4l());
//! let dedup = dedup_groups(&grouped.groups);
//! assert!(dedup.n_unique() <= grouped.len());
//! ```

#![warn(missing_docs)]

mod dedup;
mod divide;
mod group;
mod policy;

pub use dedup::{dedup_groups, DedupResult};
pub use divide::{bit_divide, divide_circuit, layer_divide};
pub use group::{GateGroup, GroupedCircuit};
pub use policy::{GroupingPolicy, ParsePolicyError, SwapMode};
