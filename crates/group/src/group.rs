//! Gate groups and grouped circuits.
//!
//! A group is the paper's unit of pulse compilation: a small subcircuit
//! "equivalent to a matrix". Groups carry their local circuit (qubits
//! renumbered to `0..k`), the unitary, and a canonical [`UnitaryKey`] for
//! de-duplication and cache lookups.

use accqoc_circuit::{circuit_unitary, Circuit, Gate, UnitaryKey};
use accqoc_linalg::Mat;

/// One gate group.
#[derive(Debug, Clone)]
pub struct GateGroup {
    /// The global qubits the group acts on, ascending; local qubit `i`
    /// corresponds to `qubits[i]`.
    pub qubits: Vec<usize>,
    /// Gates over local qubit indices, in program order.
    pub gates: Vec<Gate>,
    /// Positions of the group's gates in the originating circuit.
    pub gate_indices: Vec<usize>,
}

impl GateGroup {
    /// Builds a group from global-indexed gates.
    ///
    /// # Panics
    ///
    /// Panics if a gate touches a qubit outside `qubits`.
    pub fn from_global_gates(qubits: Vec<usize>, gates_global: &[(usize, Gate)]) -> Self {
        let local_of = |q: usize| -> usize {
            qubits
                .iter()
                .position(|&x| x == q)
                .unwrap_or_else(|| panic!("qubit {q} not in group {qubits:?}"))
        };
        let mut gates = Vec::with_capacity(gates_global.len());
        let mut gate_indices = Vec::with_capacity(gates_global.len());
        for &(idx, g) in gates_global {
            gates.push(g.remap(local_of));
            gate_indices.push(idx);
        }
        Self {
            qubits,
            gates,
            gate_indices,
        }
    }

    /// Number of distinct qubits.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` for an empty group (does not occur from the dividers).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The group as a local circuit over `n_qubits()` qubits.
    pub fn to_circuit(&self) -> Circuit {
        Circuit::from_gates(self.n_qubits(), self.gates.iter().copied())
    }

    /// The group's unitary matrix (`2^k × 2^k`).
    pub fn unitary(&self) -> Mat {
        circuit_unitary(&self.to_circuit())
    }

    /// Canonical identity of the group: global phase and qubit permutation
    /// quotiented out (paper §IV-C dedup rule).
    pub fn key(&self) -> UnitaryKey {
        UnitaryKey::canonical(&self.unitary(), self.n_qubits())
    }
}

/// A circuit restructured into a DAG of groups (paper §IV-E: "we
/// restructure the original DAG into a new DAG by turning each group into
/// a node").
#[derive(Debug, Clone)]
pub struct GroupedCircuit {
    /// Groups in topological order.
    pub groups: Vec<GateGroup>,
    /// `preds[i]` = indices of groups that must finish before group `i`.
    pub preds: Vec<Vec<usize>>,
    /// Register width of the originating circuit.
    pub n_qubits: usize,
}

impl GroupedCircuit {
    /// Builds the group DAG from groups tagged with original gate indices.
    ///
    /// Dependencies are derived from per-qubit gate order in the original
    /// circuit: group A precedes group B when some qubit's consecutive
    /// gates fall in A then B.
    pub fn from_groups(n_qubits: usize, mut groups: Vec<GateGroup>, circuit: &Circuit) -> Self {
        // Topological order by first gate index (gate order is topological).
        groups.sort_by_key(|g| g.gate_indices.first().copied().unwrap_or(usize::MAX));
        // Map gate index → group index.
        let mut owner = vec![usize::MAX; circuit.len()];
        for (gi, g) in groups.iter().enumerate() {
            for &idx in &g.gate_indices {
                owner[idx] = gi;
            }
        }
        debug_assert!(
            owner.iter().all(|&o| o != usize::MAX),
            "every gate must be grouped"
        );

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; n_qubits];
        for (idx, gate) in circuit.iter().enumerate() {
            let gi = owner[idx];
            for q in gate.qubits() {
                if let Some(prev) = last_on_qubit[q] {
                    if prev != gi && !preds[gi].contains(&prev) {
                        preds[gi].push(prev);
                    }
                }
                last_on_qubit[q] = Some(gi);
            }
        }
        for p in preds.iter_mut() {
            p.sort_unstable();
        }
        Self {
            groups,
            preds,
            n_qubits,
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Overall latency via the dynamic program of paper Algorithm 3:
    /// walk groups in topological order, `finish(i) = max(finish(preds))
    /// + latency(i)`; the overall latency is the maximum finish time.
    pub fn overall_latency(&self, latency_of: impl Fn(usize) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.groups.len()];
        let mut best = 0.0f64;
        for i in 0..self.groups.len() {
            let start = self.preds[i].iter().map(|&p| finish[p]).fold(0.0, f64::max);
            finish[i] = start + latency_of(i);
            best = best.max(finish[i]);
        }
        best
    }

    /// Checks the structural invariant: every pred index is smaller than
    /// the group it precedes (valid topological numbering).
    pub fn is_topologically_sound(&self) -> bool {
        self.preds
            .iter()
            .enumerate()
            .all(|(i, ps)| ps.iter().all(|&p| p < i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_linalg::approx_eq_up_to_phase;

    #[test]
    fn local_renumbering() {
        let g = GateGroup::from_global_gates(
            vec![3, 7],
            &[(0, Gate::H(3)), (1, Gate::Cx(3, 7)), (2, Gate::T(7))],
        );
        assert_eq!(g.gates, vec![Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]);
        assert_eq!(g.n_qubits(), 2);
        assert_eq!(g.len(), 3);
        assert!(g.unitary().is_unitary(1e-12));
    }

    #[test]
    fn key_identifies_equivalent_groups() {
        let a = GateGroup::from_global_gates(vec![0, 1], &[(0, Gate::Cx(0, 1))]);
        let b = GateGroup::from_global_gates(vec![5, 9], &[(3, Gate::Cx(9, 5))]);
        // Same operation, qubits permuted ⇒ same canonical key.
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn unitary_matches_direct_evaluation() {
        let g = GateGroup::from_global_gates(vec![2, 4], &[(0, Gate::H(2)), (1, Gate::Cx(2, 4))]);
        let direct = circuit_unitary(&Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]));
        assert!(approx_eq_up_to_phase(&g.unitary(), &direct, 1e-12));
    }

    #[test]
    #[should_panic(expected = "not in group")]
    fn foreign_qubit_panics() {
        let _ = GateGroup::from_global_gates(vec![0, 1], &[(0, Gate::X(5))]);
    }

    fn two_group_chain() -> (Circuit, GroupedCircuit) {
        let c = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2), Gate::X(2)]);
        let g1 = GateGroup::from_global_gates(vec![0, 1], &[(0, Gate::H(0)), (1, Gate::Cx(0, 1))]);
        let g2 = GateGroup::from_global_gates(vec![1, 2], &[(2, Gate::Cx(1, 2)), (3, Gate::X(2))]);
        let gc = GroupedCircuit::from_groups(3, vec![g2, g1], &c);
        (c, gc)
    }

    #[test]
    fn group_dag_dependencies() {
        let (_, gc) = two_group_chain();
        assert_eq!(gc.len(), 2);
        assert!(gc.is_topologically_sound());
        // Sorted so group 0 = {H, cx(0,1)}, group 1 depends on it via qubit 1.
        assert_eq!(gc.preds[0], Vec::<usize>::new());
        assert_eq!(gc.preds[1], vec![0]);
    }

    #[test]
    fn overall_latency_chains_and_parallelizes() {
        let (_, gc) = two_group_chain();
        // Serial chain: latencies add.
        assert!((gc.overall_latency(|i| if i == 0 { 30.0 } else { 12.0 }) - 42.0).abs() < 1e-12);

        // Parallel groups: max, not sum.
        let c = Circuit::from_gates(4, [Gate::Cx(0, 1), Gate::Cx(2, 3)]);
        let ga = GateGroup::from_global_gates(vec![0, 1], &[(0, Gate::Cx(0, 1))]);
        let gb = GateGroup::from_global_gates(vec![2, 3], &[(1, Gate::Cx(2, 3))]);
        let gc2 = GroupedCircuit::from_groups(4, vec![ga, gb], &c);
        assert_eq!(gc2.preds[1], Vec::<usize>::new());
        assert!((gc2.overall_latency(|i| if i == 0 { 20.0 } else { 35.0 }) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn empty_grouped_circuit() {
        let c = Circuit::new(2);
        let gc = GroupedCircuit::from_groups(2, vec![], &c);
        assert!(gc.is_empty());
        assert_eq!(gc.overall_latency(|_| 1.0), 0.0);
    }
}
