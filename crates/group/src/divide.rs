//! The two-step grouping of paper §IV-C: bit dividing (Algorithm 1)
//! followed by layer dividing (Algorithm 2).
//!
//! Bit dividing walks the circuit DAG in topological order, greedily
//! merging each gate with the group(s) of its predecessors whenever the
//! combined qubit support stays within the policy's bit budget. Layer
//! dividing then cuts each bit-group into segments spanning at most `n`
//! layers of global depth. The result is the final group list.
//!
//! Merges are guarded by a convexity check on the evolving group DAG so
//! every produced group is executable as a unit (no dependency cycles
//! through other groups) — implicit in the paper, enforced here.

use accqoc_circuit::{Circuit, CircuitDag};

use crate::group::{GateGroup, GroupedCircuit};
use crate::policy::GroupingPolicy;

/// Divides a (hardware-mapped) circuit into gate groups under a policy.
///
/// Swap handling: when the policy says [`crate::SwapMode::Map`], swaps are
/// decomposed into three CNOTs *before* grouping; `ccx` gates are always
/// decomposed (not hardware-native). The returned [`GroupedCircuit`] refers
/// to the post-decomposition circuit, which is also returned.
///
/// # Examples
///
/// ```
/// use accqoc_circuit::{Circuit, Gate};
/// use accqoc_group::{divide_circuit, GroupingPolicy};
///
/// let c = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]);
/// let (grouped, _processed) = divide_circuit(&c, &GroupingPolicy::map2b4l());
/// // Everything fits one 2-qubit, ≤4-layer group.
/// assert_eq!(grouped.len(), 1);
/// assert_eq!(grouped.groups[0].len(), 3);
/// ```
pub fn divide_circuit(circuit: &Circuit, policy: &GroupingPolicy) -> (GroupedCircuit, Circuit) {
    let processed = preprocess(circuit, policy);
    let large = bit_divide(&processed, policy.max_qubits);
    let groups = layer_divide(&processed, large, policy.max_layers);
    let grouped = GroupedCircuit::from_groups(processed.n_qubits(), groups, &processed);
    (grouped, processed)
}

fn preprocess(circuit: &Circuit, policy: &GroupingPolicy) -> Circuit {
    // ccx always decomposed; swaps per policy.
    circuit.decomposed(policy.decompose_swaps())
}

/// One group under construction during bit dividing.
#[derive(Debug, Clone)]
struct Build {
    gate_indices: Vec<usize>,
    qubits: Vec<usize>,
    /// Direct predecessor groups (for the convexity check).
    preds: Vec<usize>,
    /// Merged into another group.
    merged_into: Option<usize>,
}

/// Algorithm 1: greedy maximal grouping under a qubit budget.
///
/// Returns per-group gate index lists (with qubit sets), in creation
/// order.
pub fn bit_divide(circuit: &Circuit, max_qubits: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut builds: Vec<Build> = Vec::new();
    let mut open_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];

    let resolve = |builds: &Vec<Build>, mut i: usize| -> usize {
        while let Some(next) = builds[i].merged_into {
            i = next;
        }
        i
    };

    for (idx, gate) in circuit.iter().enumerate() {
        let qs = gate.qubits();
        // Candidate groups: the open groups on this gate's qubits.
        let mut cands: Vec<usize> = Vec::new();
        for &q in &qs {
            if let Some(b) = open_on_qubit[q] {
                let b = resolve(&builds, b);
                if !cands.contains(&b) {
                    cands.push(b);
                }
            }
        }

        let target = if cands.is_empty() {
            None
        } else {
            // Union of qubit supports.
            let mut union: Vec<usize> = qs.clone();
            for &c in &cands {
                for &q in &builds[c].qubits {
                    if !union.contains(&q) {
                        union.push(q);
                    }
                }
            }
            if union.len() <= max_qubits && merge_is_convex(&builds, &cands, &resolve) {
                Some((cands.clone(), union))
            } else {
                None
            }
        };

        match target {
            Some((cands, union)) => {
                // Merge all candidates into the first, then append the gate.
                let host = cands[0];
                for &other in &cands[1..] {
                    let (gates, preds) = {
                        let o = &builds[other];
                        (o.gate_indices.clone(), o.preds.clone())
                    };
                    builds[other].merged_into = Some(host);
                    builds[host].gate_indices.extend(gates);
                    for p in preds {
                        let p = resolve(&builds, p);
                        if p != host && !builds[host].preds.contains(&p) {
                            builds[host].preds.push(p);
                        }
                    }
                }
                builds[host].gate_indices.push(idx);
                builds[host].gate_indices.sort_unstable();
                let mut q_sorted = union;
                q_sorted.sort_unstable();
                builds[host].qubits = q_sorted;
                for &q in &qs {
                    // Record the dependency from whatever group previously
                    // owned this qubit (if different).
                    if let Some(prev) = open_on_qubit[q] {
                        let prev = resolve(&builds, prev);
                        if prev != host && !builds[host].preds.contains(&prev) {
                            builds[host].preds.push(prev);
                        }
                    }
                    open_on_qubit[q] = Some(host);
                }
            }
            None => {
                // Close the open groups on these qubits; start fresh.
                let id = builds.len();
                let mut preds = Vec::new();
                for &q in &qs {
                    if let Some(prev) = open_on_qubit[q] {
                        let prev = resolve(&builds, prev);
                        if !preds.contains(&prev) {
                            preds.push(prev);
                        }
                    }
                    open_on_qubit[q] = Some(id);
                }
                let mut q_sorted = qs.clone();
                q_sorted.sort_unstable();
                builds.push(Build {
                    gate_indices: vec![idx],
                    qubits: q_sorted,
                    preds,
                    merged_into: None,
                });
            }
        }
    }

    builds
        .into_iter()
        .filter(|b| b.merged_into.is_none())
        .map(|b| (b.gate_indices, b.qubits))
        .collect()
}

/// `true` when merging `cands` cannot create a cycle: no candidate reaches
/// another candidate through groups *outside* the candidate set.
fn merge_is_convex(
    builds: &Vec<Build>,
    cands: &[usize],
    resolve: &impl Fn(&Vec<Build>, usize) -> usize,
) -> bool {
    // BFS backwards from each candidate through preds, stopping at
    // candidates; if we reach another candidate *via* a non-candidate,
    // merging would swallow a group with an external dependency path.
    for &start in cands {
        let mut stack: Vec<usize> = builds[start]
            .preds
            .iter()
            .map(|&p| resolve(builds, p))
            .filter(|p| !cands.contains(p))
            .collect();
        let mut seen = vec![false; builds.len()];
        while let Some(b) = stack.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            for &p in &builds[b].preds {
                let p = resolve(builds, p);
                if cands.contains(&p) {
                    return false; // candidate → outside → candidate path
                }
                if !seen[p] {
                    stack.push(p);
                }
            }
        }
    }
    true
}

/// Algorithm 2: cut each bit-group into segments of at most `max_layers`
/// consecutive global-depth layers.
pub fn layer_divide(
    circuit: &Circuit,
    large_groups: Vec<(Vec<usize>, Vec<usize>)>,
    max_layers: usize,
) -> Vec<GateGroup> {
    let dag = CircuitDag::from_circuit(circuit);
    let gates = circuit.gates();
    let mut out = Vec::new();

    for (gate_indices, _qubits) in large_groups {
        let start_depth = gate_indices
            .iter()
            .map(|&i| dag.node(i).layer)
            .min()
            .expect("groups are non-empty");
        // Bucket by (depth − start) / max_layers. Depth is monotone along
        // dependencies, so buckets are dependency-convex segments.
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        for &i in &gate_indices {
            let b = (dag.node(i).layer - start_depth) / max_layers;
            if buckets.len() <= b {
                buckets.resize(b + 1, Vec::new());
            }
            buckets[b].push(i);
        }
        for bucket in buckets.into_iter().filter(|b| !b.is_empty()) {
            // Qubit support of this segment only.
            let mut qubits: Vec<usize> = bucket.iter().flat_map(|&i| gates[i].qubits()).collect();
            qubits.sort_unstable();
            qubits.dedup();
            let tagged: Vec<(usize, accqoc_circuit::Gate)> =
                bucket.iter().map(|&i| (i, gates[i])).collect();
            out.push(GateGroup::from_global_gates(qubits, &tagged));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SwapMode;
    use accqoc_circuit::Gate;

    #[test]
    fn bit_divide_respects_qubit_budget() {
        let c = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2), Gate::T(2)]);
        let groups = bit_divide(&c, 2);
        for (_, qubits) in &groups {
            assert!(qubits.len() <= 2, "group {qubits:?} too wide");
        }
        // cx(1,2) cannot join the {0,1} group: union would be 3 qubits.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, vec![0, 1]);
        assert_eq!(groups[1].0, vec![2, 3]);
    }

    #[test]
    fn bit_divide_merges_single_qubit_runs() {
        let c = Circuit::from_gates(2, [Gate::H(0), Gate::T(1), Gate::Cx(0, 1), Gate::X(1)]);
        let groups = bit_divide(&c, 2);
        // Everything coalesces into one 2-qubit group.
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].0, vec![0, 1, 2, 3]);
        assert_eq!(groups[0].1, vec![0, 1]);
    }

    #[test]
    fn every_gate_lands_in_exactly_one_group() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::H(0),
                Gate::Cx(0, 1),
                Gate::Cx(2, 3),
                Gate::T(1),
                Gate::Cx(1, 2),
                Gate::X(3),
                Gate::Cx(0, 1),
            ],
        );
        let groups = bit_divide(&c, 2);
        let mut seen = vec![0usize; c.len()];
        for (idxs, _) in &groups {
            for &i in idxs {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "coverage: {seen:?}");
    }

    #[test]
    fn layer_divide_cuts_deep_groups() {
        // A 6-deep single-qubit chain under a 2-layer budget → 3 groups.
        let c = Circuit::from_gates(
            1,
            [
                Gate::H(0),
                Gate::T(0),
                Gate::H(0),
                Gate::T(0),
                Gate::H(0),
                Gate::T(0),
            ],
        );
        let large = bit_divide(&c, 2);
        assert_eq!(large.len(), 1);
        let groups = layer_divide(&c, large, 2);
        assert_eq!(groups.len(), 3);
        for g in &groups {
            assert_eq!(g.len(), 2);
        }
    }

    #[test]
    fn divide_circuit_end_to_end_policies() {
        let c = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::Swap(0, 1),
                Gate::Cx(1, 2),
                Gate::T(2),
                Gate::Cx(1, 2),
            ],
        );
        // map policy: swap → 3 CNOTs, so more gates post-processing.
        let (grouped_map, processed_map) = divide_circuit(&c, &GroupingPolicy::map2b4l());
        assert_eq!(processed_map.len(), c.len() + 2);
        assert!(grouped_map.is_topologically_sound());

        // swap policy: swap kept native.
        let (grouped_swap, processed_swap) =
            divide_circuit(&c, &GroupingPolicy::new(SwapMode::Swap, 2, 4));
        assert_eq!(processed_swap.len(), c.len());
        assert!(grouped_swap.is_topologically_sound());

        // All gates covered in both cases.
        let count = |gc: &GroupedCircuit| -> usize { gc.groups.iter().map(|g| g.len()).sum() };
        assert_eq!(count(&grouped_map), processed_map.len());
        assert_eq!(count(&grouped_swap), processed_swap.len());
    }

    #[test]
    fn groups_are_dependency_convex() {
        // Regression for the cycle hazard: two groups connected through an
        // intermediate must not merge around it.
        let c = Circuit::from_gates(
            3,
            [
                Gate::Cx(0, 1), // group A {0,1}
                Gate::Cx(1, 2), // closes A on 1; group B {1,2}
                Gate::Cx(0, 1), // must not merge into a cycle with A through B
            ],
        );
        let (grouped, _) = divide_circuit(&c, &GroupingPolicy::map2b4l());
        assert!(grouped.is_topologically_sound());
        // Latency DP must terminate and be consistent.
        let lat = grouped.overall_latency(|_| 1.0);
        assert!(lat >= 2.0);
    }

    #[test]
    fn wider_budget_creates_bigger_groups() {
        let c = Circuit::from_gates(
            4,
            [
                Gate::Cx(0, 1),
                Gate::Cx(2, 3),
                Gate::Cx(1, 2),
                Gate::Cx(0, 3),
            ],
        );
        let narrow = bit_divide(&c, 2).len();
        let wide = bit_divide(&c, 4).len();
        assert!(wide < narrow, "wide {wide} vs narrow {narrow}");
        assert_eq!(wide, 1);
    }

    #[test]
    fn deep_two_qubit_group_respects_layer_budget() {
        let mut gates = Vec::new();
        for _ in 0..5 {
            gates.push(Gate::Cx(0, 1));
            gates.push(Gate::H(0));
        }
        let c = Circuit::from_gates(2, gates);
        let (grouped, processed) = divide_circuit(&c, &GroupingPolicy::new(SwapMode::Map, 2, 4));
        let dag = CircuitDag::from_circuit(&processed);
        for g in &grouped.groups {
            let depths: Vec<usize> = g.gate_indices.iter().map(|&i| dag.node(i).layer).collect();
            let span = depths.iter().max().unwrap() - depths.iter().min().unwrap();
            assert!(span < 4, "group spans {span} layers");
        }
    }
}
