//! Consistent-hash sharding of the pulse library across worker
//! processes.
//!
//! The paper's §V amortization argument scales horizontally by
//! partitioning the library: N `accqoc-server` workers each own a
//! durable store (`--data-dir` per shard), and a router forwards every
//! call to the shard that owns the groups it touches. Two properties
//! make that partition *transparent* — a sharded deployment serves
//! byte-identical pulses to a single-process [`Session`]:
//!
//! 1. **The routing key is the dimension class** (`n_qubits`), the
//!    width component of the [`UnitaryFingerprint`] bucket key. Warm
//!    starts are strictly width-local — [`UnitaryFingerprint::distance`]
//!    is infinite across widths, and candidate retrieval never crosses a
//!    width boundary — so the per-width serving state (exact hits, warm
//!    chains, hub picks) is closed under this partition. Routing on the
//!    *trace* component of the bucket key would not be: adjacent UCCSD
//!    θ-steps drift across trace-cell edges while staying inside the
//!    warm threshold, so a trace-bucket split severs warm chains and
//!    changes the served bytes. The dimension class is the finest
//!    statically warm-closed partition.
//! 2. **Routing is a pure function of the key and the shard count.**
//!    [`ShardRing`] places a fixed number of virtual nodes per shard at
//!    positions that depend only on `(shard, vnode)` — never on the
//!    total shard count — so resizing N→N+1 can only re-home keys onto
//!    the *new* shard (the minimal-movement invariant holds by
//!    construction), and every process that builds a ring with the same
//!    shard count routes identically, across restarts and hosts.
//!
//! Rebalancing ([`rebalance`]) re-homes whole dimension classes for a
//! ring resize. It deliberately reuses the durable tier's replay path:
//! sources are read through the same snapshot+WAL recovery as a daemon
//! restart, destinations are written through the same atomic snapshot
//! pair as a checkpoint, and additions land before prunes so a crash at
//! any point leaves every entry present somewhere and a re-run
//! converges.
//!
//! [`Session`]: crate::Session
//! [`UnitaryFingerprint`]: crate::UnitaryFingerprint
//! [`UnitaryFingerprint::distance`]: crate::UnitaryFingerprint::distance

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use accqoc_circuit::UnitaryKey;
use accqoc_linalg::Mat;
use accqoc_store::{move_store_dir, shard_dir};

use crate::cache::{CachedPulse, PulseCache};
use crate::error::{Error, Result};
use crate::library::UnitaryFingerprint;
use crate::persist::{self, PersistOptions};

/// Virtual nodes per shard. 64 keeps ring construction and routing
/// cheap while holding the arc-ownership imbalance (max/min share)
/// under 1.14 for 2–8 shards with the tuned placement salt.
pub const DEFAULT_VNODES: usize = 64;

/// Placement salt for virtual-node positions, tuned offline so the
/// 64-vnode ring's per-shard arc ownership stays within max/min ≤ 1.14
/// for every shard count from 2 to 8 (the proptests gate ≤ 1.3, leaving
/// headroom for finite key populations).
const POINT_SALT: u64 = 0x8a92_2665_5a5e_b628;

/// Salt separating the key-hash domain from the point-hash domain.
const KEY_SALT: u64 = 0x517c_c1b7_2722_0a95;

/// SplitMix64 finalizer: a fast, high-quality 64-bit mixing function.
/// Purely deterministic — ring placement and routing must agree across
/// processes, restarts, and hosts.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The unit of shard ownership: one dimension class of the library.
///
/// Serving state is closed under width (see the module docs), so the
/// dimension class is the finest key that keeps a sharded deployment
/// byte-identical to a single process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardKey(u64);

impl ShardKey {
    /// The shard key of every group with this many qubits.
    pub fn dimension_class(n_qubits: usize) -> Self {
        ShardKey(n_qubits as u64)
    }

    /// The shard key a fingerprint routes by: its width class (the
    /// warm-closed component of the fingerprint's bucket key).
    pub fn of_fingerprint(fingerprint: &UnitaryFingerprint) -> Self {
        Self::dimension_class(fingerprint.n_qubits())
    }

    /// The raw key value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A consistent-hash ring over `shards` workers with a fixed number of
/// virtual nodes per shard.
///
/// Ring positions depend only on `(shard, vnode)`, so growing the ring
/// adds points without moving existing ones: a key's owner either stays
/// put or becomes the new shard — never a third party.
///
/// # Examples
///
/// ```
/// use accqoc::shard::{ShardKey, ShardRing};
///
/// let ring = ShardRing::new(3);
/// let owner = ring.route(ShardKey::dimension_class(2));
/// assert!(owner < 3);
/// // Deterministic: every process with the same shard count agrees.
/// assert_eq!(owner, ShardRing::new(3).route(ShardKey::dimension_class(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRing {
    shards: usize,
    vnodes: usize,
    /// `(position, shard)` sorted by position (then shard, which breaks
    /// the astronomically unlikely position collision deterministically).
    points: Vec<(u64, usize)>,
}

impl ShardRing {
    /// A ring over `shards` workers with [`DEFAULT_VNODES`] virtual
    /// nodes each.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero (a ring with no owners cannot route).
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count (tests tune this;
    /// deployments should use [`ShardRing::new`]).
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `vnodes` is zero.
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        assert!(shards > 0, "a shard ring needs at least one shard");
        assert!(
            vnodes > 0,
            "a shard ring needs at least one vnode per shard"
        );
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let position = mix64(POINT_SALT ^ ((shard as u64) << 32) ^ vnode as u64);
                points.push((position, shard));
            }
        }
        points.sort_unstable();
        Self {
            shards,
            vnodes,
            points,
        }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The shard owning `key`: the successor virtual node of the key's
    /// ring position, wrapping at the top.
    pub fn route(&self, key: ShardKey) -> usize {
        let position = mix64(KEY_SALT ^ key.0);
        let i = self.points.partition_point(|&(p, _)| p < position);
        let i = if i == self.points.len() { 0 } else { i };
        self.points[i].1
    }

    /// Exact fraction of the key space each shard owns (arc lengths over
    /// the full `u64` ring — the infinite-key-population load). The
    /// balance proptests gate `max/min` of these shares.
    pub fn ownership_shares(&self) -> Vec<f64> {
        let mut share = vec![0u128; self.shards];
        for i in 0..self.points.len() {
            let prev = if i == 0 {
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            let arc = self.points[i].0.wrapping_sub(prev) as u128;
            share[self.points[i].1] += arc;
        }
        let total = (u64::MAX as u128) + 1;
        share.into_iter().map(|s| s as f64 / total as f64).collect()
    }
}

/// One re-homed dimension class in a resize plan: `entries` cached
/// pulses of width `n_qubits` move from shard `from` to shard `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// Width of the dimension class that moves.
    pub n_qubits: usize,
    /// Owning shard under the old ring.
    pub from: usize,
    /// Owning shard under the new ring.
    pub to: usize,
    /// Number of cached entries in the class (1 per key when planning
    /// from a key list; the store's entry count when planning from disk).
    pub entries: usize,
}

/// The deterministic migration plan for a ring resize: which dimension
/// classes change owner, sorted by width. Classes whose owner is stable
/// are omitted.
pub fn plan_resize(old: &ShardRing, new: &ShardRing, classes: &[usize]) -> Vec<ShardMove> {
    let mut counts: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
    for &n_qubits in classes {
        let key = ShardKey::dimension_class(n_qubits);
        let (from, to) = (old.route(key), new.route(key));
        if from != to {
            *counts.entry((n_qubits, from, to)).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .map(|((n_qubits, from, to), entries)| ShardMove {
            n_qubits,
            from,
            to,
            entries,
        })
        .collect()
}

/// What [`rebalance`] did: the executed plan plus which stores it
/// rewrote, left untouched, or retired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Shard count before the resize.
    pub from_shards: usize,
    /// Shard count after the resize.
    pub to_shards: usize,
    /// The executed migration plan (entry counts are store entries).
    pub moves: Vec<ShardMove>,
    /// Cached entries across all source stores.
    pub entries_total: usize,
    /// Entries that changed owner.
    pub entries_moved: usize,
    /// Shards whose store was rewritten (gained or lost entries).
    pub shards_rewritten: Vec<usize>,
    /// Shards whose store was left byte-untouched.
    pub shards_untouched: Vec<usize>,
    /// Shards removed by a shrink, their store directories moved
    /// wholesale to `shard-<i>.retired`.
    pub shards_retired: Vec<usize>,
}

/// One recovered shard store staged for rebalancing.
struct ShardState {
    journal: persist::Journal,
    entries: Vec<(UnitaryKey, CachedPulse)>,
    unitaries: BTreeMap<UnitaryKey, (Mat, usize)>,
}

impl ShardState {
    fn open(dir: &Path) -> Result<Self> {
        let (journal, recovered) = persist::open(&PersistOptions::new(dir))?;
        let mut entries: Vec<(UnitaryKey, CachedPulse)> = recovered.cache.into_entries().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let unitaries = recovered
            .unitaries
            .into_iter()
            .map(|(key, unitary, n_qubits)| (key, (unitary, n_qubits)))
            .collect();
        Ok(Self {
            journal,
            entries,
            unitaries,
        })
    }

    /// Snapshots `entries` (plus their indexed unitaries) as this
    /// shard's new durable state — the same atomic snapshot-pair write a
    /// checkpoint performs, so recovery semantics are identical.
    fn write(&self, entries: &[(UnitaryKey, CachedPulse)]) -> Result<()> {
        let mut cache = PulseCache::new();
        for (key, entry) in entries {
            cache.insert(key.clone(), entry.clone());
        }
        let mut unitaries: Vec<(UnitaryKey, Mat, usize)> = entries
            .iter()
            .filter_map(|(key, _)| {
                self.unitaries
                    .get(key)
                    .map(|(unitary, n_qubits)| (key.clone(), unitary.clone(), *n_qubits))
            })
            .collect();
        unitaries.sort_by(|a, b| a.0.cmp(&b.0));
        self.journal
            .snapshot(&cache, &unitaries)
            .map_err(Error::Store)
    }
}

/// Executes a ring resize `from_shards` → `to_shards` over the shard
/// stores under `base` (laid out as `base/shard-<i>`, the
/// [`accqoc_store::shard_dir`] convention).
///
/// Every source store is read through the recovery replay path (snapshot
/// plus WAL, torn tails truncated), entries are re-homed by the *new*
/// ring's routing, and changed stores are rewritten as atomic snapshot
/// pairs. Crash safety comes from ordering, not locks: destinations are
/// written (entries *added*) before any source is pruned, so an
/// interrupted run leaves every entry present in at least one store and
/// re-running the same resize converges. Stores that neither gain nor
/// lose entries are left byte-untouched; shards removed by a shrink are
/// retired by moving their directory wholesale to `shard-<i>.retired`
/// after their entries have been re-homed.
///
/// The shards must be **stopped**: the durable tier is single-writer per
/// directory.
///
/// # Errors
///
/// [`Error::InvalidConfig`] on a zero shard count,
/// [`Error::Store`]/[`Error::Json`] when a store fails to recover or
/// rewrite.
pub fn rebalance(base: &Path, from_shards: usize, to_shards: usize) -> Result<RebalanceReport> {
    rebalance_with_vnodes(base, from_shards, to_shards, DEFAULT_VNODES)
}

/// [`rebalance`] with an explicit virtual-node count, for deployments
/// running a non-default ring (every process must agree on it).
///
/// # Errors
///
/// See [`rebalance`].
pub fn rebalance_with_vnodes(
    base: &Path,
    from_shards: usize,
    to_shards: usize,
    vnodes: usize,
) -> Result<RebalanceReport> {
    if from_shards == 0 || to_shards == 0 {
        return Err(Error::InvalidConfig {
            message: "rebalance needs at least one source and one destination shard".into(),
        });
    }
    // Entries are routed by the *new* ring only: the plan is derived
    // from what each store actually holds, so an interrupted run (or a
    // store that never matched the old ring) still converges.
    let new_ring = ShardRing::with_vnodes(to_shards, vnodes);

    // Read every source store through the recovery replay path. Opening
    // a destination-only directory (a grow) cold-starts it empty.
    let total_dirs = from_shards.max(to_shards);
    let mut states: Vec<ShardState> = Vec::with_capacity(total_dirs);
    for shard in 0..total_dirs {
        states.push(ShardState::open(&shard_dir(base, shard))?);
    }

    // Route every entry by the new ring; collect the executed plan.
    let mut destination: Vec<Vec<usize>> = (0..total_dirs)
        .map(|shard| states[shard].entries.iter().map(|_| shard).collect())
        .collect();
    let mut moves: BTreeMap<(usize, usize, usize), usize> = BTreeMap::new();
    let mut entries_total = 0usize;
    let mut entries_moved = 0usize;
    for shard in 0..total_dirs {
        for (slot, (_, entry)) in states[shard].entries.iter().enumerate() {
            entries_total += 1;
            let owner = new_ring.route(ShardKey::dimension_class(entry.n_qubits));
            if owner != shard {
                destination[shard][slot] = owner;
                entries_moved += 1;
                *moves.entry((entry.n_qubits, shard, owner)).or_default() += 1;
            }
        }
    }

    // Final membership per shard: retained entries plus incoming ones,
    // in deterministic (source shard, key) order.
    let mut final_entries: Vec<Vec<(usize, usize)>> = vec![Vec::new(); total_dirs];
    for shard in 0..total_dirs {
        for slot in 0..states[shard].entries.len() {
            final_entries[destination[shard][slot]].push((shard, slot));
        }
    }

    let gained: Vec<bool> = (0..total_dirs)
        .map(|shard| {
            final_entries[shard]
                .iter()
                .any(|&(source, _)| source != shard)
        })
        .collect();
    let lost: Vec<bool> = (0..total_dirs)
        .map(|shard| destination[shard].iter().any(|&owner| owner != shard))
        .collect();

    // Pass 1 — additions: every shard that gains entries is rewritten
    // with its original membership *plus* the incoming entries. No
    // source has been pruned yet, so a crash here only duplicates.
    for shard in 0..total_dirs {
        if !gained[shard] {
            continue;
        }
        let mut with_incoming: Vec<(UnitaryKey, CachedPulse)> = states[shard].entries.clone();
        with_incoming.extend(
            final_entries[shard]
                .iter()
                .filter(|&&(source, _)| source != shard)
                .map(|&(source, slot)| states[source].entries[slot].clone()),
        );
        // Incoming unitaries ride along so the destination re-indexes.
        let incoming_unitaries: Vec<(UnitaryKey, (Mat, usize))> = final_entries[shard]
            .iter()
            .filter(|&&(source, _)| source != shard)
            .filter_map(|&(source, slot)| {
                let key = &states[source].entries[slot].0;
                states[source]
                    .unitaries
                    .get(key)
                    .map(|u| (key.clone(), u.clone()))
            })
            .collect();
        states[shard].unitaries.extend(incoming_unitaries);
        states[shard].write(&with_incoming)?;
    }

    // Pass 2 — prunes: every shard that lost entries is rewritten with
    // its final membership only.
    for shard in 0..total_dirs {
        if !lost[shard] {
            continue;
        }
        let membership: Vec<(UnitaryKey, CachedPulse)> = final_entries[shard]
            .iter()
            .map(|&(source, slot)| states[source].entries[slot].clone())
            .collect();
        states[shard].write(&membership)?;
    }

    let gained_or_lost: Vec<bool> = (0..total_dirs)
        .map(|shard| gained[shard] || lost[shard])
        .collect();
    // Close every WAL handle before moving directories wholesale.
    drop(states);

    // Retire shrunk-away stores wholesale (their entries now live on
    // surviving shards). A stale `.retired` from a previous run of the
    // same resize is replaced.
    let mut shards_retired = Vec::new();
    for shard in to_shards..from_shards {
        let live = shard_dir(base, shard);
        let retired = PathBuf::from(format!("{}.retired", live.display()));
        if retired.exists() {
            std::fs::remove_dir_all(&retired)?;
        }
        move_store_dir(&live, &retired).map_err(Error::Store)?;
        shards_retired.push(shard);
    }

    let mut shards_rewritten = Vec::new();
    let mut shards_untouched = Vec::new();
    for (shard, &rewritten) in gained_or_lost.iter().enumerate() {
        if shards_retired.contains(&shard) {
            continue;
        }
        if rewritten {
            shards_rewritten.push(shard);
        } else {
            shards_untouched.push(shard);
        }
    }

    Ok(RebalanceReport {
        from_shards,
        to_shards,
        moves: moves
            .into_iter()
            .map(|((n_qubits, from, to), entries)| ShardMove {
                n_qubits,
                from,
                to,
                entries,
            })
            .collect(),
        entries_total,
        entries_moved,
        shards_rewritten,
        shards_untouched,
        shards_retired,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_grape::Pulse;

    fn routes(shards: usize) -> Vec<usize> {
        let ring = ShardRing::new(shards);
        (1..=8)
            .map(|n| ring.route(ShardKey::dimension_class(n)))
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_pinned() {
        // Pinned goldens: any change to the hash, salt, or vnode layout
        // re-homes persisted shards and must be a deliberate migration.
        assert_eq!(routes(1), vec![0; 8]);
        assert_eq!(routes(2), vec![0, 0, 1, 1, 0, 1, 1, 0]);
        assert_eq!(routes(3), vec![0, 2, 1, 2, 0, 1, 2, 0]);
        assert_eq!(routes(4), vec![0, 2, 3, 3, 0, 1, 2, 0]);
        // Rebuilding the ring routes identically (restart determinism).
        assert_eq!(routes(3), routes(3));
    }

    #[test]
    fn fingerprint_key_is_the_dimension_class() {
        let fp = UnitaryFingerprint::of(&Mat::identity(4), 2);
        assert_eq!(ShardKey::of_fingerprint(&fp), ShardKey::dimension_class(2));
        assert_eq!(ShardKey::dimension_class(2).raw(), 2);
    }

    #[test]
    fn growing_the_ring_moves_keys_only_onto_the_new_shard() {
        for shards in 1..=7usize {
            let old = ShardRing::new(shards);
            let new = ShardRing::new(shards + 1);
            for class in 0..512usize {
                let key = ShardKey::dimension_class(class);
                let (before, after) = (old.route(key), new.route(key));
                assert!(
                    before == after || after == shards,
                    "class {class} moved {before}->{after} on {shards}->{} resize",
                    shards + 1
                );
            }
        }
    }

    #[test]
    fn ownership_shares_stay_balanced() {
        for shards in 2..=8usize {
            let shares = ShardRing::new(shards).ownership_shares();
            let sum: f64 = shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "shares sum to 1, got {sum}");
            let max = shares.iter().cloned().fold(0.0f64, f64::max);
            let min = shares.iter().cloned().fold(1.0f64, f64::min);
            assert!(
                max / min <= 1.3,
                "{shards} shards: max/min arc share {:.4} exceeds 1.3",
                max / min
            );
        }
    }

    #[test]
    fn plan_resize_reports_only_changed_classes_sorted() {
        let old = ShardRing::new(2);
        let new = ShardRing::new(3);
        let plan = plan_resize(&old, &new, &[1, 2, 2, 3, 4]);
        // From the pinned routes: class 2 moves 0->2, class 4 moves 1->2;
        // classes 1 and 3 keep their owner.
        assert_eq!(
            plan,
            vec![
                ShardMove {
                    n_qubits: 2,
                    from: 0,
                    to: 2,
                    entries: 2,
                },
                ShardMove {
                    n_qubits: 4,
                    from: 1,
                    to: 2,
                    entries: 1,
                },
            ]
        );
        assert!(plan_resize(&old, &old, &[1, 2, 3, 4]).is_empty());
    }

    fn entry(n_qubits: usize, latency_ns: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2 * n_qubits, 4, 1.0),
            latency_ns,
            iterations: 9,
            n_qubits,
        }
    }

    fn key(tag: u8) -> UnitaryKey {
        UnitaryKey::from_bytes(vec![tag; 4])
    }

    /// Seeds `base/shard-<i>` stores with `widths` routed by an
    /// N-shard ring, returning the seeded (key, entry) pairs.
    fn seed_stores(base: &Path, shards: usize, widths: &[usize]) -> Vec<(UnitaryKey, CachedPulse)> {
        let ring = ShardRing::new(shards);
        let mut caches: Vec<PulseCache> = (0..shards).map(|_| PulseCache::new()).collect();
        let mut seeded = Vec::new();
        for (tag, &width) in widths.iter().enumerate() {
            let owner = ring.route(ShardKey::dimension_class(width));
            let (k, e) = (key(tag as u8 + 1), entry(width, 10.0 + tag as f64));
            caches[owner].insert(k.clone(), e.clone());
            seeded.push((k, e));
        }
        for (shard, cache) in caches.iter().enumerate() {
            let (journal, _) = persist::open(&PersistOptions::new(shard_dir(base, shard)))
                .expect("open shard store");
            let indexed: Vec<(UnitaryKey, Mat, usize)> = {
                let mut sorted: Vec<_> = cache
                    .iter()
                    .map(|(k, e)| (k.clone(), Mat::identity(1 << e.n_qubits), e.n_qubits))
                    .collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                sorted
            };
            journal.snapshot(cache, &indexed).expect("seed snapshot");
        }
        seeded
    }

    fn recovered_entries(base: &Path, shard: usize) -> (PulseCache, usize) {
        let (_, recovered) = persist::open(&PersistOptions::new(shard_dir(base, shard)))
            .expect("reopen shard store");
        (recovered.cache, recovered.unitaries.len())
    }

    fn test_base(name: &str) -> PathBuf {
        let base = std::env::temp_dir().join(format!("accqoc_shard_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        base
    }

    #[test]
    fn rebalance_grow_re_homes_classes_and_preserves_bytes() {
        let base = test_base("grow");
        let seeded = seed_stores(&base, 2, &[1, 2, 2, 3, 4]);
        let report = rebalance(&base, 2, 3).expect("rebalance");
        assert_eq!((report.from_shards, report.to_shards), (2, 3));
        assert_eq!(report.entries_total, 5);
        // Classes 2 (two entries) and 4 move onto the new shard 2.
        assert_eq!(report.entries_moved, 3);
        assert!(
            report.moves.iter().all(|m| m.to == 2),
            "grow moves land only on the new shard: {:?}",
            report.moves
        );
        assert!(report.shards_retired.is_empty());

        // Every entry now lives exactly on its new-ring owner, byte-equal.
        let ring = ShardRing::new(3);
        let stores: Vec<(PulseCache, usize)> =
            (0..3).map(|s| recovered_entries(&base, s)).collect();
        for (k, e) in &seeded {
            let owner = ring.route(ShardKey::dimension_class(e.n_qubits));
            for (shard, (cache, _)) in stores.iter().enumerate() {
                if shard == owner {
                    assert_eq!(cache.lookup(k), Some(e), "entry intact on its owner");
                } else {
                    assert!(!cache.contains(k), "entry pruned from shard {shard}");
                }
            }
        }
        // Indexed unitaries traveled with their entries.
        let total_indexed: usize = stores.iter().map(|(_, n)| n).sum();
        assert_eq!(total_indexed, seeded.len());
        // Re-running the same resize converges to a no-op plan.
        let again = rebalance(&base, 2, 3).expect("idempotent re-run");
        assert_eq!(again.entries_moved, 0);
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn rebalance_leaves_stable_stores_byte_untouched() {
        let base = test_base("untouched");
        // Widths 1, 5, 8 are owned by shard 0 under both 3- and 4-shard
        // rings (pinned above), so nothing moves.
        seed_stores(&base, 3, &[1, 5, 8]);
        let before = accqoc_store::read_file(&shard_dir(&base, 0).join("snapshot.json"))
            .expect("seeded snapshot");
        let report = rebalance(&base, 3, 4).expect("rebalance");
        assert_eq!(report.entries_moved, 0);
        assert!(report.moves.is_empty());
        assert_eq!(report.shards_rewritten, Vec::<usize>::new());
        assert_eq!(report.shards_untouched, vec![0, 1, 2, 3]);
        let after = accqoc_store::read_file(&shard_dir(&base, 0).join("snapshot.json"))
            .expect("snapshot still present");
        assert_eq!(before, after, "stable store is byte-untouched");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn rebalance_shrink_retires_the_removed_shard_wholesale() {
        let base = test_base("shrink");
        let seeded = seed_stores(&base, 3, &[1, 2, 3, 4]);
        let report = rebalance(&base, 3, 2).expect("rebalance");
        assert_eq!(report.shards_retired, vec![2]);
        assert!(!shard_dir(&base, 2).exists(), "removed shard dir is gone");
        assert!(
            PathBuf::from(format!("{}.retired", shard_dir(&base, 2).display())).exists(),
            "retired store is preserved wholesale"
        );
        // All entries live on the surviving shards per the 2-shard ring.
        let ring = ShardRing::new(2);
        let stores: Vec<(PulseCache, usize)> =
            (0..2).map(|s| recovered_entries(&base, s)).collect();
        for (k, e) in &seeded {
            let owner = ring.route(ShardKey::dimension_class(e.n_qubits));
            assert_eq!(stores[owner].0.lookup(k), Some(e));
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn rebalance_rejects_zero_shard_counts() {
        let base = test_base("zero");
        assert!(matches!(
            rebalance(&base, 0, 2),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            rebalance(&base, 2, 0),
            Err(Error::InvalidConfig { .. })
        ));
        let _ = std::fs::remove_dir_all(&base);
    }
}
