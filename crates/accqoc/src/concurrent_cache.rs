//! A sharded, reader-writer pulse cache for concurrent compilation.
//!
//! The plain [`PulseCache`] is a single `HashMap`; putting it behind one
//! lock serializes every warm-start lookup the moment more than one
//! worker compiles. [`ConcurrentPulseCache`] splits the key space over
//! `N` independent [`RwLock`] shards (selected by the [`UnitaryKey`]
//! hash), so concurrent readers never contend and writers only contend
//! when they land on the same shard.
//!
//! Determinism: shard *placement* depends only on the key hash — never on
//! thread timing — and [`ConcurrentPulseCache::snapshot`] merges the
//! shards in sorted key order, so the persisted JSON artifact is
//! byte-identical for a given set of entries regardless of how many
//! threads produced them or in which order they were inserted.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

use accqoc_circuit::UnitaryKey;

use crate::cache::{CachedPulse, PulseCache};

/// Default shard count: comfortably above the worker counts this
/// workload sees (a laptop has ≤ 32 threads; 64 shards keep the expected
/// collision rate per insert under 2%).
pub const DEFAULT_CACHE_SHARDS: usize = 64;

/// Sharded key-value store from canonical group identity to compiled
/// pulse, safe to read and write from many threads through `&self`.
///
/// # Examples
///
/// ```
/// use accqoc::{CachedPulse, ConcurrentPulseCache};
/// use accqoc_circuit::UnitaryKey;
/// use accqoc_grape::Pulse;
/// use accqoc_linalg::Mat;
///
/// let cache = ConcurrentPulseCache::new();
/// let key = UnitaryKey::canonical(&Mat::identity(2), 1);
/// cache.insert(key.clone(), CachedPulse {
///     pulse: Pulse::zeros(2, 0, 1.0),
///     latency_ns: 0.0,
///     iterations: 0,
///     n_qubits: 1,
/// });
/// assert!(cache.contains(&key));
/// assert_eq!(cache.snapshot().len(), 1);
/// ```
#[derive(Debug)]
pub struct ConcurrentPulseCache {
    shards: Vec<RwLock<HashMap<UnitaryKey, CachedPulse>>>,
}

impl ConcurrentPulseCache {
    /// Creates an empty cache with [`DEFAULT_CACHE_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_CACHE_SHARDS)
    }

    /// Creates an empty cache with `n_shards` shards (clamped to ≥ 1).
    pub fn with_shards(n_shards: usize) -> Self {
        let n = n_shards.max(1);
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Builds a sharded cache from a plain [`PulseCache`].
    pub fn from_cache(cache: PulseCache) -> Self {
        let out = Self::new();
        for (key, value) in cache.into_entries() {
            out.insert(key, value);
        }
        out
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Entry count per shard (a point-in-time figure under concurrent
    /// writers). Placement depends only on the key hash, so this is a
    /// contention diagnostic: one hot shard means hash clustering, not
    /// thread timing.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| Self::read(s).len()).collect()
    }

    fn shard_index(key: &UnitaryKey, n_shards: usize) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % n_shards
    }

    fn shard(&self, key: &UnitaryKey) -> &RwLock<HashMap<UnitaryKey, CachedPulse>> {
        &self.shards[Self::shard_index(key, self.shards.len())]
    }

    fn read(
        lock: &RwLock<HashMap<UnitaryKey, CachedPulse>>,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<UnitaryKey, CachedPulse>> {
        lock.read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(
        lock: &RwLock<HashMap<UnitaryKey, CachedPulse>>,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<UnitaryKey, CachedPulse>> {
        lock.write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of cached unique groups (sums the shards; a point-in-time
    /// figure under concurrent writers).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::read(s).len()).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| Self::read(s).is_empty())
    }

    /// `true` when the group is covered (one shard read lock).
    pub fn contains(&self, key: &UnitaryKey) -> bool {
        Self::read(self.shard(key)).contains_key(key)
    }

    /// A copy of one entry, if covered (one shard read lock).
    pub fn get(&self, key: &UnitaryKey) -> Option<CachedPulse> {
        Self::read(self.shard(key)).get(key).cloned()
    }

    /// Inserts or replaces an entry; returns the previous value if any
    /// (one shard write lock).
    pub fn insert(&self, key: UnitaryKey, value: CachedPulse) -> Option<CachedPulse> {
        Self::write(self.shard(&key)).insert(key, value)
    }

    /// Removes one entry, returning it if it was present (one shard
    /// write lock).
    pub fn remove(&self, key: &UnitaryKey) -> Option<CachedPulse> {
        Self::write(self.shard(key)).remove(key)
    }

    /// Merges a plain cache into this one (incoming entries win).
    pub fn merge(&self, other: PulseCache) {
        for (key, value) in other.into_entries() {
            self.insert(key, value);
        }
    }

    /// Removes every entry, atomically with respect to concurrent
    /// readers (all shard write locks are held for the duration).
    pub fn clear(&self) {
        let mut guards: Vec<_> = self.shards.iter().map(Self::write).collect();
        for guard in guards.iter_mut() {
            guard.clear();
        }
    }

    /// Replaces the entire contents with `cache` in one atomic step: all
    /// shard write locks are acquired (in shard order — the same order
    /// every multi-shard operation uses, so no deadlock) before anything
    /// is cleared, so no concurrent reader can observe the intermediate
    /// empty or partially filled state.
    pub fn replace(&self, cache: PulseCache) {
        let mut guards: Vec<_> = self.shards.iter().map(Self::write).collect();
        for guard in guards.iter_mut() {
            guard.clear();
        }
        for (key, value) in cache.into_entries() {
            let shard = Self::shard_index(&key, self.shards.len());
            guards[shard].insert(key, value);
        }
    }

    /// A plain [`PulseCache`] copy of the current contents, merged from
    /// the shards **in sorted key order** so downstream serialization is
    /// byte-deterministic regardless of shard layout, thread count, or
    /// insertion order. All shard read locks are held together, so the
    /// snapshot is a consistent point-in-time view even while writers
    /// run.
    pub fn snapshot(&self) -> PulseCache {
        let guards: Vec<_> = self.shards.iter().map(Self::read).collect();
        let mut entries: Vec<(UnitaryKey, CachedPulse)> = Vec::new();
        for guard in &guards {
            entries.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = PulseCache::new();
        for (key, value) in entries {
            out.insert(key, value);
        }
        out
    }
}

impl Default for ConcurrentPulseCache {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ConcurrentPulseCache {
    fn clone(&self) -> Self {
        let out = Self::with_shards(self.n_shards());
        for (shard, other) in out.shards.iter().zip(&self.shards) {
            let mut guard = Self::write(shard);
            *guard = Self::read(other).clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};
    use accqoc_grape::Pulse;

    fn key_of(gates: &[Gate], n: usize) -> UnitaryKey {
        UnitaryKey::canonical(
            &circuit_unitary(&Circuit::from_gates(n, gates.iter().copied())),
            n,
        )
    }

    fn entry(latency: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2, latency as usize, 1.0),
            latency_ns: latency,
            iterations: 3,
            n_qubits: 1,
        }
    }

    #[test]
    fn insert_get_contains_len() {
        let cache = ConcurrentPulseCache::with_shards(4);
        let k = key_of(&[Gate::H(0)], 1);
        assert!(cache.is_empty());
        assert!(cache.get(&k).is_none());
        assert!(cache.insert(k.clone(), entry(7.0)).is_none());
        assert!(cache.contains(&k));
        assert_eq!(cache.get(&k).unwrap().latency_ns, 7.0);
        assert_eq!(cache.len(), 1);
        // Replacement returns the old value.
        let old = cache.insert(k.clone(), entry(5.0)).unwrap();
        assert_eq!(old.latency_ns, 7.0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_json_stable_across_shard_counts() {
        let keys: Vec<UnitaryKey> = [
            key_of(&[Gate::H(0)], 1),
            key_of(&[Gate::T(0)], 1),
            key_of(&[Gate::X(0)], 1),
            key_of(&[Gate::S(0)], 1),
        ]
        .to_vec();
        let build = |shards: usize, order: &[usize]| {
            let cache = ConcurrentPulseCache::with_shards(shards);
            for &i in order {
                cache.insert(keys[i].clone(), entry(i as f64));
            }
            cache.snapshot().to_json()
        };
        // Same entries, different shard counts and insertion orders ⇒
        // identical bytes.
        let a = build(1, &[0, 1, 2, 3]);
        let b = build(16, &[3, 1, 0, 2]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_cache_snapshot_is_empty_and_stable() {
        let cache = ConcurrentPulseCache::new();
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 0);
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.shard_lens().iter().sum::<usize>(), 0);
        // The empty artifact is byte-stable (and survives replace(empty)).
        let json = snap.to_json();
        assert_eq!(json, PulseCache::new().to_json());
        cache.replace(PulseCache::new());
        assert_eq!(cache.snapshot().to_json(), json);
        // clear() of an empty cache is a no-op, not a panic.
        cache.clear();
        assert!(cache.is_empty());
    }

    /// Distinct single-qubit keys (rotations at distinct angles).
    fn distinct_keys(n: usize) -> Vec<UnitaryKey> {
        (0..n)
            .map(|k| key_of(&[Gate::Rz(0, 0.05 + 0.11 * k as f64)], 1))
            .collect()
    }

    #[test]
    fn replace_is_atomic_under_racing_readers() {
        // Two full states, A (8 entries @ latency 1.0) and B (5 entries
        // @ latency 2.0). Readers hammering snapshot()/len() while the
        // writer flips between them must only ever observe one of the
        // two complete states — never the cleared or partially refilled
        // intermediate.
        let keys = distinct_keys(8);
        let build = |n: usize, latency: f64| {
            let mut cache = PulseCache::new();
            for key in &keys[..n] {
                cache.insert(key.clone(), entry(latency));
            }
            cache
        };
        let state_a = build(8, 1.0);
        let state_b = build(5, 2.0);
        let (json_a, json_b) = (state_a.to_json(), state_b.to_json());

        let shared = ConcurrentPulseCache::with_shards(4);
        shared.replace(state_a.clone());
        std::thread::scope(|scope| {
            let shared = &shared;
            let (json_a, json_b) = (&json_a, &json_b);
            let mut handles = Vec::new();
            for _ in 0..3 {
                handles.push(scope.spawn(move || {
                    for _ in 0..60 {
                        let snap = shared.snapshot();
                        assert!(
                            snap.len() == 8 || snap.len() == 5,
                            "torn snapshot: {} entries",
                            snap.len()
                        );
                        let json = snap.to_json();
                        assert!(
                            json == *json_a || json == *json_b,
                            "snapshot matches neither full state"
                        );
                    }
                }));
            }
            for i in 0..40 {
                shared.replace(if i % 2 == 0 {
                    state_b.clone()
                } else {
                    state_a.clone()
                });
            }
            for h in handles {
                h.join().expect("reader saw only complete states");
            }
        });
    }

    #[test]
    fn shard_distribution_is_sane() {
        let cache = ConcurrentPulseCache::with_shards(8);
        let keys = distinct_keys(64);
        assert_eq!(
            keys.iter().collect::<std::collections::HashSet<_>>().len(),
            64
        );
        for (i, key) in keys.iter().enumerate() {
            cache.insert(key.clone(), entry(i as f64));
        }
        let lens = cache.shard_lens();
        assert_eq!(lens.len(), 8);
        assert_eq!(lens.iter().sum::<usize>(), 64);
        // Hash placement should spread the keys: no shard hoards more
        // than half the entries, and several shards are populated.
        // (Loose bounds on purpose — the std hasher is deterministic
        // within a release but not specified across releases.)
        assert!(
            *lens.iter().max().unwrap() <= 32,
            "one shard hoards the keys: {lens:?}"
        );
        assert!(
            lens.iter().filter(|&&l| l > 0).count() >= 3,
            "keys clustered on too few shards: {lens:?}"
        );
        // Placement is stable: the same key always lands on the same
        // shard, so re-inserting changes no shard sizes.
        for key in &keys {
            cache.insert(key.clone(), entry(0.0));
        }
        assert_eq!(cache.shard_lens(), lens);
    }

    #[test]
    fn from_cache_round_trips() {
        let mut plain = PulseCache::new();
        plain.insert(key_of(&[Gate::H(0)], 1), entry(2.0));
        plain.insert(key_of(&[Gate::X(0)], 1), entry(3.0));
        let shared = ConcurrentPulseCache::from_cache(plain.clone());
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.snapshot().to_json(), {
            // to_json sorts, so the plain cache serializes identically.
            plain.to_json()
        });
        let cloned = shared.clone();
        shared.clear();
        assert!(shared.is_empty());
        assert_eq!(cloned.len(), 2, "clone is independent");
    }
}
