//! Similarity functions between gate groups (paper §V-B).
//!
//! "Since the quantum control evolves from the initial matrix to the
//! target matrix […] similar matrices could share similar pulses."
//! The paper evaluates five functions:
//!
//! - `d₁(A,B) = Σ|aᵢⱼ − bᵢⱼ|` — entry-wise L1;
//! - `d₂(A,B) = √(Σ|aᵢⱼ − bᵢⱼ|²)` — Frobenius;
//! - `d₃(A,B) = Tr(A*B)` — trace overlap, used here as the distance
//!   `1 − |Tr(A†B)|/d`;
//! - `d₄(A,B) = F(A,B)` — Uhlmann fidelity ("fidelity2"), evaluated on the
//!   density embedding
//!   `ρ_U = U·ρ₀·U†` of each unitary with a fixed full-rank probe `ρ₀`
//!   (the paper applies the Uhlmann formula directly to unitaries, which
//!   is ill-defined; the probe embedding preserves the intent — matrix
//!   square roots and all — on well-defined PSD inputs);
//! - the fifth function is "the inverse of the fourth" — an
//!   anti-similarity control that the paper shows *increases* iteration
//!   counts.

use std::collections::HashMap;

use accqoc_linalg::{sqrtm_psd, Mat};

/// Reusable scratch for repeated distance evaluations.
///
/// [`SimilarityGraph::build`](crate::SimilarityGraph::build) evaluates
/// O(n²) pairwise distances; the Uhlmann metric in particular used to
/// rebuild the per-dimension probe state `ρ₀` — a Haar-sampled scrambler
/// plus two matrix products — *twice per pair*, and allocated every
/// intermediate product. Threading one scratch through the loop caches
/// the probe per dimension and reuses the product buffers, so the hot
/// path allocates only inside the (unavoidable) spectral square roots.
///
/// The cached values and buffer reuse are bit-transparent: every metric
/// returns exactly the floats the allocation-heavy path returned, so
/// MST orders — and the pulse-cache artifacts derived from them — are
/// unchanged.
#[derive(Debug)]
pub struct SimilarityScratch {
    /// Per-dimension probe state `ρ₀` (deterministic; see
    /// [`uhlmann_fidelity`]).
    probes: HashMap<usize, Mat>,
    dag: Mat,
    tmp: Mat,
    rho_a: Mat,
    rho_b: Mat,
}

impl Default for SimilarityScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SimilarityScratch {
    /// Creates an empty scratch (no buffers allocated until first use).
    pub fn new() -> Self {
        Self {
            probes: HashMap::new(),
            dag: Mat::zeros(0, 0),
            tmp: Mat::zeros(0, 0),
            rho_a: Mat::zeros(0, 0),
            rho_b: Mat::zeros(0, 0),
        }
    }

    fn probe(&mut self, n: usize) -> &Mat {
        self.probes.entry(n).or_insert_with(|| probe_state(n))
    }
}

/// The five similarity functions of paper Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimilarityFn {
    /// `d₁`: entry-wise L1 distance.
    L1,
    /// `d₂`: Frobenius distance.
    Frobenius,
    /// `d₃` "fidelity1": trace-overlap distance `1 − |Tr(A†B)|/d` — the
    /// best performer in the paper's Figures 8/13 and in our measurements
    /// (it is exactly the fidelity GRAPE optimizes).
    TraceOverlap,
    /// `d₄` "fidelity2": Uhlmann-fidelity distance on the probe-state
    /// density embedding.
    Uhlmann,
    /// The control: inverse of `d₄` (prefers *dissimilar* pairs).
    InverseUhlmann,
}

impl SimilarityFn {
    /// All five, in the paper's order.
    pub fn all() -> [SimilarityFn; 5] {
        [
            SimilarityFn::L1,
            SimilarityFn::Frobenius,
            SimilarityFn::TraceOverlap,
            SimilarityFn::Uhlmann,
            SimilarityFn::InverseUhlmann,
        ]
    }

    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            SimilarityFn::L1 => "l1",
            SimilarityFn::Frobenius => "l2",
            SimilarityFn::TraceOverlap => "fidelity1",
            SimilarityFn::Uhlmann => "fidelity2",
            SimilarityFn::InverseUhlmann => "inverse",
        }
    }

    /// Distance between two same-dimension unitaries: **small = similar**.
    /// Edges of the similarity graph carry this as their weight, so the
    /// MST prefers similar consecutive groups.
    ///
    /// Returns `f64::INFINITY` for dimension mismatches (a 1-qubit pulse
    /// cannot seed a 2-qubit one).
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::SimilarityFn;
    /// use accqoc_linalg::Mat;
    ///
    /// let id = Mat::identity(4);
    /// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
    /// assert_eq!(SimilarityFn::L1.distance(&id, &id), 0.0);
    /// assert!(SimilarityFn::L1.distance(&x, &Mat::identity(2)) > 0.0);
    /// assert!(SimilarityFn::L1.distance(&id, &Mat::identity(2)).is_infinite());
    /// ```
    pub fn distance(self, a: &Mat, b: &Mat) -> f64 {
        self.distance_with(a, b, &mut SimilarityScratch::new())
    }

    /// [`SimilarityFn::distance`] with a caller-owned
    /// [`SimilarityScratch`]: repeated evaluations (the O(n²) similarity
    /// graph build, the pulse library's candidate re-scoring) reuse the
    /// probe states and product buffers instead of reallocating them per
    /// pair. Returns bit-identical values to [`SimilarityFn::distance`].
    pub fn distance_with(self, a: &Mat, b: &Mat, scratch: &mut SimilarityScratch) -> f64 {
        if a.rows() != b.rows() || a.cols() != b.cols() {
            return f64::INFINITY;
        }
        match self {
            SimilarityFn::L1 => a.l1_distance(b),
            SimilarityFn::Frobenius => a.frobenius_distance(b),
            SimilarityFn::TraceOverlap => {
                let d = a.rows() as f64;
                (1.0 - a.hs_inner(b).abs() / d).max(0.0)
            }
            SimilarityFn::Uhlmann => 1.0 - uhlmann_fidelity_with(a, b, scratch),
            SimilarityFn::InverseUhlmann => uhlmann_fidelity_with(a, b, scratch),
        }
    }
}

/// Uhlmann fidelity `F(ρ_A, ρ_B) = (Tr√(√ρ_A·ρ_B·√ρ_A))²` on the probe
/// embedding `ρ_U = U·ρ₀·U†`.
///
/// `ρ₀` is the fixed full-rank diagonal state with weights `∝ 1/(i+1)` —
/// full rank so that distinct unitaries embed to distinct densities.
pub fn uhlmann_fidelity(a: &Mat, b: &Mat) -> f64 {
    uhlmann_fidelity_with(a, b, &mut SimilarityScratch::new())
}

/// [`uhlmann_fidelity`] reusing a [`SimilarityScratch`] across calls (the
/// per-dimension probe state and the product buffers are the expensive
/// per-pair temporaries). Bit-identical to [`uhlmann_fidelity`].
pub fn uhlmann_fidelity_with(a: &Mat, b: &Mat, scratch: &mut SimilarityScratch) -> f64 {
    probe_density_into(a, scratch, true);
    probe_density_into(b, scratch, false);
    let sqrt_a = match sqrtm_psd(&scratch.rho_a) {
        Ok(m) => m,
        Err(_) => return 0.0,
    };
    sqrt_a.matmul_into(&scratch.rho_b, &mut scratch.tmp);
    scratch.tmp.matmul_into(&sqrt_a, &mut scratch.rho_a);
    match sqrtm_psd(&scratch.rho_a) {
        Ok(root) => {
            let tr = root.trace().re;
            (tr * tr).clamp(0.0, 1.0)
        }
        Err(_) => 0.0,
    }
}

/// `U·ρ₀·U†` with the canonical probe state, written into
/// `scratch.rho_a` (`into_a`) or `scratch.rho_b`.
///
/// The probe has distinct eigenvalues `∝ 1/(i+1)` in a *generic* (fixed,
/// seeded-random) eigenbasis. Genericity matters: with a computational-
/// basis probe every diagonal unitary would commute with `ρ₀` and the
/// metric would be blind to relative phases — exactly the structure most
/// gate groups carry (Rz/T/CX products). In a scrambled basis only
/// global phases survive, so `F(ρ_A, ρ_B) = 1 ⇔ A ≈ e^{iθ}B` for the
/// unitaries that occur in practice.
fn probe_density_into(u: &Mat, scratch: &mut SimilarityScratch, into_a: bool) {
    let n = u.rows();
    scratch.probe(n);
    let rho = &scratch.probes[&n];
    u.matmul_into(rho, &mut scratch.tmp);
    u.dagger_into(&mut scratch.dag);
    let out = if into_a {
        &mut scratch.rho_a
    } else {
        &mut scratch.rho_b
    };
    scratch.tmp.matmul_into(&scratch.dag, out);
}

/// The fixed probe `ρ₀ = S·D·S†` with `D = diag(1/(i+1))/Z` and `S` a
/// deterministic Haar scrambler.
fn probe_state(n: usize) -> Mat {
    use rand::SeedableRng;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let z: f64 = weights.iter().sum();
    let mut d = Mat::zeros(n, n);
    for (i, w) in weights.iter().enumerate() {
        d[(i, i)] = accqoc_linalg::C64::real(w / z);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xACC0_C0DE);
    let s = accqoc_linalg::random_unitary(n, &mut rng);
    s.matmul(&d).matmul(&s.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};
    use accqoc_linalg::C64;

    fn u_of(gates: &[Gate], n: usize) -> Mat {
        circuit_unitary(&Circuit::from_gates(n, gates.iter().copied()))
    }

    #[test]
    fn self_distance_is_zero_for_true_metrics() {
        let u = u_of(&[Gate::H(0), Gate::Cx(0, 1)], 2);
        for f in [
            SimilarityFn::L1,
            SimilarityFn::Frobenius,
            SimilarityFn::TraceOverlap,
            SimilarityFn::Uhlmann,
        ] {
            let d = f.distance(&u, &u);
            assert!(d.abs() < 1e-8, "{}: {d}", f.label());
        }
        // The inverse function is anti-similar: self-distance is maximal.
        assert!(SimilarityFn::InverseUhlmann.distance(&u, &u) > 0.99);
    }

    #[test]
    fn symmetry() {
        let a = u_of(&[Gate::H(0)], 1);
        let b = u_of(&[Gate::T(0)], 1);
        for f in SimilarityFn::all() {
            let ab = f.distance(&a, &b);
            let ba = f.distance(&b, &a);
            assert!((ab - ba).abs() < 1e-9, "{}", f.label());
        }
    }

    #[test]
    fn close_unitaries_are_closer_than_far_ones() {
        let base = u_of(&[Gate::Rz(0, 0.5)], 1);
        let near = u_of(&[Gate::Rz(0, 0.55)], 1);
        let far = u_of(&[Gate::X(0)], 1);
        for f in [
            SimilarityFn::L1,
            SimilarityFn::Frobenius,
            SimilarityFn::TraceOverlap,
            SimilarityFn::Uhlmann,
        ] {
            let dn = f.distance(&base, &near);
            let df = f.distance(&base, &far);
            assert!(dn < df, "{}: near {dn} vs far {df}", f.label());
        }
    }

    #[test]
    fn dimension_mismatch_is_infinite() {
        let one = Mat::identity(2);
        let two = Mat::identity(4);
        for f in SimilarityFn::all() {
            assert!(f.distance(&one, &two).is_infinite(), "{}", f.label());
        }
    }

    #[test]
    fn trace_overlap_is_phase_invariant() {
        let u = u_of(&[Gate::H(0), Gate::T(0)], 1);
        let phased = u.scale(C64::cis(1.3));
        assert!(SimilarityFn::TraceOverlap.distance(&u, &phased) < 1e-12);
        // L1 is *not* phase invariant — that is exactly why the paper found
        // the fidelity-style functions superior.
        assert!(SimilarityFn::L1.distance(&u, &phased) > 0.1);
    }

    #[test]
    fn uhlmann_fidelity_bounds() {
        let a = u_of(&[Gate::H(0), Gate::Cx(0, 1)], 2);
        let b = u_of(&[Gate::Cx(0, 1), Gate::T(1)], 2);
        let f = uhlmann_fidelity(&a, &b);
        assert!((0.0..=1.0).contains(&f), "{f}");
        assert!((uhlmann_fidelity(&a, &a) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn uhlmann_distinguishes_diagonal_phase_families() {
        // Regression: with a computational-basis probe, all of these are
        // indistinguishable (distance 0) because they are diagonal-ish.
        let a = u_of(&[Gate::Rz(0, 0.15), Gate::Cx(0, 1), Gate::Rz(1, 0.2)], 2);
        let b = u_of(&[Gate::Rz(0, 0.90), Gate::Cx(0, 1), Gate::Rz(1, 0.95)], 2);
        let near = u_of(&[Gate::Rz(0, 0.17), Gate::Cx(0, 1), Gate::Rz(1, 0.22)], 2);
        let d_far = SimilarityFn::Uhlmann.distance(&a, &b);
        let d_near = SimilarityFn::Uhlmann.distance(&a, &near);
        assert!(d_far > 5.0 * d_near, "far {d_far} vs near {d_near}");
        assert!(d_far > 1e-3, "metric still blind: {d_far}");
        // CX is far from identity under the scrambled probe.
        let cx = u_of(&[Gate::Cx(0, 1)], 2);
        assert!(SimilarityFn::Uhlmann.distance(&cx, &Mat::identity(4)) > 0.05);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // One scratch threaded through many pairs must return exactly the
        // floats of the allocation-per-call path — this is what keeps the
        // MST orders (and the pulse-cache artifacts) byte-stable.
        let us: Vec<Mat> = (1..=4)
            .map(|k| u_of(&[Gate::Rz(0, 0.2 * k as f64), Gate::Cx(0, 1)], 2))
            .collect();
        let mut scratch = SimilarityScratch::new();
        for f in SimilarityFn::all() {
            for a in &us {
                for b in &us {
                    let fresh = f.distance(a, b);
                    let reused = f.distance_with(a, b, &mut scratch);
                    assert!(
                        fresh == reused || (fresh.is_nan() && reused.is_nan()),
                        "{}: {fresh} != {reused}",
                        f.label()
                    );
                }
            }
        }
        // Mixed dimensions through the same scratch stay correct.
        let one = u_of(&[Gate::H(0)], 1);
        assert!(SimilarityFn::Uhlmann
            .distance_with(&one, &us[0], &mut scratch)
            .is_infinite());
        let d = SimilarityFn::Uhlmann.distance_with(&one, &one, &mut scratch);
        assert!(d.abs() < 1e-8);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = SimilarityFn::all().iter().map(|f| f.label()).collect();
        assert_eq!(
            labels,
            vec!["l1", "l2", "fidelity1", "fidelity2", "inverse"]
        );
    }
}
