//! Static pre-compilation (paper §IV).
//!
//! Profile a random third of the benchmark suite, collect the group
//! category under the chosen policy, compile every unique group once
//! (MST-accelerated), and store the pulses + latencies for future
//! programs. Optionally re-optimize the most frequent group on a finer
//! time grid (§IV-G) to squeeze its latency further.
//!
//! The free functions here are the implementations behind
//! [`Session::precompile`], [`Session::precompile_parallel`], and
//! [`Session::optimize_group`]; call them through the session.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use accqoc_circuit::{Circuit, UnitaryKey};
use accqoc_grape::{find_minimal_latency, LatencySearch};
use accqoc_hw::ControlModel;
use accqoc_linalg::Mat;

use crate::cache::CachedPulse;
use crate::compile::warm_start_allowed;
use crate::error::{Error, Result};
use crate::library::batch_plan;
use crate::mst::scratch_order;
use crate::parallel::{ParallelOptions, ParallelStats};
use crate::session::{GroupReport, LookupReport, ProgramCompilation, Session};

/// Report of a pre-compilation run.
#[derive(Debug, Clone)]
pub struct PrecompileReport {
    /// Programs profiled.
    pub n_programs: usize,
    /// Unique groups found (the paper's map2b4l category has 133).
    pub n_unique_groups: usize,
    /// Total GRAPE iterations spent (one-time cost).
    pub total_iterations: usize,
    /// Instance frequency per unique group key.
    pub frequencies: HashMap<UnitaryKey, usize>,
    /// The most frequent group, if any.
    pub most_frequent: Option<UnitaryKey>,
}

/// Whether pre-compilation orders groups by MST (accelerated) or compiles
/// each from scratch (the baseline the paper compares against in
/// Figures 8/13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecompileOrder {
    /// Similarity-MST warm-started order (§V-C).
    Mst,
    /// Independent from-scratch compilation of every group.
    Scratch,
}

/// Runs static pre-compilation over the given programs, filling the
/// session cache.
///
/// # Errors
///
/// Propagates group-compilation failures.
///
/// # Examples
///
/// ```no_run
/// use accqoc::{PrecompileOrder, Session};
/// use accqoc_hw::Topology;
/// use accqoc_workloads::{full_suite, profiling_split};
///
/// let session = Session::builder().topology(Topology::melbourne()).build()?;
/// let suite = full_suite();
/// let (profile, _) = profiling_split(&suite, 42);
/// let programs: Vec<_> = profile.iter().map(|&i| suite[i].circuit.clone()).collect();
/// let report = session.precompile(&programs, PrecompileOrder::Mst)?;
/// assert_eq!(report.n_unique_groups, session.cache_len());
/// # Ok::<(), accqoc::Error>(())
/// ```
pub fn precompile(
    session: &Session,
    programs: &[Circuit],
    order_kind: PrecompileOrder,
) -> Result<PrecompileReport> {
    precompile_subset(session, programs, order_kind, None)
}

/// [`precompile`] restricted to the unique groups whose width is in
/// `only_qubits` — what one shard of a sharded deployment precompiles.
/// The report counts owned groups only, so per-shard reports over a
/// width partition sum to the whole-category numbers (group keys encode
/// their width, hence never collide across shards). `None` is
/// [`precompile`] exactly.
///
/// # Errors
///
/// Propagates group-compilation failures.
pub fn precompile_subset(
    session: &Session,
    programs: &[Circuit],
    order_kind: PrecompileOrder,
    only_qubits: Option<&[usize]>,
) -> Result<PrecompileReport> {
    let (canonical, keys, mut frequencies) = collect_category(session, programs);
    let owned = |n_qubits: usize| only_qubits.is_none_or(|widths| widths.contains(&n_qubits));

    // Only compile what this shard owns and the cache does not already
    // hold.
    let missing: Vec<usize> = (0..keys.len())
        .filter(|&i| owned(canonical[i].1) && !session.cache_contains(&keys[i]))
        .collect();

    let mut total_iterations = 0usize;
    if !missing.is_empty() {
        let (graph, mst_order) = batch_plan(
            missing.iter().map(|&i| canonical[i].0.clone()).collect(),
            session.config().similarity,
        );
        let order = match order_kind {
            PrecompileOrder::Mst => mst_order,
            PrecompileOrder::Scratch => scratch_order(graph.len(), &graph),
        };
        let mut pulses: HashMap<usize, accqoc_grape::Pulse> = HashMap::new();
        let mut fresh = crate::cache::PulseCache::new();
        let mut ws = session.lease_workspace();
        for step in &order.steps {
            let unique_idx = missing[step.vertex];
            let (target, n_qubits) = &canonical[unique_idx];
            let warm = step
                .parent
                .filter(|&p| {
                    warm_start_allowed(
                        &canonical[missing[p]].0,
                        target,
                        session.config().warm_threshold,
                    )
                })
                .and_then(|p| pulses.get(&p));
            let result = session.compile_unitary_with(target, *n_qubits, warm, &mut ws)?;
            total_iterations += result.total_iterations;
            pulses.insert(step.vertex, result.outcome.pulse.clone());
            fresh.insert(
                keys[unique_idx].clone(),
                CachedPulse {
                    pulse: result.outcome.pulse,
                    latency_ns: result.latency_ns,
                    iterations: result.total_iterations,
                    n_qubits: *n_qubits,
                },
            );
        }
        session.import_cache(fresh);
        index_category(session, &missing, &canonical, &keys);
    }

    // The report covers owned groups only, so shard reports sum.
    if only_qubits.is_some() {
        let owned_keys: std::collections::HashSet<&UnitaryKey> = (0..keys.len())
            .filter(|&i| owned(canonical[i].1))
            .map(|i| &keys[i])
            .collect();
        frequencies.retain(|k, _| owned_keys.contains(k));
    }
    let n_unique_groups = (0..keys.len()).filter(|&i| owned(canonical[i].1)).count();
    let most_frequent = frequencies
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(k, _)| k.clone());

    Ok(PrecompileReport {
        n_programs: programs.len(),
        n_unique_groups,
        total_iterations,
        frequencies,
        most_frequent,
    })
}

/// Parallel variant of [`precompile`]: compiles the missing groups on a
/// pool of `n_workers` threads over a balanced MST partition (§V-D).
/// Merges the results into the session cache and returns the report plus
/// the parallel stats (including real per-worker wall-clock timings).
///
/// The partition *plan* uses the fixed default width
/// ([`crate::DEFAULT_PLAN_PARTS`]) rather than `n_workers`, so the
/// compiled pulses — and the persisted cache artifact — are byte-identical
/// regardless of the thread count; see [`crate::compile_parallel_with`].
/// Two consequences worth knowing:
///
/// - relative to the fully sequential [`precompile`], the plan's cut MST
///   edges degrade a handful of warm starts to scratch starts, so the
///   artifact differs from the sequential one by exactly those groups
///   (pin `plan_parts = 1` via [`precompile_parallel_with`] to recover
///   the sequential artifact bit-for-bit);
/// - pools larger than the plan width idle — raise `plan_parts` via
///   [`precompile_parallel_with`] on machines with more than
///   [`crate::DEFAULT_PLAN_PARTS`] cores.
///
/// # Errors
///
/// Propagates group-compilation failures.
pub fn precompile_parallel(
    session: &Session,
    programs: &[Circuit],
    n_workers: usize,
) -> Result<(PrecompileReport, ParallelStats)> {
    precompile_parallel_with(session, programs, &ParallelOptions::threads(n_workers))
}

/// [`precompile_parallel`] with full control over the pool size and the
/// partition plan width ([`ParallelOptions`]). `plan_parts = Some(1)`
/// reproduces the sequential [`precompile`] artifact bit-for-bit (one
/// part ⇒ no cut edges ⇒ the exact MST warm-start chain).
///
/// # Errors
///
/// Propagates group-compilation failures.
pub fn precompile_parallel_with(
    session: &Session,
    programs: &[Circuit],
    options: &ParallelOptions,
) -> Result<(PrecompileReport, ParallelStats)> {
    let (canonical, keys, frequencies) = collect_category(session, programs);
    let missing: Vec<usize> = (0..keys.len())
        .filter(|&i| !session.cache_contains(&keys[i]))
        .collect();

    let (_, order) = batch_plan(
        missing.iter().map(|&i| canonical[i].0.clone()).collect(),
        session.config().similarity,
    );
    let missing_unitaries: Vec<(Mat, usize)> =
        missing.iter().map(|&i| canonical[i].clone()).collect();
    let missing_keys: Vec<UnitaryKey> = missing.iter().map(|&i| keys[i].clone()).collect();
    let (fresh, stats) = crate::parallel::compile_parallel_with(
        session,
        &order,
        &missing_unitaries,
        &missing_keys,
        options,
    )?;
    session.import_cache(fresh);
    index_category(session, &missing, &canonical, &keys);

    let most_frequent = frequencies
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(k, _)| k.clone());
    Ok((
        PrecompileReport {
            n_programs: programs.len(),
            n_unique_groups: keys.len(),
            total_iterations: stats.total_iterations,
            frequencies,
            most_frequent,
        },
        stats,
    ))
}

/// Batch-compiles many programs on a worker pool: the front ends run
/// concurrently against the shared session, the union of uncovered
/// groups is compiled once on the parallel MST engine, and each program
/// is then folded into a [`ProgramCompilation`] from the warm cache.
///
/// Report semantics differ from looping [`Session::compile_program`] in
/// two documented ways: coverage is measured against the session cache
/// *before* the batch (every program sees the same baseline — the
/// paper's §V-A suite coverage), and a group shared by several programs
/// bills its GRAPE iterations to the program that introduced it first.
///
/// # Errors
///
/// [`Error::InvalidConfig`] when `threads == 0`; otherwise propagates
/// the first group-compilation failure.
pub fn compile_programs_parallel(
    session: &Session,
    programs: &[Circuit],
    threads: usize,
) -> Result<(Vec<ProgramCompilation>, ParallelStats)> {
    if threads == 0 {
        return Err(Error::InvalidConfig {
            message: "need at least one worker thread".into(),
        });
    }

    // Front ends + cache lookups, fanned out over the pool. Lookups all
    // read the pre-batch cache (nothing writes until the compile phase),
    // so every program reports coverage against the same baseline.
    let n = programs.len();
    let slots: Vec<Mutex<Option<(GroupReport, LookupReport)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            let next = &next;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let grouped = session.front_end(&programs[i]);
                let lookup = session.lookup(&grouped);
                *slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((grouped, lookup));
            });
        }
    });
    let reports: Vec<(GroupReport, LookupReport)> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("front-end worker filled every slot")
        })
        .collect();

    // Union of uncovered unique groups, first-seen order; remember which
    // program introduced each for iteration attribution.
    let mut union_unitaries: Vec<(Mat, usize)> = Vec::new();
    let mut union_keys: Vec<UnitaryKey> = Vec::new();
    let mut introduced_by: Vec<usize> = Vec::new();
    let mut seen: HashMap<UnitaryKey, usize> = HashMap::new();
    for (program_idx, (_, lookup)) in reports.iter().enumerate() {
        for target in &lookup.uncovered {
            if seen.contains_key(&target.key) {
                continue;
            }
            seen.insert(target.key.clone(), union_keys.len());
            union_unitaries.push((target.unitary.clone(), target.n_qubits));
            union_keys.push(target.key.clone());
            introduced_by.push(program_idx);
        }
    }

    // One MST over the union, compiled once on the pool.
    let (_, order) = batch_plan(
        union_unitaries.iter().map(|(u, _)| u.clone()).collect(),
        session.config().similarity,
    );
    let (fresh, stats) = crate::parallel::compile_parallel_with(
        session,
        &order,
        &union_unitaries,
        &union_keys,
        &ParallelOptions::threads(threads),
    )?;
    session.import_cache(fresh);
    for ((unitary, n_qubits), key) in union_unitaries.iter().zip(&union_keys) {
        session.library().index_unitary(key, unitary, *n_qubits);
    }

    // Iterations billed to the introducing program.
    let mut billed = vec![0usize; n];
    for (key, &program_idx) in union_keys.iter().zip(&introduced_by) {
        if let Some(entry) = session.cached(key) {
            billed[program_idx] += entry.iterations;
        }
    }

    // Fold each program's reports into the final compilation (the cache
    // now covers everything, so the latency stage cannot fail on these
    // groups).
    let mut out = Vec::with_capacity(n);
    for (program_idx, (grouped, lookup)) in reports.into_iter().enumerate() {
        let latency = session.latency(&grouped)?;
        out.push(ProgramCompilation {
            overall_latency_ns: latency.overall_latency_ns,
            gate_based_latency_ns: latency.gate_based_latency_ns,
            coverage: lookup.coverage,
            dynamic_iterations: billed[program_idx],
            n_uncovered_unique: lookup.uncovered.len(),
            grouped: grouped.grouped,
            crosstalk: grouped.crosstalk,
            swap_count: grouped.swap_count,
        });
    }
    Ok((out, stats))
}

/// Fingerprint-indexes freshly compiled category entries in the session
/// library (batch imports arrive as plain caches, which carry no
/// unitaries, so the drivers index them here while the canonical
/// unitaries are still at hand — this is what makes batch-precompiled
/// pulses retrievable as warm-start neighbors on the serving path).
fn index_category(
    session: &Session,
    missing: &[usize],
    canonical: &[(Mat, usize)],
    keys: &[UnitaryKey],
) {
    for &i in missing {
        let (unitary, n_qubits) = &canonical[i];
        session
            .library()
            .index_unitary(&keys[i], unitary, *n_qubits);
    }
}

/// A collected group category: canonical `(unitary, n_qubits)` pairs,
/// their keys (aligned), and instance frequencies per key.
pub type Category = (
    Vec<(Mat, usize)>,
    Vec<UnitaryKey>,
    HashMap<UnitaryKey, usize>,
);

/// Gathers the de-duplicated group category of a program set: canonical
/// unitaries, keys, and instance frequencies.
pub fn collect_category(session: &Session, programs: &[Circuit]) -> Category {
    let mut canonical: Vec<(Mat, usize)> = Vec::new();
    let mut keys: Vec<UnitaryKey> = Vec::new();
    let mut index_of: HashMap<UnitaryKey, usize> = HashMap::new();
    let mut frequencies: HashMap<UnitaryKey, usize> = HashMap::new();

    for program in programs {
        let report = session.front_end(program);
        for target in &report.targets {
            if !index_of.contains_key(&target.key) {
                canonical.push((target.unitary.clone(), target.n_qubits));
                index_of.insert(target.key.clone(), keys.len());
                keys.push(target.key.clone());
            }
        }
        for &assigned in &report.assignment {
            *frequencies
                .entry(report.targets[assigned].key.clone())
                .or_insert(0) += 1;
        }
    }
    (canonical, keys, frequencies)
}

/// Re-optimizes one cached group on a finer time grid (half the slice
/// width, paper §IV-G: "we select the group of highest frequency and
/// spend more time training it… such that the latency of this particular
/// group could be further reduced"). Updates the session cache when the
/// finer grid finds a shorter pulse; returns the (old, new) latencies.
///
/// # Errors
///
/// [`Error::CompileFailed`] when the refined search cannot reach the
/// fidelity target at all (the cache keeps the original pulse).
pub fn optimize_group(
    session: &Session,
    key: &UnitaryKey,
    target: &Mat,
    n_qubits: usize,
) -> Result<(f64, f64)> {
    let entry = session.cached(key);
    let old = entry
        .as_ref()
        .map(|e| e.latency_ns)
        .unwrap_or(f64::INFINITY);
    let fine_dt = session.models().for_qubits(n_qubits)?.dt_ns() / 2.0;
    let fine_model = ControlModel::spin_chain(n_qubits).with_dt(fine_dt);
    let mut search = session.config().search.clone();
    search.max_steps *= 2;
    search.min_steps = (search.min_steps * 2).max(1);
    let mut opts = session.config().grape.clone();
    // Richer budget for the headline group.
    opts.stop.max_iters *= 2;
    if let Some(e) = entry.as_ref().filter(|e| e.pulse.n_steps() > 0) {
        // Resample the cached pulse onto the finer grid as the seed.
        let doubled = e.pulse.resampled(e.pulse.n_steps() * 2);
        opts.init = accqoc_grape::InitStrategy::Warm(doubled);
    }
    let result = find_minimal_latency(
        &fine_model,
        target,
        &opts,
        &LatencySearch {
            min_steps: search.min_steps,
            max_steps: search.max_steps,
            initial_guess: entry.as_ref().map(|e| 2 * e.pulse.n_steps()),
            ..LatencySearch::default()
        },
    )
    .map_err(|source| Error::CompileFailed { n_qubits, source })?;

    let new_latency = result.latency_ns;
    if new_latency < old {
        let mut update = crate::cache::PulseCache::new();
        update.insert(
            key.clone(),
            CachedPulse {
                pulse: result.outcome.pulse,
                latency_ns: new_latency,
                iterations: result.total_iterations,
                n_qubits,
            },
        );
        session.import_cache(update);
    }
    Ok((old, new_latency.min(old)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{mst_compile_order, SimilarityGraph};
    use accqoc_circuit::Gate;
    use accqoc_hw::Topology;

    fn session() -> Session {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .build()
            .unwrap()
    }

    fn programs() -> Vec<Circuit> {
        vec![
            Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]),
            Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]),
        ]
    }

    #[test]
    fn precompile_fills_cache_and_counts_frequencies() {
        let s = session();
        let report = s.precompile(&programs(), PrecompileOrder::Mst).unwrap();
        assert_eq!(report.n_programs, 2);
        assert!(report.n_unique_groups >= 1);
        assert_eq!(s.cache_len(), report.n_unique_groups);
        assert!(report.total_iterations > 0);
        let total_instances: usize = report.frequencies.values().sum();
        assert!(total_instances >= report.n_unique_groups);
        assert!(report.most_frequent.is_some());
    }

    #[test]
    fn precompile_skips_already_cached_groups() {
        let s = session();
        let first = s.precompile(&programs(), PrecompileOrder::Mst).unwrap();
        let second = s.precompile(&programs(), PrecompileOrder::Mst).unwrap();
        assert_eq!(second.total_iterations, 0, "everything already covered");
        assert_eq!(first.n_unique_groups, second.n_unique_groups);
    }

    fn roomy_session() -> Session {
        // A budget large enough that cold starts also reach the true
        // feasibility frontier; with a starved budget the iteration
        // comparison is apples-to-oranges (warm seeds converge at slice
        // counts cold starts cannot, buying shorter pulses instead).
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 400;
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .build()
            .unwrap()
    }

    #[test]
    fn mst_order_cheaper_than_scratch() {
        // A family of similar 2-qubit groups: cx dressed with nearby
        // rotations. Warm starts shine when consecutive unitaries are
        // close (the MST guarantees exactly that), so the angle spacing
        // is kept well inside the warm-start gate.
        let programs: Vec<Circuit> = (1..=6)
            .map(|k| {
                Circuit::from_gates(
                    3,
                    [
                        Gate::Rz(0, 0.06 * k as f64),
                        Gate::Cx(0, 1),
                        Gate::Rz(1, 0.06 * k as f64 + 0.02),
                    ],
                )
            })
            .collect();
        let session = roomy_session();
        let (canonical, _, _) = collect_category(&session, &programs);
        assert!(
            canonical.len() >= 4,
            "family should not collapse under dedup"
        );

        // Fix each group's slice count with one cold binary search, then
        // compare pure *training* cost at those fixed counts — the paper's
        // §VI-G methodology. (Comparing whole binary searches is
        // apples-to-oranges: warm seeds converge at slice counts cold
        // starts cannot, buying shorter pulses for extra iterations.)
        let steps: Vec<usize> = canonical
            .iter()
            .map(|(u, n)| session.compile_unitary(u, *n, None).unwrap().n_steps)
            .collect();
        let graph = SimilarityGraph::build(
            canonical.iter().map(|(u, _)| u.clone()).collect(),
            session.config().similarity,
        );
        let order = mst_compile_order(&graph);

        let training_cost = |warm_starts: bool| -> usize {
            use accqoc_grape::{solve, GrapeProblem, InitStrategy};
            let mut pulses: HashMap<usize, accqoc_grape::Pulse> = HashMap::new();
            let mut total = 0usize;
            for step in &order.steps {
                let (target, n_qubits) = &canonical[step.vertex];
                let mut opts = session.config().grape.clone();
                opts.stop.max_iters = 400;
                if warm_starts {
                    if let Some(p) = step.parent {
                        let gated = warm_start_allowed(
                            &canonical[p].0,
                            target,
                            session.config().warm_threshold,
                        );
                        if gated {
                            if let Some(parent_pulse) = pulses.get(&p) {
                                opts.init = InitStrategy::Warm(parent_pulse.clone());
                            }
                        }
                    }
                }
                let model = session.models().for_qubits(*n_qubits).unwrap();
                let out = solve(&GrapeProblem {
                    model,
                    target,
                    n_steps: steps[step.vertex],
                    options: opts,
                });
                total += out.iterations;
                if out.converged {
                    pulses.insert(step.vertex, out.pulse);
                }
            }
            total
        };

        let warm_cost = training_cost(true);
        let cold_cost = training_cost(false);
        assert!(
            warm_cost <= cold_cost,
            "MST warm-started training should not cost more: warm {warm_cost} vs cold {cold_cost}"
        );

        // The full precompile API: both orders cover the same category,
        // and MST latencies are never worse (warm seeds only *extend* the
        // feasibility frontier; ±1 slice of borderline noise allowed).
        let mst_session = roomy_session();
        let mst = mst_session
            .precompile(&programs, PrecompileOrder::Mst)
            .unwrap();
        let scratch_session = roomy_session();
        let scratch = scratch_session
            .precompile(&programs, PrecompileOrder::Scratch)
            .unwrap();
        assert_eq!(mst.n_unique_groups, scratch.n_unique_groups);
        let cache_mst = mst_session.cache_snapshot();
        let cache_scratch = scratch_session.cache_snapshot();
        for (key, entry) in cache_mst.iter() {
            let other = cache_scratch.lookup(key).expect("same category");
            assert!(
                entry.latency_ns <= other.latency_ns + 1.5,
                "mst latency should never be worse: {} vs {}",
                entry.latency_ns,
                other.latency_ns
            );
        }
    }

    #[test]
    fn optimize_group_never_worsens_latency() {
        let s = session();
        let progs = programs();
        let report = s.precompile(&progs, PrecompileOrder::Mst).unwrap();
        let key = report.most_frequent.unwrap();
        // Find the canonical unitary of that key.
        let (canonical, keys, _) = collect_category(&s, &progs);
        let idx = keys.iter().position(|k| *k == key).unwrap();
        let before = s.cache_snapshot().lookup(&key).unwrap().latency_ns;
        let (old, new) = s
            .optimize_group(&key, &canonical[idx].0, canonical[idx].1)
            .unwrap();
        assert!((old - before).abs() < 1e-9);
        assert!(
            new <= old + 1e-9,
            "optimization worsened latency: {old} → {new}"
        );
        assert!(s.cache_snapshot().lookup(&key).unwrap().latency_ns <= before + 1e-9);
    }
}
