//! Static pre-compilation (paper §IV).
//!
//! Profile a random third of the benchmark suite, collect the group
//! category under the chosen policy, compile every unique group once
//! (MST-accelerated), and store the pulses + latencies for future
//! programs. Optionally re-optimize the most frequent group on a finer
//! time grid (§IV-G) to squeeze its latency further.

use std::collections::HashMap;

use accqoc_circuit::{Circuit, UnitaryKey};
use accqoc_grape::{find_minimal_latency, LatencySearch};
use accqoc_group::dedup_groups;
use accqoc_hw::ControlModel;
use accqoc_linalg::Mat;

use crate::cache::{CachedPulse, PulseCache};
use crate::compile::{AccQocCompiler, AccQocError};
use crate::mst::{mst_compile_order, scratch_order, SimilarityGraph};

/// Report of a pre-compilation run.
#[derive(Debug, Clone)]
pub struct PrecompileReport {
    /// Programs profiled.
    pub n_programs: usize,
    /// Unique groups found (the paper's map2b4l category has 133).
    pub n_unique_groups: usize,
    /// Total GRAPE iterations spent (one-time cost).
    pub total_iterations: usize,
    /// Instance frequency per unique group key.
    pub frequencies: HashMap<UnitaryKey, usize>,
    /// The most frequent group, if any.
    pub most_frequent: Option<UnitaryKey>,
}

/// Whether pre-compilation orders groups by MST (accelerated) or compiles
/// each from scratch (the baseline the paper compares against in
/// Figures 8/13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecompileOrder {
    /// Similarity-MST warm-started order (§V-C).
    Mst,
    /// Independent from-scratch compilation of every group.
    Scratch,
}

/// Runs static pre-compilation over the given programs, filling `cache`.
///
/// # Errors
///
/// Propagates group-compilation failures.
///
/// # Examples
///
/// ```no_run
/// use accqoc::{precompile, AccQocCompiler, AccQocConfig, PrecompileOrder, PulseCache};
/// use accqoc_workloads::{full_suite, profiling_split};
///
/// let compiler = AccQocCompiler::new(AccQocConfig::melbourne());
/// let suite = full_suite();
/// let (profile, _) = profiling_split(&suite, 42);
/// let programs: Vec<_> = profile.iter().map(|&i| suite[i].circuit.clone()).collect();
/// let mut cache = PulseCache::new();
/// let report = precompile(&compiler, &programs, &mut cache, PrecompileOrder::Mst)?;
/// assert_eq!(report.n_unique_groups, cache.len());
/// # Ok::<(), accqoc::AccQocError>(())
/// ```
pub fn precompile(
    compiler: &AccQocCompiler,
    programs: &[Circuit],
    cache: &mut PulseCache,
    order_kind: PrecompileOrder,
) -> Result<PrecompileReport, AccQocError> {
    let (canonical, keys, frequencies) = collect_category(compiler, programs);

    // Only compile what the cache does not already hold.
    let missing: Vec<usize> = (0..keys.len()).filter(|&i| !cache.contains(&keys[i])).collect();

    let mut total_iterations = 0usize;
    if !missing.is_empty() {
        let graph = SimilarityGraph::build(
            missing.iter().map(|&i| canonical[i].0.clone()).collect(),
            compiler.config().similarity,
        );
        let order = match order_kind {
            PrecompileOrder::Mst => mst_compile_order(&graph),
            PrecompileOrder::Scratch => scratch_order(graph.len(), &graph),
        };
        let mut pulses: HashMap<usize, accqoc_grape::Pulse> = HashMap::new();
        for step in &order.steps {
            let unique_idx = missing[step.vertex];
            let (target, n_qubits) = &canonical[unique_idx];
            let warm = step
                .parent
                .filter(|&p| {
                    crate::compile::warm_start_allowed(
                        &canonical[missing[p]].0,
                        target,
                        compiler.config().warm_threshold,
                    )
                })
                .and_then(|p| pulses.get(&p));
            let result = compiler.compile_unitary(target, *n_qubits, warm)?;
            total_iterations += result.total_iterations;
            pulses.insert(step.vertex, result.outcome.pulse.clone());
            cache.insert(
                keys[unique_idx].clone(),
                CachedPulse {
                    pulse: result.outcome.pulse,
                    latency_ns: result.latency_ns,
                    iterations: result.total_iterations,
                    n_qubits: *n_qubits,
                },
            );
        }
    }

    let most_frequent = frequencies
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(k, _)| k.clone());

    Ok(PrecompileReport {
        n_programs: programs.len(),
        n_unique_groups: keys.len(),
        total_iterations,
        frequencies,
        most_frequent,
    })
}

/// Parallel variant of [`precompile`]: compiles the missing groups on
/// `n_workers` workers over a balanced MST partition (§V-D). Merges the
/// results into `cache` and returns the report plus the parallel stats.
///
/// # Errors
///
/// Propagates group-compilation failures.
pub fn precompile_parallel(
    compiler: &AccQocCompiler,
    programs: &[Circuit],
    cache: &mut PulseCache,
    n_workers: usize,
) -> Result<(PrecompileReport, crate::parallel::ParallelStats), AccQocError> {
    let (canonical, keys, frequencies) = collect_category(compiler, programs);
    let missing: Vec<usize> = (0..keys.len()).filter(|&i| !cache.contains(&keys[i])).collect();

    let graph = SimilarityGraph::build(
        missing.iter().map(|&i| canonical[i].0.clone()).collect(),
        compiler.config().similarity,
    );
    let order = mst_compile_order(&graph);
    let missing_unitaries: Vec<(Mat, usize)> =
        missing.iter().map(|&i| canonical[i].clone()).collect();
    let missing_keys: Vec<UnitaryKey> = missing.iter().map(|&i| keys[i].clone()).collect();
    let (fresh, stats) = crate::parallel::compile_parallel(
        compiler,
        &order,
        &missing_unitaries,
        &missing_keys,
        n_workers,
    )?;
    cache.merge(fresh);

    let most_frequent = frequencies.iter().max_by_key(|(_, &c)| c).map(|(k, _)| k.clone());
    Ok((
        PrecompileReport {
            n_programs: programs.len(),
            n_unique_groups: keys.len(),
            total_iterations: stats.total_iterations,
            frequencies,
            most_frequent,
        },
        stats,
    ))
}

/// Gathers the de-duplicated group category of a program set: canonical
/// unitaries, keys, and instance frequencies.
pub fn collect_category(
    compiler: &AccQocCompiler,
    programs: &[Circuit],
) -> (Vec<(Mat, usize)>, Vec<UnitaryKey>, HashMap<UnitaryKey, usize>) {
    let mut canonical: Vec<(Mat, usize)> = Vec::new();
    let mut keys: Vec<UnitaryKey> = Vec::new();
    let mut index_of: HashMap<UnitaryKey, usize> = HashMap::new();
    let mut frequencies: HashMap<UnitaryKey, usize> = HashMap::new();

    for program in programs {
        let (grouped, _, _, _) = compiler.front_end(program);
        let dedup = dedup_groups(&grouped.groups);
        for (g, key) in dedup.unique.iter().zip(&dedup.keys) {
            if !index_of.contains_key(key) {
                let u = g.unitary();
                let (_, perm) = UnitaryKey::canonical_with_permutation(&u, g.n_qubits());
                canonical
                    .push((accqoc_circuit::permute_qubits(&u, &perm, g.n_qubits()), g.n_qubits()));
                index_of.insert(key.clone(), keys.len());
                keys.push(key.clone());
            }
        }
        for &assigned in &dedup.assignment {
            *frequencies.entry(dedup.keys[assigned].clone()).or_insert(0) += 1;
        }
    }
    (canonical, keys, frequencies)
}

/// Re-optimizes one cached group on a finer time grid (half the slice
/// width, paper §IV-G: "we select the group of highest frequency and
/// spend more time training it… such that the latency of this particular
/// group could be further reduced"). Updates the cache when the finer
/// grid finds a shorter pulse; returns the (old, new) latencies.
///
/// # Errors
///
/// Returns [`AccQocError::CompileFailed`] when the refined search cannot
/// reach the fidelity target at all (the cache keeps the original pulse).
pub fn optimize_group(
    compiler: &AccQocCompiler,
    key: &UnitaryKey,
    target: &Mat,
    n_qubits: usize,
    cache: &mut PulseCache,
) -> Result<(f64, f64), AccQocError> {
    let old = cache.lookup(key).map(|e| e.latency_ns).unwrap_or(f64::INFINITY);
    let fine_dt = compiler.models().for_qubits(n_qubits).dt_ns() / 2.0;
    let fine_model = ControlModel::spin_chain(n_qubits).with_dt(fine_dt);
    let mut search = compiler.config().search.clone();
    search.max_steps *= 2;
    search.min_steps = (search.min_steps * 2).max(1);
    let warm = cache.lookup(key).map(|e| e.pulse.clone());
    let mut opts = compiler.config().grape.clone();
    // Richer budget for the headline group.
    opts.stop.max_iters *= 2;
    if let Some(p) = &warm {
        // Resample the cached pulse onto the finer grid as the seed.
        let doubled = p.resampled(p.n_steps() * 2);
        opts.init = accqoc_grape::InitStrategy::Warm(doubled);
    }
    let result = find_minimal_latency(&fine_model, target, &opts, &LatencySearch {
        min_steps: search.min_steps,
        max_steps: search.max_steps,
        initial_guess: cache.lookup(key).map(|e| 2 * e.pulse.n_steps()),
        ..LatencySearch::default()
    })
    .map_err(|source| AccQocError::CompileFailed { n_qubits, source })?;

    let new_latency = result.latency_ns;
    if new_latency < old {
        cache.insert(
            key.clone(),
            CachedPulse {
                pulse: result.outcome.pulse,
                latency_ns: new_latency,
                iterations: result.total_iterations,
                n_qubits,
            },
        );
    }
    Ok((old, new_latency.min(old)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::AccQocConfig;
    use accqoc_circuit::Gate;
    use accqoc_hw::Topology;

    fn compiler() -> AccQocCompiler {
        let mut config = AccQocConfig::for_topology(Topology::linear(3));
        config.grape.stop.max_iters = 200;
        AccQocCompiler::new(config)
    }

    fn programs() -> Vec<Circuit> {
        vec![
            Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]),
            Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::Cx(1, 2)]),
        ]
    }

    #[test]
    fn precompile_fills_cache_and_counts_frequencies() {
        let c = compiler();
        let mut cache = PulseCache::new();
        let report = precompile(&c, &programs(), &mut cache, PrecompileOrder::Mst).unwrap();
        assert_eq!(report.n_programs, 2);
        assert!(report.n_unique_groups >= 1);
        assert_eq!(cache.len(), report.n_unique_groups);
        assert!(report.total_iterations > 0);
        let total_instances: usize = report.frequencies.values().sum();
        assert!(total_instances >= report.n_unique_groups);
        assert!(report.most_frequent.is_some());
    }

    #[test]
    fn precompile_skips_already_cached_groups() {
        let c = compiler();
        let mut cache = PulseCache::new();
        let first = precompile(&c, &programs(), &mut cache, PrecompileOrder::Mst).unwrap();
        let second = precompile(&c, &programs(), &mut cache, PrecompileOrder::Mst).unwrap();
        assert_eq!(second.total_iterations, 0, "everything already covered");
        assert_eq!(first.n_unique_groups, second.n_unique_groups);
    }

    #[test]
    fn mst_order_cheaper_than_scratch() {
        let c = compiler();
        // A family of similar 2-qubit groups: cx dressed with nearby
        // rotations. Warm starts shine when consecutive unitaries are
        // close (the MST guarantees exactly that).
        let programs: Vec<Circuit> = (1..=6)
            .map(|k| {
                Circuit::from_gates(
                    3,
                    [
                        Gate::Rz(0, 0.15 * k as f64),
                        Gate::Cx(0, 1),
                        Gate::Rz(1, 0.15 * k as f64 + 0.05),
                    ],
                )
            })
            .collect();
        let mut cache_mst = PulseCache::new();
        let mst = precompile(&c, &programs, &mut cache_mst, PrecompileOrder::Mst).unwrap();
        let mut cache_scratch = PulseCache::new();
        let scratch =
            precompile(&c, &programs, &mut cache_scratch, PrecompileOrder::Scratch).unwrap();
        assert_eq!(mst.n_unique_groups, scratch.n_unique_groups);
        assert!(
            mst.total_iterations <= scratch.total_iterations,
            "mst {} vs scratch {}",
            mst.total_iterations,
            scratch.total_iterations
        );
        // Latencies agree between the two orders (warm starts change cost,
        // not the feasibility frontier — up to ±1 slice borderline noise).
        for (key, entry) in cache_mst.iter() {
            let other = cache_scratch.lookup(key).expect("same category");
            assert!(
                (entry.latency_ns - other.latency_ns).abs() <= 2.0,
                "latency drift: {} vs {}",
                entry.latency_ns,
                other.latency_ns
            );
        }
    }

    #[test]
    fn optimize_group_never_worsens_latency() {
        let c = compiler();
        let mut cache = PulseCache::new();
        let progs = programs();
        let report = precompile(&c, &progs, &mut cache, PrecompileOrder::Mst).unwrap();
        let key = report.most_frequent.unwrap();
        // Find the canonical unitary of that key.
        let (canonical, keys, _) = collect_category(&c, &progs);
        let idx = keys.iter().position(|k| *k == key).unwrap();
        let before = cache.lookup(&key).unwrap().latency_ns;
        let (old, new) =
            optimize_group(&c, &key, &canonical[idx].0, canonical[idx].1, &mut cache).unwrap();
        assert!((old - before).abs() < 1e-9);
        assert!(new <= old + 1e-9, "optimization worsened latency: {old} → {new}");
        assert!(cache.lookup(&key).unwrap().latency_ns <= before + 1e-9);
    }
}
