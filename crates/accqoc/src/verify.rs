//! Semantic verification: from compiled pulses back to circuit
//! semantics.
//!
//! Nothing elsewhere in the pipeline *proves* that a compiled pulse
//! sequence implements its source circuit — latencies, determinism, and
//! cache bytes are all observable without ever propagating a pulse. This
//! module closes that loop with two oracles:
//!
//! 1. **Pulse → unitary reconstruction** ([`Session::verify_program`]):
//!    every cached group pulse is propagated through its control model
//!    (`grape::total_unitary` over the hardware Hamiltonians) and
//!    compared against the group's canonical target with the
//!    global-phase-invariant gate fidelity `|Tr(A†B)|/d`. On registers
//!    small enough for dense evaluation the per-instance unitaries are
//!    additionally composed per the grouped schedule and checked against
//!    [`accqoc_circuit::circuit_unitary`]'s reference for the whole
//!    program, plus a `|0…0⟩` output-state spot check through the
//!    density-matrix simulator.
//! 2. **Differential compile checks** ([`caches_equivalent`]): two pulse
//!    caches produced by different engines (sequential `precompile`,
//!    `precompile_parallel`, the pre-Session shim) are compared
//!    *semantically* — the pulses may differ byte-wise, but the unitaries
//!    they realize and the latencies they report must agree within
//!    tolerance.
//!
//! [`Session::verify_program`]: crate::Session::verify_program

use std::collections::HashMap;

use accqoc_circuit::{
    apply_unitary, circuit_unitary, invert_permutation, permute_qubits, Circuit, UnitaryKey,
    MAX_DENSE_QUBITS,
};
use accqoc_grape::total_unitary;
use accqoc_linalg::{phase_invariant_fidelity, Mat};
use accqoc_sim::output_state_fidelity;

use crate::cache::{hex_decode, hex_encode, CachedPulse, PulseCache};
use crate::error::{Error, Result};
use crate::json::{self, JsonError, JsonValue};
use crate::model::ModelSet;
use crate::session::{GroupReport, Session};

// ---------------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------------

/// Thresholds and limits for [`Session::verify_program`].
///
/// [`Session::verify_program`]: crate::Session::verify_program
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Minimum acceptable per-group gate fidelity. The default `0.999` is
    /// deliberately looser than the paper's `1 − 10⁻⁴` convergence
    /// target, so a healthy cache passes with margin and a genuinely
    /// wrong pulse (fidelity far below 1) fails unambiguously.
    pub min_group_fidelity: f64,
    /// Minimum acceptable whole-program process fidelity on the exact
    /// (dense-composition) path. Per-group errors at the `10⁻⁴` target
    /// accumulate over instances, so this default is more forgiving than
    /// the per-group gate: `0.98`.
    pub min_exact_fidelity: f64,
    /// Minimum acceptable `|0…0⟩` output-state overlap on the exact path.
    /// Process fidelity does not lower-bound any single input-state
    /// overlap, so the state spot check gets its own (looser) threshold:
    /// `0.95`.
    pub min_state_fidelity: f64,
    /// Widest register (qubits) for which the exact dense composition is
    /// attempted; wider programs report only per-group fidelities and the
    /// multiplicative bound. Capped by
    /// [`accqoc_circuit::MAX_DENSE_QUBITS`].
    pub max_exact_qubits: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            min_group_fidelity: 0.999,
            min_exact_fidelity: 0.98,
            min_state_fidelity: 0.95,
            max_exact_qubits: 8,
        }
    }
}

// ---------------------------------------------------------------------------
// Report types.
// ---------------------------------------------------------------------------

/// Verification outcome for one unique gate group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupVerification {
    /// Canonical group identity.
    pub key: UnitaryKey,
    /// Number of qubits the group spans.
    pub n_qubits: usize,
    /// Instances of this group in the program.
    pub instances: usize,
    /// Gate fidelity `|Tr(U_pulse† · U_target)| / d` between the unitary
    /// the cached pulse realizes and the canonical group target.
    pub fidelity: f64,
    /// Cached pulse latency, ns.
    pub latency_ns: f64,
}

/// Result of verifying one program against the session cache.
///
/// Serializes to/from the same self-contained JSON dialect as the pulse
/// cache ([`VerifyReport::to_json`] / [`VerifyReport::from_json`]), so
/// fidelity snapshots can live next to the golden corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Per-unique-group verification, in group-discovery order.
    pub groups: Vec<GroupVerification>,
    /// Group instances in the program.
    pub n_instances: usize,
    /// Worst per-group fidelity (1.0 for empty programs).
    pub min_group_fidelity: f64,
    /// Instance-weighted mean group fidelity (1.0 for empty programs).
    pub mean_group_fidelity: f64,
    /// Multiplicative whole-program fidelity bound: the product of each
    /// instance's group fidelity. A pessimistic composition estimate that
    /// is available at any register width.
    pub program_fidelity_bound: f64,
    /// Exact whole-program process fidelity — per-instance reconstructed
    /// unitaries composed per the grouped schedule versus the dense
    /// reference unitary of the processed circuit. `None` when the
    /// register exceeds [`VerifyOptions::max_exact_qubits`].
    pub exact_fidelity: Option<f64>,
    /// `|0…0⟩` output-state overlap between the reconstructed and the
    /// reference program unitary. `None` exactly when `exact_fidelity`
    /// is.
    pub state_fidelity: Option<f64>,
    /// `true` when every threshold in the [`VerifyOptions`] held.
    pub passed: bool,
}

impl VerifyReport {
    /// The worst-verifying group, if any.
    pub fn worst_group(&self) -> Option<&GroupVerification> {
        self.groups
            .iter()
            .min_by(|a, b| a.fidelity.total_cmp(&b.fidelity))
    }

    /// Serializes to pretty JSON (byte-deterministic for a given report).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| v.map(JsonValue::Number).unwrap_or(JsonValue::Null);
        let groups = self
            .groups
            .iter()
            .map(|g| {
                JsonValue::Object(vec![
                    (
                        "key".into(),
                        JsonValue::String(hex_encode(g.key.as_bytes())),
                    ),
                    ("n_qubits".into(), JsonValue::Number(g.n_qubits as f64)),
                    ("instances".into(), JsonValue::Number(g.instances as f64)),
                    ("fidelity".into(), JsonValue::Number(g.fidelity)),
                    ("latency_ns".into(), JsonValue::Number(g.latency_ns)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "n_instances".into(),
                JsonValue::Number(self.n_instances as f64),
            ),
            (
                "min_group_fidelity".into(),
                JsonValue::Number(self.min_group_fidelity),
            ),
            (
                "mean_group_fidelity".into(),
                JsonValue::Number(self.mean_group_fidelity),
            ),
            (
                "program_fidelity_bound".into(),
                JsonValue::Number(self.program_fidelity_bound),
            ),
            ("exact_fidelity".into(), opt(self.exact_fidelity)),
            ("state_fidelity".into(), opt(self.state_fidelity)),
            ("passed".into(), JsonValue::Bool(self.passed)),
            ("groups".into(), JsonValue::Array(groups)),
        ])
        .to_pretty()
    }

    /// Deserializes a report produced by [`VerifyReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = json::parse(text)?;
        let num = |field: &str| -> Result<f64> {
            doc.get(field)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| malformed(&format!("missing number `{field}`")).into())
        };
        // A *missing* optional field is corruption (to_json always emits
        // the key); only an explicit `null` means "not computed".
        let opt_num = |field: &str| -> Result<Option<f64>> {
            match doc.get(field) {
                None => Err(malformed(&format!("missing `{field}` (number or null)")).into()),
                Some(JsonValue::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| malformed(&format!("`{field}` is not a number")).into()),
            }
        };
        let passed = match doc.get("passed") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err(malformed("missing bool `passed`").into()),
        };
        let mut groups = Vec::new();
        for entry in doc
            .get("groups")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| malformed("missing `groups` array"))?
        {
            let field = |name: &str| -> Result<&JsonValue> {
                entry
                    .get(name)
                    .ok_or_else(|| malformed(&format!("group missing `{name}`")).into())
            };
            let usize_field = |name: &str| -> Result<usize> {
                field(name)?
                    .as_usize()
                    .ok_or_else(|| malformed(&format!("group `{name}` is not an integer")).into())
            };
            let f64_field = |name: &str| -> Result<f64> {
                field(name)?
                    .as_f64()
                    .ok_or_else(|| malformed(&format!("group `{name}` is not a number")).into())
            };
            let key_hex = field("key")?
                .as_str()
                .ok_or_else(|| malformed("group `key` is not a string"))?;
            groups.push(GroupVerification {
                key: UnitaryKey::from_bytes(hex_decode(key_hex)?),
                n_qubits: usize_field("n_qubits")?,
                instances: usize_field("instances")?,
                fidelity: f64_field("fidelity")?,
                latency_ns: f64_field("latency_ns")?,
            });
        }
        Ok(Self {
            groups,
            n_instances: doc
                .get("n_instances")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| malformed("missing integer `n_instances`"))?,
            min_group_fidelity: num("min_group_fidelity")?,
            mean_group_fidelity: num("mean_group_fidelity")?,
            program_fidelity_bound: num("program_fidelity_bound")?,
            exact_fidelity: opt_num("exact_fidelity")?,
            state_fidelity: opt_num("state_fidelity")?,
            passed,
        })
    }
}

fn malformed(message: &str) -> JsonError {
    JsonError {
        message: format!("verify report: {message}"),
        offset: 0,
    }
}

/// A cached pulse can only be propagated on a model with matching drive
/// channels; anything else is a corrupted or mismatched cache entry.
fn check_pulse_fits(entry: &CachedPulse, model: &accqoc_hw::ControlModel) -> Result<()> {
    if entry.pulse.n_controls() != model.n_controls() {
        return Err(Error::InvalidConfig {
            message: format!(
                "cached pulse has {} channels but the {}-qubit model drives {}",
                entry.pulse.n_controls(),
                entry.n_qubits,
                model.n_controls()
            ),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The pulse-vs-unitary oracle.
// ---------------------------------------------------------------------------

/// Implementation behind [`Session::verify_program`].
///
/// [`Session::verify_program`]: crate::Session::verify_program
pub(crate) fn verify_program(
    session: &Session,
    circuit: &Circuit,
    options: &VerifyOptions,
) -> Result<VerifyReport> {
    let grouped = session.front_end(circuit);
    verify_grouped(session, &grouped, options)
}

/// Verifies an already-grouped program (shares the front end with the
/// compile pipeline, so the oracle sees exactly the groups the compiler
/// saw).
fn verify_grouped(
    session: &Session,
    grouped: &GroupReport,
    options: &VerifyOptions,
) -> Result<VerifyReport> {
    // Reconstruct each unique group's realized unitary from its cached
    // pulse and score it against the canonical compile target.
    let mut realized: HashMap<UnitaryKey, Mat> = HashMap::new();
    let mut instances = vec![0usize; grouped.targets.len()];
    for &assigned in &grouped.assignment {
        instances[assigned] += 1;
    }
    let mut groups = Vec::with_capacity(grouped.targets.len());
    for (target, &n_instances) in grouped.targets.iter().zip(&instances) {
        let entry = session.cached(&target.key).ok_or(Error::UncoveredGroup {
            n_qubits: target.n_qubits,
        })?;
        let model = session.models().for_qubits(target.n_qubits)?;
        check_pulse_fits(&entry, model)?;
        let u_pulse = total_unitary(model, &entry.pulse);
        let fidelity = phase_invariant_fidelity(&u_pulse, &target.unitary);
        realized.insert(target.key.clone(), u_pulse);
        groups.push(GroupVerification {
            key: target.key.clone(),
            n_qubits: target.n_qubits,
            instances: n_instances,
            fidelity,
            latency_ns: entry.latency_ns,
        });
    }

    let n_instances = grouped.assignment.len();
    let min_group_fidelity = groups.iter().map(|g| g.fidelity).fold(1.0, f64::min);
    let mean_group_fidelity = if n_instances == 0 {
        1.0
    } else {
        grouped
            .assignment
            .iter()
            .map(|&a| groups[a].fidelity)
            .sum::<f64>()
            / n_instances as f64
    };
    let program_fidelity_bound = grouped
        .assignment
        .iter()
        .map(|&a| groups[a].fidelity)
        .product::<f64>();

    // Exact path: compose the reconstructed per-instance unitaries per the
    // grouped schedule and compare against the dense reference.
    let n_qubits = grouped.processed.n_qubits();
    let (exact_fidelity, state_fidelity) =
        if n_qubits <= options.max_exact_qubits.min(MAX_DENSE_QUBITS) {
            let reference = circuit_unitary(&grouped.processed);
            let mut reconstructed = Mat::identity(1 << n_qubits);
            debug_assert!(grouped.grouped.is_topologically_sound());
            for group in &grouped.grouped.groups {
                // The cached pulse realizes the *canonical* frame; undo the
                // instance's canonicalizing permutation to recover its
                // local-qubit unitary, then embed over its global qubits.
                let (key, perm) =
                    UnitaryKey::canonical_with_permutation(&group.unitary(), group.n_qubits());
                let canonical = realized.get(&key).ok_or(Error::UncoveredGroup {
                    n_qubits: group.n_qubits(),
                })?;
                let local = permute_qubits(canonical, &invert_permutation(&perm), group.n_qubits());
                apply_unitary(&mut reconstructed, &local, &group.qubits, n_qubits);
            }
            (
                Some(phase_invariant_fidelity(&reconstructed, &reference)),
                Some(output_state_fidelity(&reference, &reconstructed, 0)),
            )
        } else {
            (None, None)
        };

    let passed = min_group_fidelity >= options.min_group_fidelity
        && exact_fidelity.is_none_or(|f| f >= options.min_exact_fidelity)
        && state_fidelity.is_none_or(|f| f >= options.min_state_fidelity);
    Ok(VerifyReport {
        groups,
        n_instances,
        min_group_fidelity,
        mean_group_fidelity,
        program_fidelity_bound,
        exact_fidelity,
        state_fidelity,
        passed,
    })
}

// ---------------------------------------------------------------------------
// Differential compile checks.
// ---------------------------------------------------------------------------

/// One cache entry whose two compilations disagree beyond tolerance.
#[derive(Debug, Clone)]
pub struct CacheDivergence {
    /// Canonical group identity.
    pub key: UnitaryKey,
    /// Number of qubits of the group.
    pub n_qubits: usize,
    /// Phase-invariant infidelity between the unitaries the two pulses
    /// realize.
    pub infidelity: f64,
    /// Absolute latency difference, ns.
    pub latency_delta_ns: f64,
}

/// Result of a semantic cache comparison ([`caches_equivalent`]).
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// Keys present in both caches.
    pub n_common: usize,
    /// Keys only the first cache holds.
    pub only_in_a: usize,
    /// Keys only the second cache holds.
    pub only_in_b: usize,
    /// Worst realized-unitary infidelity over common keys.
    pub max_infidelity: f64,
    /// Worst latency disagreement over common keys, ns.
    pub max_latency_delta_ns: f64,
    /// Common entries exceeding the tolerances, sorted by key.
    pub divergences: Vec<CacheDivergence>,
}

impl EquivalenceReport {
    /// `true` when the caches cover the same groups and no common entry
    /// exceeded the tolerances.
    pub fn equivalent(&self) -> bool {
        self.only_in_a == 0 && self.only_in_b == 0 && self.divergences.is_empty()
    }
}

/// Differential oracle: are two pulse caches *semantically* equivalent?
///
/// Byte-equality is the strongest possible agreement (and the parallel
/// engine does deliver it at a fixed partition plan — see
/// `tests/parallel_determinism.rs`), but it is also brittle: two engines
/// that walk different warm-start chains produce different pulse bytes
/// for the *same physics*. This check compares what actually matters —
/// for every group key both caches hold, the unitary each pulse realizes
/// on the control model (within `max_infidelity`) and the reported
/// latency (within `max_latency_delta_ns`).
///
/// # Errors
///
/// [`Error::GroupTooWide`] / [`Error::EmptyGroup`] when an entry's arity
/// has no model; [`Error::InvalidConfig`] when a pulse's channel count
/// disagrees with its model.
pub fn caches_equivalent(
    models: &ModelSet,
    a: &PulseCache,
    b: &PulseCache,
    max_infidelity: f64,
    max_latency_delta_ns: f64,
) -> Result<EquivalenceReport> {
    let mut common: Vec<&UnitaryKey> = a
        .iter()
        .filter(|(k, _)| b.contains(k))
        .map(|(k, _)| k)
        .collect();
    common.sort();
    let only_in_a = a.len() - common.len();
    let only_in_b = b.len() - common.len();

    let mut max_inf = 0.0f64;
    let mut max_delta = 0.0f64;
    let mut divergences = Vec::new();
    for key in &common {
        let ea = a.lookup(key).expect("key from a");
        let eb = b.lookup(key).expect("common key");
        let model = models.for_qubits(ea.n_qubits)?;
        check_pulse_fits(ea, model)?;
        check_pulse_fits(eb, model)?;
        let ua = total_unitary(model, &ea.pulse);
        let ub = total_unitary(model, &eb.pulse);
        let infidelity = 1.0 - phase_invariant_fidelity(&ua, &ub);
        let latency_delta_ns = (ea.latency_ns - eb.latency_ns).abs();
        max_inf = max_inf.max(infidelity);
        max_delta = max_delta.max(latency_delta_ns);
        if infidelity > max_infidelity || latency_delta_ns > max_latency_delta_ns {
            divergences.push(CacheDivergence {
                key: (*key).clone(),
                n_qubits: ea.n_qubits,
                infidelity,
                latency_delta_ns,
            });
        }
    }
    Ok(EquivalenceReport {
        n_common: common.len(),
        only_in_a,
        only_in_b,
        max_infidelity: max_inf,
        max_latency_delta_ns: max_delta,
        divergences,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedPulse;
    use accqoc_circuit::Gate;
    use accqoc_grape::Pulse;
    use accqoc_hw::Topology;

    fn tiny_session() -> Session {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .build()
            .expect("valid session")
    }

    #[test]
    fn verify_before_compile_reports_uncovered() {
        let session = tiny_session();
        let circuit = Circuit::from_gates(2, [Gate::H(0)]);
        let e = session.verify_program(&circuit).unwrap_err();
        assert!(matches!(e, Error::UncoveredGroup { .. }));
    }

    #[test]
    fn compiled_program_verifies() {
        let session = tiny_session();
        let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1)]);
        session.compile_program(&circuit).unwrap();
        let report = session.verify_program(&circuit).unwrap();
        assert!(report.passed, "report: {report:?}");
        assert!(report.min_group_fidelity >= 0.999);
        assert!(report.mean_group_fidelity >= report.min_group_fidelity);
        assert!(report.program_fidelity_bound <= report.min_group_fidelity + 1e-12);
        let exact = report.exact_fidelity.expect("3 qubits is dense-verifiable");
        assert!(exact >= 0.99, "exact program fidelity {exact}");
        let state = report.state_fidelity.expect("state check runs with exact");
        assert!(state >= 0.99, "state fidelity {state}");
        assert_eq!(
            report.n_instances,
            report.groups.iter().map(|g| g.instances).sum::<usize>()
        );
        let worst = report.worst_group().expect("non-empty program");
        assert!((worst.fidelity - report.min_group_fidelity).abs() < 1e-15);
    }

    #[test]
    fn empty_program_verifies_trivially() {
        let session = tiny_session();
        let report = session.verify_program(&Circuit::new(2)).unwrap();
        assert!(report.passed);
        assert_eq!(report.n_instances, 0);
        assert_eq!(report.min_group_fidelity, 1.0);
        assert_eq!(report.program_fidelity_bound, 1.0);
        assert_eq!(report.exact_fidelity, Some(1.0));
    }

    #[test]
    fn corrupted_pulse_fails_verification() {
        let session = tiny_session();
        let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]);
        session.compile_program(&circuit).unwrap();
        // Sabotage the cache: zero out every cached pulse (which realizes
        // identity-ish evolution, not the compiled groups).
        let snapshot = session.cache_snapshot();
        let mut broken = PulseCache::new();
        for (key, entry) in snapshot.iter() {
            broken.insert(
                key.clone(),
                CachedPulse {
                    pulse: Pulse::zeros(entry.pulse.n_controls(), 4, entry.pulse.dt_ns()),
                    ..entry.clone()
                },
            );
        }
        session.set_cache(broken);
        let report = session.verify_program(&circuit).unwrap();
        assert!(!report.passed, "zeroed pulses must not verify");
        assert!(report.min_group_fidelity < 0.999);
    }

    #[test]
    fn report_json_round_trips() {
        let session = tiny_session();
        let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1)]);
        session.compile_program(&circuit).unwrap();
        let report = session.verify_program(&circuit).unwrap();
        let restored = VerifyReport::from_json(&report.to_json()).unwrap();
        assert_eq!(restored, report, "exact f64 round-trip");
        // Wide-register shape (no exact fidelity) round-trips too.
        let wide = VerifyReport {
            exact_fidelity: None,
            state_fidelity: None,
            ..report
        };
        assert_eq!(VerifyReport::from_json(&wide.to_json()).unwrap(), wide);
    }

    #[test]
    fn report_json_rejects_garbage() {
        assert!(matches!(
            VerifyReport::from_json("not json"),
            Err(Error::Json(_))
        ));
        assert!(VerifyReport::from_json("{}").is_err());
        assert!(VerifyReport::from_json("{\"passed\": true}").is_err());
        let no_groups = "{\"n_instances\": 1, \"min_group_fidelity\": 1, \
             \"mean_group_fidelity\": 1, \"program_fidelity_bound\": 1, \
             \"exact_fidelity\": null, \"state_fidelity\": null, \"passed\": true}";
        assert!(VerifyReport::from_json(no_groups).is_err());
        // A *dropped* optional key is corruption, not a wide register.
        let missing_exact = "{\"n_instances\": 0, \"min_group_fidelity\": 1, \
             \"mean_group_fidelity\": 1, \"program_fidelity_bound\": 1, \
             \"state_fidelity\": null, \"passed\": true, \"groups\": []}";
        let e = VerifyReport::from_json(missing_exact).unwrap_err();
        assert!(e.to_string().contains("exact_fidelity"), "{e}");
    }

    #[test]
    fn caches_equivalent_flags_divergence() {
        let session = tiny_session();
        let circuit = Circuit::from_gates(2, [Gate::H(0), Gate::T(0)]);
        session.compile_program(&circuit).unwrap();
        let cache = session.cache_snapshot();

        // Identical caches are trivially equivalent.
        let report =
            caches_equivalent(session.models(), &cache, &cache.clone(), 1e-9, 1e-9).unwrap();
        assert!(report.equivalent(), "{report:?}");
        assert_eq!(report.n_common, cache.len());
        assert!(report.max_infidelity < 1e-12);
        assert_eq!(report.max_latency_delta_ns, 0.0);

        // Zeroing a pulse breaks semantic equivalence even though the key
        // set (and the latency) is unchanged.
        let mut broken = cache.clone();
        let (key, entry) = cache.iter().next().expect("non-empty");
        broken.insert(
            key.clone(),
            CachedPulse {
                pulse: Pulse::zeros(entry.pulse.n_controls(), 4, entry.pulse.dt_ns()),
                ..entry.clone()
            },
        );
        let report = caches_equivalent(session.models(), &cache, &broken, 1e-6, 1e-9).unwrap();
        assert!(!report.equivalent());
        assert_eq!(report.divergences.len(), 1);
        assert!(report.max_infidelity > 1e-3);
    }
}
