//! Compilation baselines (paper §VI-H, Figure 15).
//!
//! - **Gate-based compilation**: per-gate pulse lookup + concatenation —
//!   provided by [`crate::Session::gate_based_latency`].
//! - **Brute-force QOC**: "we form the 'brute force QOC' groups by
//!   including as many qubits and gates as possible" — maximal groups
//!   compiled from scratch, giving the best latency at enormous compile
//!   cost. The paper's brute force reaches 10-qubit groups and takes
//!   hours; we cap the group width (3 qubits by default) to keep the
//!   experiment tractable while preserving the trade-off's direction,
//!   and record the cap in EXPERIMENTS.md.

use accqoc_circuit::Circuit;
use accqoc_grape::LatencySearch;
use accqoc_group::{GroupingPolicy, SwapMode};
use accqoc_hw::Topology;

use crate::compile::AccQocConfig;
use crate::error::Result;
use crate::model::ModelSet;
use crate::session::Session;

/// Configuration of the brute-force QOC baseline.
#[derive(Debug, Clone)]
pub struct BruteForceConfig {
    /// Maximum qubits per brute-force group.
    pub max_qubits: usize,
    /// Maximum layers per brute-force group (bounds pulse length).
    pub max_layers: usize,
    /// Latency-search cap (brute-force groups need longer pulses).
    pub max_steps: usize,
}

impl Default for BruteForceConfig {
    fn default() -> Self {
        Self {
            max_qubits: 3,
            max_layers: 12,
            max_steps: 192,
        }
    }
}

/// Result of brute-force QOC compilation of one program.
#[derive(Debug, Clone)]
pub struct BruteForceResult {
    /// Overall program latency (Algorithm 3 over brute-force groups), ns.
    pub overall_latency_ns: f64,
    /// Total GRAPE iterations (every group compiled from scratch).
    pub total_iterations: usize,
    /// Number of group instances.
    pub n_groups: usize,
    /// Number of unique groups compiled.
    pub n_unique: usize,
}

/// Runs the brute-force QOC baseline on a logical circuit.
///
/// The circuit is mapped with the same crosstalk-aware mapper, then
/// divided with a wide grouping policy and compiled group-by-group from
/// scratch (no cache, no MST).
///
/// # Errors
///
/// Propagates pulse-compilation failures.
pub fn brute_force_qoc(
    circuit: &Circuit,
    topology: &Topology,
    base: &AccQocConfig,
    bf: &BruteForceConfig,
) -> Result<BruteForceResult> {
    let policy = GroupingPolicy::new(SwapMode::Map, bf.max_qubits, bf.max_layers);
    let session = Session::builder()
        .topology(topology.clone())
        .policy(policy)
        .mapping(base.mapping.clone())
        .grape(base.grape.clone())
        .search(LatencySearch {
            min_steps: base.search.min_steps,
            max_steps: bf.max_steps,
            ..LatencySearch::default()
        })
        .similarity(base.similarity)
        .warm_threshold(base.warm_threshold)
        .models(ModelSet::spin(bf.max_qubits)?)
        .build()?;

    let report = session.front_end(circuit);
    let mut latencies_unique = Vec::with_capacity(report.targets.len());
    let mut total_iterations = 0usize;
    for target in &report.targets {
        let result = session.compile_unitary(&target.unitary, target.n_qubits, None)?;
        total_iterations += result.total_iterations;
        latencies_unique.push(result.latency_ns);
    }
    let latencies: Vec<f64> = report
        .assignment
        .iter()
        .map(|&u| latencies_unique[u])
        .collect();
    let overall_latency_ns = report.grouped.overall_latency(|i| latencies[i]);

    Ok(BruteForceResult {
        overall_latency_ns,
        total_iterations,
        n_groups: report.assignment.len(),
        n_unique: report.targets.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::Gate;

    #[test]
    fn brute_force_beats_accqoc_latency_but_costs_more() {
        let topo = Topology::linear(3);
        let mut base = AccQocConfig::for_topology(topo.clone());
        base.grape.stop.max_iters = 200;
        let circuit = Circuit::from_gates(
            3,
            [
                Gate::H(0),
                Gate::Cx(0, 1),
                Gate::T(1),
                Gate::Cx(1, 2),
                Gate::H(2),
                Gate::Cx(0, 1),
                Gate::Tdg(1),
            ],
        );
        let session = Session::from_config(base.clone()).unwrap();
        let accqoc = session.compile_program(&circuit).unwrap();
        let bf = brute_force_qoc(&circuit, &topo, &base, &BruteForceConfig::default()).unwrap();

        assert!(bf.overall_latency_ns > 0.0);
        assert!(bf.n_unique <= bf.n_groups);
        // Bigger groups ⇒ at-least-as-good latency.
        assert!(
            bf.overall_latency_ns <= accqoc.overall_latency_ns + 1e-9,
            "bf {} vs accqoc {}",
            bf.overall_latency_ns,
            accqoc.overall_latency_ns
        );
    }

    #[test]
    fn default_config_is_paper_scoped() {
        let bf = BruteForceConfig::default();
        assert!(bf.max_qubits >= 3);
        assert!(bf.max_steps > 96);
    }
}
