//! The unified error hierarchy of the AccQOC compiler.
//!
//! Every fallible operation in this crate returns [`Error`]. Errors from
//! the lower layers — the GRAPE latency search ([`LatencyError`]), the
//! QASM parser ([`QasmError`]), the linear-algebra substrate
//! ([`LinalgError`]), cache persistence ([`JsonError`], [`io::Error`]) —
//! convert into it with `From`, so `?` works across every crate boundary
//! of the pipeline.

use std::fmt;
use std::io;

use accqoc_circuit::QasmError;
use accqoc_grape::LatencyError;
use accqoc_linalg::LinalgError;

use crate::json::JsonError;

/// Convenience alias: this crate's `Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Any failure of the AccQOC compilation pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// GRAPE could not reach the fidelity target for a group within the
    /// latency cap.
    CompileFailed {
        /// How many qubits the failing group had.
        n_qubits: usize,
        /// The latency-search failure.
        source: LatencyError,
    },
    /// A group was wider than the configured model set.
    GroupTooWide {
        /// Offending group arity.
        n_qubits: usize,
        /// Largest supported arity.
        max: usize,
    },
    /// A group over zero qubits was submitted (no control model exists
    /// for it, and no pulse could realize it).
    EmptyGroup,
    /// A required [`crate::SessionBuilder`] field was never set.
    Builder {
        /// Name of the missing field.
        field: &'static str,
    },
    /// A configuration value is outside its supported domain.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// A stage that needs every group pulse cached found one missing
    /// (run [`crate::Session::compile`] before [`crate::Session::latency`]).
    UncoveredGroup {
        /// Arity of the uncovered group.
        n_qubits: usize,
    },
    /// The batch pipeline needs every unique group of a program cached at
    /// once, but the library's LRU capacity bound is smaller than the
    /// program's unique-group count — compiled pulses would be evicted
    /// before the latency stage could read them back. Raise the bound or
    /// use the online [`crate::Session::serve_program`] path, which folds
    /// latencies as it compiles and works at any capacity.
    CapacityExceeded {
        /// The configured library capacity.
        capacity: usize,
        /// Unique groups the program needs cached simultaneously.
        required: usize,
    },
    /// A latency search failed outside of group compilation.
    Latency(LatencyError),
    /// QASM parsing failed.
    Qasm(QasmError),
    /// A linear-algebra kernel failed.
    Linalg(LinalgError),
    /// Pulse-cache JSON was malformed.
    Json(JsonError),
    /// File I/O failed (cache persistence).
    Io(io::Error),
    /// The durable library tier failed: a write-ahead-log or snapshot
    /// operation hit an I/O error, or recovery found a checksum-corrupted
    /// record (see [`accqoc_store::StoreError`] for which).
    Store(accqoc_store::StoreError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CompileFailed { n_qubits, source } => {
                write!(
                    f,
                    "pulse compilation failed for a {n_qubits}-qubit group: {source}"
                )
            }
            Self::GroupTooWide { n_qubits, max } => {
                write!(f, "group has {n_qubits} qubits but models stop at {max}")
            }
            Self::EmptyGroup => write!(f, "group spans zero qubits"),
            Self::Builder { field } => {
                write!(f, "session builder is missing the required `{field}` field")
            }
            Self::InvalidConfig { message } => write!(f, "invalid configuration: {message}"),
            Self::UncoveredGroup { n_qubits } => write!(
                f,
                "a {n_qubits}-qubit group has no cached pulse (run the compile stage first)"
            ),
            Self::CapacityExceeded { capacity, required } => write!(
                f,
                "library capacity {capacity} is below the program's {required} unique groups \
                 (raise the bound or serve the program online)"
            ),
            Self::Latency(e) => write!(f, "latency search failed: {e}"),
            Self::Qasm(e) => write!(f, "qasm parsing failed: {e}"),
            Self::Linalg(e) => write!(f, "linear algebra failed: {e}"),
            Self::Json(e) => write!(f, "pulse-cache json malformed: {e}"),
            Self::Io(e) => write!(f, "i/o failed: {e}"),
            Self::Store(e) => write!(f, "durable store failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::CompileFailed { source, .. } => Some(source),
            Self::Latency(e) => Some(e),
            Self::Qasm(e) => Some(e),
            Self::Linalg(e) => Some(e),
            Self::Json(e) => Some(e),
            Self::Io(e) => Some(e),
            Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LatencyError> for Error {
    fn from(e: LatencyError) -> Self {
        Self::Latency(e)
    }
}

impl From<QasmError> for Error {
    fn from(e: QasmError) -> Self {
        Self::Qasm(e)
    }
}

impl From<LinalgError> for Error {
    fn from(e: LinalgError) -> Self {
        Self::Linalg(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<accqoc_store::StoreError> for Error {
    fn from(e: accqoc_store::StoreError) -> Self {
        Self::Store(e)
    }
}

/// Pre-redesign name of [`Error`], kept for one release.
#[deprecated(since = "0.1.0", note = "use `accqoc::Error`")]
pub type AccQocError = Error;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_covers_every_variant() {
        let latency = LatencyError::Infeasible {
            max_steps: 8,
            best_infidelity: 0.3,
        };
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::CompileFailed {
                    n_qubits: 2,
                    source: latency.clone(),
                },
                "2-qubit group",
            ),
            (
                Error::GroupTooWide {
                    n_qubits: 5,
                    max: 2,
                },
                "5 qubits",
            ),
            (Error::EmptyGroup, "zero qubits"),
            (Error::Builder { field: "topology" }, "`topology`"),
            (
                Error::InvalidConfig {
                    message: "bad".into(),
                },
                "bad",
            ),
            (Error::UncoveredGroup { n_qubits: 2 }, "no cached pulse"),
            (
                Error::CapacityExceeded {
                    capacity: 2,
                    required: 9,
                },
                "9 unique groups",
            ),
            (Error::Latency(latency.clone()), "latency search"),
            (
                Error::Qasm(QasmError {
                    line: 3,
                    message: "nope".into(),
                }),
                "qasm",
            ),
            (
                Error::Json(JsonError {
                    message: "eof".into(),
                    offset: 0,
                }),
                "json",
            ),
            (Error::Io(io::Error::other("disk")), "disk"),
            (
                Error::Store(accqoc_store::StoreError::Corrupt {
                    path: "wal.log".into(),
                    offset: 24,
                    records_ok: 3,
                    message: "frame checksum mismatch".into(),
                }),
                "checksum",
            ),
        ];
        for (e, needle) in cases {
            let shown = e.to_string();
            assert!(
                shown.contains(needle),
                "{shown:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        let latency = LatencyError::Infeasible {
            max_steps: 8,
            best_infidelity: 0.3,
        };
        let e = Error::CompileFailed {
            n_qubits: 2,
            source: latency.clone(),
        };
        let source = e.source().expect("compile failures carry a source");
        assert_eq!(source.to_string(), latency.to_string());
        assert!(Error::EmptyGroup.source().is_none());
        assert!(Error::from(latency).source().is_some());
    }

    #[test]
    fn from_conversions_pick_the_right_variant() {
        let e: Error = QasmError {
            line: 1,
            message: "x".into(),
        }
        .into();
        assert!(matches!(e, Error::Qasm(_)));
        let e: Error = io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
        let e: Error = JsonError {
            message: "x".into(),
            offset: 3,
        }
        .into();
        assert!(matches!(e, Error::Json(_)));
        let e: Error = accqoc_store::StoreError::Io(io::Error::other("x")).into();
        assert!(matches!(e, Error::Store(_)));
        assert!(e.source().is_some());
    }
}
