//! Pipeline configuration and the pre-redesign compiler shim.
//!
//! The pipeline itself lives behind [`crate::Session`]; this module keeps
//! the configuration bag ([`AccQocConfig`]), the warm-start gate
//! ([`warm_start_allowed`]), and a thin deprecated [`AccQocCompiler`]
//! wrapper so pre-redesign callers keep compiling for one release.

use accqoc_circuit::Circuit;
use accqoc_grape::{GrapeOptions, LatencyResult, LatencySearch, Pulse};
use accqoc_group::{GroupedCircuit, GroupingPolicy};
use accqoc_hw::{GateDurations, Topology};
use accqoc_linalg::Mat;
use accqoc_map::MappingOptions;

use crate::cache::PulseCache;
use crate::error::Result;
use crate::model::ModelSet;
use crate::session::{CoverageStats, ProgramCompilation, Session};
use crate::similarity::SimilarityFn;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AccQocConfig {
    /// Grouping policy (the paper settles on `map2b4l`).
    pub policy: GroupingPolicy,
    /// Device coupling topology.
    pub topology: Topology,
    /// Mapping options (crosstalk-aware by default).
    pub mapping: MappingOptions,
    /// GRAPE solver options.
    pub grape: GrapeOptions,
    /// Latency search bounds for group compilation.
    pub search: LatencySearch,
    /// Similarity function for the MST ordering (`fidelity1` — the
    /// trace-overlap distance — by default; the paper's best performer).
    pub similarity: SimilarityFn,
    /// Warm-start a child only when the *trace-overlap distance*
    /// (`1 − |Tr(P†C)|/d`) between parent and child is below this
    /// threshold; otherwise start from scratch ("if no group is similar
    /// enough, the compilation will start from the pulse of identity
    /// matrix", §V-C). The gate is deliberately uniform across similarity
    /// functions — each function shapes the *tree*, but whether a seed
    /// pulse helps is governed by how close the unitaries are in the
    /// fidelity GRAPE optimizes. Warm starts from dissimilar pulses
    /// actively hurt (the pulse sits in the parent's sharp optimum),
    /// which is also why the paper's inverse-similarity control worsens
    /// iteration counts.
    pub warm_threshold: f64,
}

impl AccQocConfig {
    /// The paper's default setup: Melbourne topology, `map2b4l`, L-BFGS
    /// GRAPE at the 1e-4 fidelity target, `fidelity1` similarity.
    pub fn melbourne() -> Self {
        Self::for_topology(Topology::melbourne())
    }

    /// Same defaults on an arbitrary topology.
    pub fn for_topology(topology: Topology) -> Self {
        Self {
            policy: GroupingPolicy::map2b4l(),
            topology,
            mapping: MappingOptions::default(),
            grape: GrapeOptions::default(),
            search: LatencySearch {
                min_steps: 8,
                max_steps: 96,
                ..LatencySearch::default()
            },
            similarity: SimilarityFn::TraceOverlap,
            warm_threshold: 0.15,
        }
    }
}

/// `true` when a parent pulse may seed a child: the unitaries are close
/// in the phase-invariant trace overlap GRAPE optimizes.
pub fn warm_start_allowed(parent: &Mat, child: &Mat, threshold: f64) -> bool {
    SimilarityFn::TraceOverlap.distance(parent, child) <= threshold
}

/// Pre-redesign compiler entry point, now a thin wrapper over
/// [`Session`]. Unlike a session it does not own a cache: callers thread
/// a mutable [`PulseCache`] through every call.
#[deprecated(
    since = "0.1.0",
    note = "use `accqoc::Session` (builder-constructed; owns the pulse cache)"
)]
pub struct AccQocCompiler {
    session: Session,
}

#[allow(deprecated)]
impl std::fmt::Debug for AccQocCompiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccQocCompiler")
            .field("session", &self.session)
            .finish()
    }
}

#[allow(deprecated)]
impl AccQocCompiler {
    /// Creates a compiler with spin-chain models matching the policy
    /// width.
    ///
    /// # Panics
    ///
    /// Panics on configurations [`Session::from_config`] rejects (the
    /// pre-redesign constructor had no error path).
    pub fn new(config: AccQocConfig) -> Self {
        Self {
            session: Session::from_config(config).expect("valid pre-redesign config"),
        }
    }

    /// Creates a compiler with a custom model set.
    pub fn with_models(config: AccQocConfig, models: ModelSet) -> Self {
        let session = Session::builder()
            .topology(config.topology.clone())
            .policy(config.policy)
            .mapping(config.mapping.clone())
            .grape(config.grape.clone())
            .search(config.search.clone())
            .similarity(config.similarity)
            .warm_threshold(config.warm_threshold)
            .models(models)
            .build()
            .expect("valid pre-redesign config");
        Self { session }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The configuration.
    pub fn config(&self) -> &AccQocConfig {
        self.session.config()
    }

    /// The model set.
    pub fn models(&self) -> &ModelSet {
        self.session.models()
    }

    /// Maps, decomposes, and groups a logical circuit; returns the
    /// grouped circuit, the processed physical circuit, the crosstalk
    /// metric, and the swap count.
    pub fn front_end(&self, circuit: &Circuit) -> (GroupedCircuit, Circuit, usize, usize) {
        let report = self.session.front_end(circuit);
        (
            report.grouped,
            report.processed,
            report.crosstalk,
            report.swap_count,
        )
    }

    /// Compiles one canonical unitary to a pulse.
    ///
    /// # Errors
    ///
    /// See [`Session::compile_unitary`].
    pub fn compile_unitary(
        &self,
        target: &Mat,
        n_qubits: usize,
        warm: Option<&Pulse>,
    ) -> Result<LatencyResult> {
        self.session.compile_unitary(target, n_qubits, warm)
    }

    /// Compiles a whole program against an externally owned cache.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn compile_program(
        &self,
        circuit: &Circuit,
        cache: &mut PulseCache,
    ) -> Result<ProgramCompilation> {
        let fork = self.session.fork();
        fork.set_cache(std::mem::take(cache));
        let result = fork.compile_program(circuit);
        *cache = fork.cache_snapshot();
        result
    }

    /// Coverage of a program against an external cache.
    pub fn coverage_of(&self, circuit: &Circuit, cache: &PulseCache) -> CoverageStats {
        let fork = self.session.fork();
        fork.set_cache(cache.clone());
        fork.coverage_of(circuit)
    }

    /// Gate-based compilation latency of a processed physical circuit.
    pub fn gate_based_latency(&self, processed: &Circuit) -> f64 {
        self.session.gate_based_latency(processed)
    }

    /// The single-gate duration table.
    pub fn gate_durations(&self) -> GateDurations {
        self.session.gate_durations()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use accqoc_circuit::Gate;
    use accqoc_hw::Topology;

    #[test]
    fn deprecated_shim_still_compiles_programs() {
        let mut config = AccQocConfig::for_topology(Topology::linear(3));
        config.grape.stop.max_iters = 200;
        let compiler = AccQocCompiler::new(config);
        let mut cache = PulseCache::new();
        let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1)]);
        let result = compiler.compile_program(&circuit, &mut cache).unwrap();
        assert!(result.overall_latency_ns > 0.0);
        assert!(
            !cache.is_empty(),
            "shim writes back into the caller's cache"
        );
        let coverage = compiler.coverage_of(&circuit, &cache);
        assert_eq!(coverage.covered, coverage.total);
    }
}
