//! The AccQOC compilation pipeline (paper Figure 6).
//!
//! Front-end: decompose → crosstalk-aware map → group under a policy →
//! de-duplicate. Back-end: covered groups pull pulses straight from the
//! cache; uncovered groups are compiled in MST order with warm starts
//! (§V); the program latency is the Algorithm 3 dynamic program over the
//! group DAG. The gate-based baseline concatenates per-gate pulses whose
//! durations come from GRAPE-minimal single-gate compilations on the
//! *same* device model — apples to apples.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use accqoc_circuit::{Circuit, CircuitDag, Gate, GateKind, UnitaryKey};
use accqoc_grape::{
    find_minimal_latency, GrapeOptions, InitStrategy, LatencyError, LatencyResult, LatencySearch,
    Pulse,
};
use accqoc_group::{dedup_groups, divide_circuit, GroupedCircuit, GroupingPolicy};
use accqoc_hw::{ControlModel, GateDurations, Topology};
use accqoc_linalg::Mat;
use accqoc_map::{crosstalk_metric, map_circuit, MappingOptions};

use crate::cache::{CachedPulse, PulseCache};
use crate::mst::{mst_compile_order, CompileOrder, SimilarityGraph};
use crate::similarity::SimilarityFn;

/// Control models per group arity.
#[derive(Debug, Clone)]
pub struct ModelSet {
    models: Vec<ControlModel>, // index = n_qubits − 1
}

impl ModelSet {
    /// Spin-chain models for 1..=max_qubits qubits.
    ///
    /// # Panics
    ///
    /// Panics for `max_qubits` outside `1..=6`.
    pub fn spin(max_qubits: usize) -> Self {
        assert!((1..=6).contains(&max_qubits));
        Self { models: (1..=max_qubits).map(ControlModel::spin_chain).collect() }
    }

    /// The model for groups of `n_qubits`.
    ///
    /// # Panics
    ///
    /// Panics when no model of that arity was built.
    pub fn for_qubits(&self, n_qubits: usize) -> &ControlModel {
        &self.models[n_qubits - 1]
    }

    /// Largest supported arity.
    pub fn max_qubits(&self) -> usize {
        self.models.len()
    }
}

/// Errors from the compilation pipeline.
#[derive(Debug, Clone)]
pub enum AccQocError {
    /// GRAPE could not reach the fidelity target for a group within the
    /// latency cap.
    CompileFailed {
        /// How many qubits the failing group had.
        n_qubits: usize,
        /// The latency-search failure.
        source: LatencyError,
    },
    /// A group was wider than the configured model set.
    GroupTooWide {
        /// Offending group arity.
        n_qubits: usize,
        /// Largest supported arity.
        max: usize,
    },
}

impl fmt::Display for AccQocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CompileFailed { n_qubits, source } => {
                write!(f, "pulse compilation failed for a {n_qubits}-qubit group: {source}")
            }
            Self::GroupTooWide { n_qubits, max } => {
                write!(f, "group has {n_qubits} qubits but models stop at {max}")
            }
        }
    }
}

impl Error for AccQocError {}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct AccQocConfig {
    /// Grouping policy (the paper settles on `map2b4l`).
    pub policy: GroupingPolicy,
    /// Device coupling topology.
    pub topology: Topology,
    /// Mapping options (crosstalk-aware by default).
    pub mapping: MappingOptions,
    /// GRAPE solver options.
    pub grape: GrapeOptions,
    /// Latency search bounds for group compilation.
    pub search: LatencySearch,
    /// Similarity function for the MST ordering (`fidelity1` — the
    /// trace-overlap distance — by default; the paper's best performer).
    pub similarity: SimilarityFn,
    /// Warm-start a child only when the *trace-overlap distance*
    /// (`1 − |Tr(P†C)|/d`) between parent and child is below this
    /// threshold; otherwise start from scratch ("if no group is similar
    /// enough, the compilation will start from the pulse of identity
    /// matrix", §V-C). The gate is deliberately uniform across similarity
    /// functions — each function shapes the *tree*, but whether a seed
    /// pulse helps is governed by how close the unitaries are in the
    /// fidelity GRAPE optimizes. Warm starts from dissimilar pulses
    /// actively hurt (the pulse sits in the parent's sharp optimum),
    /// which is also why the paper's inverse-similarity control worsens
    /// iteration counts.
    pub warm_threshold: f64,
}

impl AccQocConfig {
    /// The paper's default setup: Melbourne topology, `map2b4l`, L-BFGS
    /// GRAPE at the 1e-4 fidelity target, `fidelity1` similarity.
    pub fn melbourne() -> Self {
        Self {
            policy: GroupingPolicy::map2b4l(),
            topology: Topology::melbourne(),
            mapping: MappingOptions::default(),
            grape: GrapeOptions::default(),
            search: LatencySearch { min_steps: 8, max_steps: 96, ..LatencySearch::default() },
            similarity: SimilarityFn::TraceOverlap,
            warm_threshold: 0.15,
        }
    }

    /// Same defaults on an arbitrary topology.
    pub fn for_topology(topology: Topology) -> Self {
        Self { topology, ..Self::melbourne() }
    }
}

/// Result of compiling one unique group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupCompilation {
    /// Canonical group identity.
    pub key: UnitaryKey,
    /// Minimal pulse latency (ns).
    pub latency_ns: f64,
    /// GRAPE iterations spent (0 for cache hits).
    pub iterations: usize,
    /// Whether the pulse came from the cache.
    pub covered: bool,
}

/// Coverage statistics (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Group *instances* covered by the cache.
    pub covered: usize,
    /// Total group instances in the program.
    pub total: usize,
}

impl CoverageStats {
    /// `# covered / # groups` (1.0 for empty programs).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// Full result of compiling a program through AccQOC.
#[derive(Debug, Clone)]
pub struct ProgramCompilation {
    /// Overall pulse latency of the program (Algorithm 3), ns.
    pub overall_latency_ns: f64,
    /// Gate-based compilation latency of the same mapped circuit, ns.
    pub gate_based_latency_ns: f64,
    /// Coverage of the pulse cache.
    pub coverage: CoverageStats,
    /// GRAPE iterations spent on uncovered groups (dynamic compile cost).
    pub dynamic_iterations: usize,
    /// Unique uncovered groups compiled.
    pub n_uncovered_unique: usize,
    /// Groups after division and the processed physical circuit.
    pub grouped: GroupedCircuit,
    /// Crosstalk metric of the mapped circuit.
    pub crosstalk: usize,
    /// Swaps inserted by mapping.
    pub swap_count: usize,
}

impl ProgramCompilation {
    /// Latency reduction factor vs gate-based compilation.
    pub fn latency_reduction(&self) -> f64 {
        if self.overall_latency_ns == 0.0 {
            1.0
        } else {
            self.gate_based_latency_ns / self.overall_latency_ns
        }
    }
}

/// The AccQOC compiler: owns the device models and the lazily built
/// single-gate duration table.
pub struct AccQocCompiler {
    config: AccQocConfig,
    models: ModelSet,
    durations: Mutex<Option<GateDurations>>,
}

impl fmt::Debug for AccQocCompiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccQocCompiler")
            .field("policy", &self.config.policy.label())
            .field("similarity", &self.config.similarity)
            .finish_non_exhaustive()
    }
}

impl AccQocCompiler {
    /// Creates a compiler with spin-chain models up to 2 qubits (the
    /// `2bNl` policies never exceed 2).
    pub fn new(config: AccQocConfig) -> Self {
        Self { config, models: ModelSet::spin(2), durations: Mutex::new(None) }
    }

    /// Creates a compiler with a custom model set (e.g. wider models for
    /// the brute-force baseline).
    pub fn with_models(config: AccQocConfig, models: ModelSet) -> Self {
        Self { config, models, durations: Mutex::new(None) }
    }

    /// The configuration.
    pub fn config(&self) -> &AccQocConfig {
        &self.config
    }

    /// The model set.
    pub fn models(&self) -> &ModelSet {
        &self.models
    }

    /// Maps, decomposes, and groups a logical circuit; returns the grouped
    /// circuit, the processed physical circuit, plus mapping stats.
    pub fn front_end(&self, circuit: &Circuit) -> (GroupedCircuit, Circuit, usize, usize) {
        // ccx is never hardware-native; swaps survive until grouping
        // decides their fate per policy.
        let decomposed = circuit.decomposed(false);
        let mapped = map_circuit(&decomposed, &self.config.topology, &self.config.mapping);
        let xtalk = crosstalk_metric(&mapped.circuit, &self.config.topology);
        let (grouped, processed) = divide_circuit(&mapped.circuit, &self.config.policy);
        (grouped, processed, xtalk, mapped.swap_count)
    }

    /// Compiles one canonical unitary to a pulse (binary-searched minimal
    /// latency), optionally warm-started.
    ///
    /// # Errors
    ///
    /// [`AccQocError::GroupTooWide`] for oversized groups;
    /// [`AccQocError::CompileFailed`] when no feasible pulse exists within
    /// the latency cap.
    pub fn compile_unitary(
        &self,
        target: &Mat,
        n_qubits: usize,
        warm: Option<&Pulse>,
    ) -> Result<LatencyResult, AccQocError> {
        if n_qubits > self.models.max_qubits() {
            return Err(AccQocError::GroupTooWide { n_qubits, max: self.models.max_qubits() });
        }
        let model = self.models.for_qubits(n_qubits);
        let mut opts = self.config.grape.clone();
        let mut search = self.config.search.clone();
        if let Some(p) = warm {
            opts.init = InitStrategy::Warm(p.clone());
            // Similar groups have similar latencies: start the search at
            // the parent's slice count.
            if p.n_steps() > 0 {
                search.initial_guess = Some(p.n_steps());
            }
        }
        search.min_steps = search
            .min_steps
            .max((model.min_time_estimate_ns() / model.dt_ns()) as usize / 2)
            .max(1);
        find_minimal_latency(model, target, &opts, &search)
            .map_err(|source| AccQocError::CompileFailed { n_qubits, source })
    }

    /// Compiles a whole program: cache lookups for covered groups,
    /// MST-ordered warm-started compilation for the rest (results are
    /// added to `cache`), then the Algorithm 3 latency DP and the
    /// gate-based baseline.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn compile_program(
        &self,
        circuit: &Circuit,
        cache: &mut PulseCache,
    ) -> Result<ProgramCompilation, AccQocError> {
        let (grouped, processed, crosstalk, swap_count) = self.front_end(circuit);
        let dedup = dedup_groups(&grouped.groups);

        // Canonical unitaries per unique group.
        let canonical: Vec<(Mat, usize)> = dedup
            .unique
            .iter()
            .map(|g| {
                let u = g.unitary();
                let (_, perm) = UnitaryKey::canonical_with_permutation(&u, g.n_qubits());
                (accqoc_circuit::permute_qubits(&u, &perm, g.n_qubits()), g.n_qubits())
            })
            .collect();

        // Split into covered / uncovered.
        let mut uncovered: Vec<usize> = Vec::new();
        for (i, key) in dedup.keys.iter().enumerate() {
            if !cache.contains(key) {
                uncovered.push(i);
            }
        }
        let n_uncovered_unique = uncovered.len();

        // Dynamic compilation of uncovered groups in MST order.
        let mut dynamic_iterations = 0usize;
        if !uncovered.is_empty() {
            let graph = SimilarityGraph::build(
                uncovered.iter().map(|&i| canonical[i].0.clone()).collect(),
                self.config.similarity,
            );
            let order = mst_compile_order(&graph);
            dynamic_iterations +=
                self.compile_in_order(&order, &uncovered, &canonical, &dedup.keys, cache)?;
        }

        // Latency per group instance through the cache.
        let latencies: Vec<f64> = dedup
            .assignment
            .iter()
            .map(|&u| {
                cache
                    .lookup(&dedup.keys[u])
                    .expect("every unique group is cached by now")
                    .latency_ns
            })
            .collect();
        let overall_latency_ns = grouped.overall_latency(|i| latencies[i]);

        // Coverage counts instances against the cache state *before* this
        // program's dynamic compilation.
        let covered_instances = dedup
            .assignment
            .iter()
            .filter(|&&u| !uncovered.contains(&u))
            .count();

        let gate_based_latency_ns = self.gate_based_latency(&processed);

        Ok(ProgramCompilation {
            overall_latency_ns,
            gate_based_latency_ns,
            coverage: CoverageStats { covered: covered_instances, total: dedup.assignment.len() },
            dynamic_iterations,
            n_uncovered_unique,
            grouped,
            crosstalk,
            swap_count,
        })
    }

    /// Compiles groups following a compile order, warm-starting children
    /// from their MST parents. Returns total iterations.
    fn compile_in_order(
        &self,
        order: &CompileOrder,
        vertices: &[usize],
        canonical: &[(Mat, usize)],
        keys: &[UnitaryKey],
        cache: &mut PulseCache,
    ) -> Result<usize, AccQocError> {
        let mut pulses: HashMap<usize, Pulse> = HashMap::new();
        let mut total = 0usize;
        for step in &order.steps {
            let unique_idx = vertices[step.vertex];
            let (target, n_qubits) = &canonical[unique_idx];
            let warm = step.parent.filter(|&p| {
                let parent_u = &canonical[vertices[p]].0;
                warm_start_allowed(parent_u, target, self.config.warm_threshold)
            });
            let warm = warm.and_then(|p| pulses.get(&p));
            let result = self.compile_unitary(target, *n_qubits, warm)?;
            total += result.total_iterations;
            pulses.insert(step.vertex, result.outcome.pulse.clone());
            cache.insert(
                keys[unique_idx].clone(),
                CachedPulse {
                    pulse: result.outcome.pulse,
                    latency_ns: result.latency_ns,
                    iterations: result.total_iterations,
                    n_qubits: *n_qubits,
                },
            );
        }
        Ok(total)
    }

    /// Coverage of a program against a cache, *without* compiling
    /// anything (paper Figure 7 measures exactly this).
    pub fn coverage_of(&self, circuit: &Circuit, cache: &PulseCache) -> CoverageStats {
        let (grouped, _, _, _) = self.front_end(circuit);
        let dedup = dedup_groups(&grouped.groups);
        let covered = dedup
            .assignment
            .iter()
            .filter(|&&u| cache.contains(&dedup.keys[u]))
            .count();
        CoverageStats { covered, total: dedup.assignment.len() }
    }

    /// Gate-based compilation latency of a processed physical circuit:
    /// weighted critical path with device-derived per-gate pulse
    /// durations (paper §II-C).
    pub fn gate_based_latency(&self, processed: &Circuit) -> f64 {
        let durations = self.gate_durations();
        let dag = CircuitDag::from_circuit(processed);
        dag.critical_path(|i| durations.gate_duration(&dag.node(i).gate))
    }

    /// The single-gate duration table, compiled on first use: each basis
    /// gate gets a GRAPE-minimal pulse on this device, exactly how the
    /// gate-pulse lookup table of Figure 3 would be calibrated.
    pub fn gate_durations(&self) -> GateDurations {
        let mut guard = self.durations.lock();
        if let Some(d) = guard.as_ref() {
            return d.clone();
        }
        let table = self.build_gate_durations();
        *guard = Some(table.clone());
        table
    }

    fn build_gate_durations(&self) -> GateDurations {
        use GateKind::*;
        let mut map: BTreeMap<GateKind, f64> = BTreeMap::new();
        let single: &[(GateKind, Gate)] = &[
            (X, Gate::X(0)),
            (Y, Gate::Y(0)),
            (Z, Gate::Z(0)),
            (H, Gate::H(0)),
            (S, Gate::S(0)),
            (Sdg, Gate::Sdg(0)),
            (T, Gate::T(0)),
            (Tdg, Gate::Tdg(0)),
            (Rx, Gate::Rx(0, std::f64::consts::FRAC_PI_2)),
            (Ry, Gate::Ry(0, std::f64::consts::FRAC_PI_2)),
            (Rz, Gate::Rz(0, std::f64::consts::FRAC_PI_2)),
            (U1, Gate::U1(0, std::f64::consts::FRAC_PI_2)),
            (U2, Gate::U2(0, 0.3, 0.9)),
            (U3, Gate::U3(0, 1.1, 0.4, -0.7)),
        ];
        for (kind, gate) in single {
            let target = gate.matrix();
            let latency = self
                .compile_unitary(&target, 1, None)
                .map(|r| r.latency_ns)
                .unwrap_or(f64::INFINITY);
            map.insert(*kind, latency);
        }
        let double: &[(GateKind, Gate)] =
            &[(Cx, Gate::Cx(0, 1)), (Cz, Gate::Cz(0, 1)), (Swap, Gate::Swap(0, 1))];
        for (kind, gate) in double {
            let target = gate.matrix();
            let latency = self
                .compile_unitary(&target, 2, None)
                .map(|r| r.latency_ns)
                .unwrap_or(f64::INFINITY);
            map.insert(*kind, latency);
        }
        let default = map.values().copied().fold(0.0, f64::max);
        GateDurations::from_single_gate_pulses(map, default)
    }
}

/// `true` when a parent pulse may seed a child: the unitaries are close
/// in the phase-invariant trace overlap GRAPE optimizes.
pub fn warm_start_allowed(parent: &Mat, child: &Mat, threshold: f64) -> bool {
    SimilarityFn::TraceOverlap.distance(parent, child) <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_hw::Topology;

    fn tiny_compiler() -> AccQocCompiler {
        let mut config = AccQocConfig::for_topology(Topology::linear(3));
        config.grape.stop.max_iters = 200;
        AccQocCompiler::new(config)
    }

    #[test]
    fn model_set_arity_dispatch() {
        let ms = ModelSet::spin(2);
        assert_eq!(ms.for_qubits(1).dim(), 2);
        assert_eq!(ms.for_qubits(2).dim(), 4);
        assert_eq!(ms.max_qubits(), 2);
    }

    #[test]
    fn compile_unitary_rejects_wide_groups() {
        let c = tiny_compiler();
        let e = c.compile_unitary(&Mat::identity(8), 3, None).unwrap_err();
        assert!(matches!(e, AccQocError::GroupTooWide { n_qubits: 3, max: 2 }));
        assert!(e.to_string().contains("3 qubits"));
    }

    #[test]
    fn coverage_rate_edge_cases() {
        assert_eq!(CoverageStats { covered: 0, total: 0 }.rate(), 1.0);
        assert!((CoverageStats { covered: 3, total: 4 }.rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn compile_small_program_end_to_end() {
        let compiler = tiny_compiler();
        let mut cache = PulseCache::new();
        let circuit = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1), Gate::Cx(1, 2)]);
        let result = compiler.compile_program(&circuit, &mut cache).unwrap();

        assert!(result.overall_latency_ns > 0.0);
        assert!(result.gate_based_latency_ns > 0.0);
        // First compilation: nothing covered.
        assert_eq!(result.coverage.covered, 0);
        assert!(result.dynamic_iterations > 0);
        assert!(!cache.is_empty());

        // QOC groups beat gate-by-gate concatenation.
        assert!(
            result.latency_reduction() > 1.0,
            "reduction {} (QOC {} vs gate {})",
            result.latency_reduction(),
            result.overall_latency_ns,
            result.gate_based_latency_ns
        );

        // Recompilation is fully covered and free.
        let again = compiler.compile_program(&circuit, &mut cache).unwrap();
        assert_eq!(again.coverage.covered, again.coverage.total);
        assert_eq!(again.dynamic_iterations, 0);
        assert!((again.overall_latency_ns - result.overall_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn gate_duration_table_is_sane() {
        let compiler = tiny_compiler();
        let d = compiler.gate_durations();
        // X needs its full π rotation: 10 ns at our drive cap.
        assert!((d.duration(GateKind::X) - 10.0).abs() < 1.5);
        // Phase-type gates are cheaper than X.
        assert!(d.duration(GateKind::T) <= d.duration(GateKind::X));
        // Entangling gates cost more than single-qubit ones.
        assert!(d.duration(GateKind::Cx) > d.duration(GateKind::H));
        // Cached on second call (identical values).
        let d2 = compiler.gate_durations();
        assert_eq!(d.duration(GateKind::Cx), d2.duration(GateKind::Cx));
    }
}
