//! Balanced MST partition for parallel compilation (paper §V-D).
//!
//! The MST's "soft" dependencies let training parallelize: partition the
//! tree into `k` connected parts of similar total work and give each part
//! to a worker. The paper uses METIS on a node-weighted transform of the
//! MST — "following the optimal sequence, we shift the cost of each edge
//! to the weight of its newly added neighboring node; the first node in
//! the sequence is specially assigned a value proportional to the time it
//! takes to train it from the identity matrix" (Figure 9c). METIS is
//! replaced here by an exact-enough greedy tree partitioner: repeatedly
//! split the heaviest part at the edge that best balances it.

use crate::mst::CompileOrder;

/// The node-weighted tree derived from a compile order.
#[derive(Debug, Clone)]
pub struct WeightedTree {
    /// `weight[v]` = estimated training cost of vertex `v` (its MST edge
    /// weight shifted onto it; scratch starts get their identity-edge
    /// weight).
    pub weights: Vec<f64>,
    /// `parent[v]` = tree parent (`None` for roots/scratch starts).
    pub parents: Vec<Option<usize>>,
}

impl WeightedTree {
    /// Builds the weighted tree from a compile order (the Figure 9 b→c
    /// step). Vertices keep their graph indices.
    pub fn from_order(order: &CompileOrder, n_vertices: usize) -> Self {
        let mut weights = vec![0.0; n_vertices];
        let mut parents = vec![None; n_vertices];
        for step in &order.steps {
            // Edge weights are similarity distances — proportional to the
            // expected warm-start training cost; add a baseline unit so
            // even a zero-distance clone costs something to verify.
            weights[step.vertex] = step.weight.min(1e12) + 1.0;
            parents[step.vertex] = step.parent;
        }
        Self { weights, parents }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when the tree has no vertices.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Children lists (derived).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.len()];
        for (v, p) in self.parents.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }

    /// Total weight.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }
}

/// A partition of the tree into connected parts.
#[derive(Debug, Clone)]
pub struct TreePartition {
    /// `part[v]` = part index of vertex `v`.
    pub part_of: Vec<usize>,
    /// Number of parts.
    pub n_parts: usize,
}

impl TreePartition {
    /// Vertices of each part.
    pub fn parts(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            out[p].push(v);
        }
        out
    }

    /// Total weight per part.
    pub fn loads(&self, tree: &WeightedTree) -> Vec<f64> {
        let mut loads = vec![0.0; self.n_parts];
        for (v, &p) in self.part_of.iter().enumerate() {
            loads[p] += tree.weights[v];
        }
        loads
    }

    /// Makespan under perfect parallelism across parts: the heaviest
    /// part's total node weight bounds the parallel compile time. This is
    /// the *estimated* (similarity-weight) makespan of the plan; the
    /// realized iteration makespan lands in
    /// [`crate::ParallelStats::makespan_iterations`], and is never larger
    /// than [`crate::ParallelStats::total_iterations`] (cut MST edges
    /// degrade warm starts to scratch starts — extra work, spread over
    /// more workers).
    pub fn makespan(&self, tree: &WeightedTree) -> f64 {
        self.loads(tree).into_iter().fold(0.0, f64::max)
    }

    /// Balance ratio `max load / average load` (1.0 = perfect).
    pub fn balance(&self, tree: &WeightedTree) -> f64 {
        let loads = self.loads(tree);
        let max = loads.iter().copied().fold(0.0, f64::max);
        let avg = loads.iter().sum::<f64>() / loads.len().max(1) as f64;
        if avg == 0.0 {
            1.0
        } else {
            max / avg
        }
    }
}

/// Partitions the weighted tree into at most `k` connected parts with a
/// greedy heaviest-part splitting heuristic (METIS stand-in):
///
/// 1. every tree component starts as one part;
/// 2. while parts < k: take the heaviest part and cut the single edge
///    whose removal best balances the two halves;
/// 3. stop early when no cut improves the makespan.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use accqoc::{partition_tree, WeightedTree};
///
/// let tree = WeightedTree {
///     weights: vec![4.0, 1.0, 1.0, 4.0],
///     parents: vec![None, Some(0), Some(1), Some(2)],
/// };
/// let p = partition_tree(&tree, 2);
/// assert_eq!(p.n_parts, 2);
/// assert!(p.makespan(&tree) <= 6.0);
/// ```
pub fn partition_tree(tree: &WeightedTree, k: usize) -> TreePartition {
    assert!(k >= 1, "need at least one part");
    let n = tree.len();
    if n == 0 {
        return TreePartition {
            part_of: vec![],
            n_parts: 0,
        };
    }

    // Initial parts = connected components (roots and their subtrees).
    let mut part_of = vec![usize::MAX; n];
    let children = tree.children();
    let mut n_parts = 0usize;
    for v in 0..n {
        if tree.parents[v].is_none() {
            // BFS the subtree.
            let mut stack = vec![v];
            while let Some(u) = stack.pop() {
                part_of[u] = n_parts;
                stack.extend(children[u].iter().copied());
            }
            n_parts += 1;
        }
    }
    debug_assert!(part_of.iter().all(|&p| p != usize::MAX));

    // Cut edges (child side becomes a new part) until k parts or no gain.
    while n_parts < k {
        let mut loads = vec![0.0; n_parts];
        for v in 0..n {
            loads[part_of[v]] += tree.weights[v];
        }
        let heaviest = (0..n_parts)
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .expect("non-empty");
        let heavy_load = loads[heaviest];

        // Candidate cuts: edges inside the heaviest part. Choose the one
        // whose subtree weight is closest to half the part's load.
        let mut best: Option<(usize, f64)> = None; // (child vertex, |half − w|)
        for v in 0..n {
            if part_of[v] != heaviest || tree.parents[v].is_none() {
                continue;
            }
            // Subtree weight restricted to this part equals subtree[v]
            // because parts are connected subtrees cut from below.
            let w = subtree_in_part(tree, &children, &part_of, v);
            if w <= 0.0 || w >= heavy_load {
                continue;
            }
            let score = (heavy_load / 2.0 - w).abs();
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((v, score));
            }
        }
        let Some((cut, _)) = best else {
            break; // heaviest part is a single vertex (or unsplittable)
        };
        // Move the cut subtree (within the part) to a new part.
        let new_part = n_parts;
        let mut stack = vec![cut];
        while let Some(u) = stack.pop() {
            part_of[u] = new_part;
            stack.extend(children[u].iter().filter(|&&c| part_of[c] == heaviest));
        }
        n_parts += 1;
    }

    TreePartition { part_of, n_parts }
}

fn subtree_in_part(
    tree: &WeightedTree,
    children: &[Vec<usize>],
    part_of: &[usize],
    root: usize,
) -> f64 {
    let part = part_of[root];
    let mut total = 0.0;
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        total += tree.weights[v];
        stack.extend(children[v].iter().filter(|&&c| part_of[c] == part));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::CompileStep;

    fn chain(weights: &[f64]) -> WeightedTree {
        WeightedTree {
            weights: weights.to_vec(),
            parents: (0..weights.len())
                .map(|i| if i == 0 { None } else { Some(i - 1) })
                .collect(),
        }
    }

    #[test]
    fn from_order_shifts_edge_weights() {
        let order = CompileOrder {
            steps: vec![
                CompileStep {
                    vertex: 0,
                    parent: None,
                    weight: 3.0,
                },
                CompileStep {
                    vertex: 1,
                    parent: Some(0),
                    weight: 0.5,
                },
            ],
        };
        let tree = WeightedTree::from_order(&order, 2);
        assert_eq!(tree.weights, vec![4.0, 1.5]); // +1 baseline each
        assert_eq!(tree.parents, vec![None, Some(0)]);
    }

    #[test]
    fn single_part_when_k_is_one() {
        let tree = chain(&[1.0, 2.0, 3.0]);
        let p = partition_tree(&tree, 1);
        assert_eq!(p.n_parts, 1);
        assert!((p.makespan(&tree) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_way_split_balances_chain() {
        let tree = chain(&[1.0; 8]);
        let p = partition_tree(&tree, 2);
        assert_eq!(p.n_parts, 2);
        let loads = p.loads(&tree);
        assert!((loads[0] - 4.0).abs() < 1.01, "loads {loads:?}");
        assert!(p.balance(&tree) < 1.3);
    }

    #[test]
    fn parts_are_connected() {
        let tree = chain(&[1.0, 5.0, 1.0, 1.0, 5.0, 1.0]);
        let p = partition_tree(&tree, 3);
        // Connectivity on a chain means every part is a contiguous range.
        for part in p.parts() {
            if part.len() <= 1 {
                continue;
            }
            let min = *part.iter().min().unwrap();
            let max = *part.iter().max().unwrap();
            assert_eq!(max - min + 1, part.len(), "part {part:?} not contiguous");
        }
    }

    #[test]
    fn makespan_never_increases_with_more_parts() {
        let tree = chain(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut prev = f64::INFINITY;
        for k in 1..=5 {
            let m = partition_tree(&tree, k).makespan(&tree);
            assert!(m <= prev + 1e-12, "k={k}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn forest_with_multiple_roots() {
        // Two scratch-start components.
        let tree = WeightedTree {
            weights: vec![2.0, 1.0, 3.0, 1.0],
            parents: vec![None, Some(0), None, Some(2)],
        };
        let p = partition_tree(&tree, 2);
        assert_eq!(p.n_parts, 2);
        // Components must not be merged.
        assert_ne!(p.part_of[0], p.part_of[2]);
    }

    #[test]
    fn empty_tree() {
        let tree = WeightedTree {
            weights: vec![],
            parents: vec![],
        };
        let p = partition_tree(&tree, 4);
        assert_eq!(p.n_parts, 0);
    }

    #[test]
    fn more_parts_than_vertices_saturates() {
        let tree = chain(&[1.0, 1.0]);
        let p = partition_tree(&tree, 10);
        assert!(p.n_parts <= 2);
    }
}
