//! Online serving: compile programs as they arrive, against the live
//! pulse library.
//!
//! Batch pre-compilation covers the profiled third of a suite; the
//! serving path covers everything that arrives afterwards. Each unique
//! group of an arriving program is resolved in order:
//!
//! 1. **hit** — the library already holds the canonical key: the pulse
//!    is reused as-is (and its recency refreshed);
//! 2. **warm miss** — the fingerprint index proposes the nearest cached
//!    neighbors, the exact similarity function re-scores the short list,
//!    and if the best neighbor passes the trace-overlap warm-start gate
//!    (the same [`warm_start_allowed`] rule the MST batch engine uses)
//!    GRAPE starts from its pulse;
//! 3. **scratch miss** — no neighbor (empty library, new dimension, or
//!    nothing similar enough): GRAPE starts from scratch — never an
//!    error.
//!
//! Every compiled pulse is inserted back (fingerprint-indexed, under the
//! capacity bound), so a stream of similar programs converges onto a hot
//! working set; [`LibraryStats`](crate::LibraryStats) counts hits,
//! misses, and the warm/scratch split.

use accqoc_circuit::{Circuit, UnitaryKey};

use crate::cache::{hex_decode, hex_encode, CachedPulse};
use crate::compile::warm_start_allowed;
use crate::error::Result;
use crate::json::{self, JsonError, JsonValue};
use crate::session::{CoverageStats, Session};

/// Configuration of the online serving path.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fingerprint candidates retrieved per cache miss before exact
    /// re-scoring. Larger values recover more warm starts at slightly
    /// higher lookup cost; the default (16) saturates the golden-suite
    /// warm-start share.
    pub candidates: usize,
    /// Warm-started compiles anchor the latency binary search at the
    /// seed: the search floor is raised to `seed_steps × anchor` (never
    /// above the seed itself), pruning the deep-infeasible probes that
    /// dominate a cold search. Similar groups have similar minimal
    /// latencies — the premise of the paper's §V-B — so the pruned
    /// region is (almost) never where the optimum lives. At the default
    /// `1.0` the search *trusts* the seed's slice count: it confirms the
    /// seed converges, then walks downward one slice at a time while the
    /// shorter probe keeps converging (each step warm-started from the
    /// last), stopping at the first failure — so near-identical
    /// neighbors, like adjacent points of a parameterized θ-sweep, cost
    /// two GRAPE runs instead of a whole probe cascade, and a beatable
    /// seed descends to the true minimum without re-opening the
    /// bisection over the deep-infeasible region. `0.0` disables the
    /// anchor and reproduces the batch search exactly.
    pub search_anchor: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            candidates: 16,
            search_anchor: 1.0,
        }
    }
}

/// How one unique group of a served program was resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedGroup {
    /// Canonical group key.
    pub key: UnitaryKey,
    /// Qubits the group spans.
    pub n_qubits: usize,
    /// `true` when the library covered the key (no compile).
    pub hit: bool,
    /// The neighbor whose pulse warm-started the compile, when one
    /// passed the warm-start gate.
    pub warm_from: Option<UnitaryKey>,
    /// GRAPE iterations spent (0 on hits).
    pub iterations: usize,
    /// Pulse latency of the group, ns.
    pub latency_ns: f64,
}

/// Report of serving one program through the pulse library.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Overall pulse latency of the program (Algorithm 3 DP), ns.
    pub overall_latency_ns: f64,
    /// Gate-based compilation latency of the same circuit, ns.
    pub gate_based_latency_ns: f64,
    /// Instance coverage against the library at arrival time.
    pub coverage: CoverageStats,
    /// Per-unique-group serving outcomes, in the front end's target
    /// order (the canonical order every deployment shape — one process
    /// or a width-partitioned router — reports identically; the serve
    /// *sequence* shows through each group's `warm_from` lineage).
    pub groups: Vec<ServedGroup>,
    /// Unique groups compiled (misses).
    pub n_compiled: usize,
    /// Compiled groups that were warm-started.
    pub n_warm_started: usize,
    /// GRAPE iterations spent on this program.
    pub dynamic_iterations: usize,
}

impl ServeReport {
    /// Latency reduction factor vs gate-based compilation.
    pub fn latency_reduction(&self) -> f64 {
        if self.overall_latency_ns == 0.0 {
            1.0
        } else {
            self.gate_based_latency_ns / self.overall_latency_ns
        }
    }

    /// Fraction of this program's compiles that were warm-started
    /// (0.0 when nothing was compiled).
    pub fn warm_share(&self) -> f64 {
        if self.n_compiled == 0 {
            0.0
        } else {
            self.n_warm_started as f64 / self.n_compiled as f64
        }
    }

    /// The report as a JSON value — the payload the serving daemon puts
    /// on the wire, carrying exactly the counters the in-process path
    /// reports (keys serialize as hex, like the pulse-cache artifact).
    pub fn to_json_value(&self) -> JsonValue {
        let groups = self
            .groups
            .iter()
            .map(|g| {
                JsonValue::Object(vec![
                    (
                        "key".into(),
                        JsonValue::String(hex_encode(g.key.as_bytes())),
                    ),
                    ("n_qubits".into(), JsonValue::Number(g.n_qubits as f64)),
                    ("hit".into(), JsonValue::Bool(g.hit)),
                    (
                        "warm_from".into(),
                        match &g.warm_from {
                            Some(k) => JsonValue::String(hex_encode(k.as_bytes())),
                            None => JsonValue::Null,
                        },
                    ),
                    ("iterations".into(), JsonValue::Number(g.iterations as f64)),
                    ("latency_ns".into(), JsonValue::Number(g.latency_ns)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "overall_latency_ns".into(),
                JsonValue::Number(self.overall_latency_ns),
            ),
            (
                "gate_based_latency_ns".into(),
                JsonValue::Number(self.gate_based_latency_ns),
            ),
            (
                "coverage_covered".into(),
                JsonValue::Number(self.coverage.covered as f64),
            ),
            (
                "coverage_total".into(),
                JsonValue::Number(self.coverage.total as f64),
            ),
            (
                "n_compiled".into(),
                JsonValue::Number(self.n_compiled as f64),
            ),
            (
                "n_warm_started".into(),
                JsonValue::Number(self.n_warm_started as f64),
            ),
            (
                "dynamic_iterations".into(),
                JsonValue::Number(self.dynamic_iterations as f64),
            ),
            ("groups".into(), JsonValue::Array(groups)),
        ])
    }

    /// Serializes via [`ServeReport::to_json_value`] (single line, no
    /// trailing newline — ready for the daemon's newline-delimited
    /// framing).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_compact()
    }

    /// Reconstructs a report from [`ServeReport::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Json`] when a field is missing or mistyped.
    pub fn from_json_value(value: &JsonValue) -> Result<Self> {
        let malformed = |message: &str| JsonError {
            message: format!("serve report: {message}"),
            offset: 0,
        };
        let num = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| malformed(&format!("missing number `{name}`")))
        };
        let count = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| malformed(&format!("missing count `{name}`")))
        };
        let groups_json = value
            .get("groups")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| malformed("missing `groups` array"))?;
        let mut groups = Vec::with_capacity(groups_json.len());
        for g in groups_json {
            let key_hex = g
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| malformed("group missing `key`"))?;
            let warm_from = match g.get("warm_from") {
                Some(JsonValue::Null) => None,
                Some(JsonValue::String(hex)) => Some(UnitaryKey::from_bytes(hex_decode(hex)?)),
                _ => return Err(malformed("group missing `warm_from`").into()),
            };
            groups.push(ServedGroup {
                key: UnitaryKey::from_bytes(hex_decode(key_hex)?),
                n_qubits: g
                    .get("n_qubits")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| malformed("group missing `n_qubits`"))?,
                hit: match g.get("hit") {
                    Some(JsonValue::Bool(b)) => *b,
                    _ => return Err(malformed("group missing `hit`").into()),
                },
                warm_from,
                iterations: g
                    .get("iterations")
                    .and_then(JsonValue::as_usize)
                    .ok_or_else(|| malformed("group missing `iterations`"))?,
                latency_ns: g
                    .get("latency_ns")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| malformed("group missing `latency_ns`"))?,
            });
        }
        Ok(Self {
            overall_latency_ns: num("overall_latency_ns")?,
            gate_based_latency_ns: num("gate_based_latency_ns")?,
            coverage: CoverageStats {
                covered: count("coverage_covered")?,
                total: count("coverage_total")?,
            },
            groups,
            n_compiled: count("n_compiled")?,
            n_warm_started: count("n_warm_started")?,
            dynamic_iterations: count("dynamic_iterations")?,
        })
    }

    /// Parses a report serialized by [`ServeReport::to_json`].
    ///
    /// # Errors
    ///
    /// [`crate::Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self> {
        Self::from_json_value(&json::parse(text)?)
    }
}

/// Serves one program against the session's pulse library. See the
/// module docs for the hit / warm-miss / scratch-miss resolution; this
/// is the implementation behind [`Session::serve_program`].
///
/// The program's latency is folded from the pulses resolved *during*
/// this call, so a bounded library that evicts one of this program's own
/// groups mid-serve still reports correct latencies.
///
/// # Errors
///
/// Propagates group-compilation failures ([`Error::CompileFailed`],
/// [`Error::GroupTooWide`], [`Error::EmptyGroup`]).
///
/// [`Error::CompileFailed`]: crate::Error::CompileFailed
/// [`Error::GroupTooWide`]: crate::Error::GroupTooWide
/// [`Error::EmptyGroup`]: crate::Error::EmptyGroup
pub fn serve_program(
    session: &Session,
    circuit: &Circuit,
    options: &ServeOptions,
) -> Result<ServeReport> {
    serve_grouped(session, &session.front_end(circuit), options)
}

/// [`serve_program`] for callers that already ran the front end — the
/// serving daemon runs it once to learn the group keys it must claim
/// for in-flight coalescing, then serves from the same report instead
/// of re-deriving decompose/map/group per request. This is the
/// implementation behind [`Session::serve_grouped`].
///
/// # Errors
///
/// Same as [`serve_program`].
///
/// [`Session::serve_grouped`]: crate::Session::serve_grouped
pub fn serve_grouped(
    session: &Session,
    grouped: &crate::session::GroupReport,
    options: &ServeOptions,
) -> Result<ServeReport> {
    serve_grouped_subset(session, grouped, options, None)
}

/// [`serve_grouped`](crate::Session::serve_grouped) restricted to the
/// unique groups whose width is in
/// `only_qubits` — the shard-side entry point of the sharded serving
/// tier. A worker that owns a subset of dimension classes serves *only*
/// those groups, and because warm starts are strictly width-local (the
/// fingerprint index never crosses a width boundary), the per-width
/// serving state — hit/miss sequence, warm-start picks, hub rounds,
/// compiled bytes — is identical to what a single process serving the
/// whole program would produce. Summing the subset reports of a
/// disjoint width partition therefore reconstructs the unsharded
/// counters exactly.
///
/// Subset reports carry `overall_latency_ns` and
/// `gate_based_latency_ns` of `0.0` (those are program-level numbers no
/// single shard can see; the router folds the true overall latency from
/// the merged per-group latencies), and their `coverage.total` counts
/// only the owned instances, so coverage also sums exactly.
///
/// `only_qubits: None` serves everything — byte-identical to
/// [`serve_grouped`](crate::Session::serve_grouped).
///
/// # Errors
///
/// Same as [`serve_program`](crate::Session::serve_program).
pub fn serve_grouped_subset(
    session: &Session,
    grouped: &crate::session::GroupReport,
    options: &ServeOptions,
    only_qubits: Option<&[usize]>,
) -> Result<ServeReport> {
    let library = session.library();
    let n_unique = grouped.targets.len();
    let owned: Vec<bool> = grouped
        .targets
        .iter()
        .map(|t| only_qubits.is_none_or(|widths| widths.contains(&t.n_qubits)))
        .collect();

    let mut per_unique: Vec<f64> = vec![0.0; n_unique];
    let mut covered_unique: Vec<bool> = vec![false; n_unique];
    let mut groups: Vec<ServedGroup> = Vec::with_capacity(n_unique);
    // Leased, not allocated: the serving daemon calls this per request,
    // and the pooled workspace arrives with its solver buffers already
    // grown by earlier requests of the same dimensions.
    let mut ws = session.lease_workspace();
    let mut dynamic_iterations = 0usize;

    // Pass 1: exact key hits.
    let mut missing: Vec<usize> = Vec::new();
    for (i, target) in grouped.targets.iter().enumerate() {
        if !owned[i] {
            continue;
        }
        if let Some(entry) = library.get(&target.key) {
            library.touch(&target.key);
            library.record_hit();
            per_unique[i] = entry.latency_ns;
            covered_unique[i] = true;
            groups.push(ServedGroup {
                key: target.key.clone(),
                n_qubits: target.n_qubits,
                hit: true,
                warm_from: None,
                iterations: 0,
                latency_ns: entry.latency_ns,
            });
        } else {
            missing.push(i);
        }
    }

    // Pass 2: misses, nearest-first. Each compiled pulse is inserted
    // before the next pick, so a program's own groups seed each other —
    // the greedy online analogue of the batch engine's Prim order
    // (which also always extends the tree by the cheapest edge). When
    // no miss has a neighbor inside the warm-start gate, the round is a
    // forced scratch compile; it picks the *hub* — the miss that sits
    // within the gate of the most other misses — so one scratch buys
    // the largest downstream warm harvest. An empty library (or a new
    // dimension) is just a stream of such rounds — never an error.
    let gate = session.config().warm_threshold;
    let mut scratch = crate::similarity::SimilarityScratch::new();
    // A miss's query fingerprint never changes across rounds — compute
    // each once, not O(m²) times over the re-query loop.
    let fingerprints: Vec<crate::UnitaryFingerprint> = grouped
        .targets
        .iter()
        .map(|t| crate::UnitaryFingerprint::of(&t.unitary, t.n_qubits))
        .collect();
    while !missing.is_empty() {
        // Nearest *gated* candidate: the warm-start gate (the exact
        // trace-overlap rule the MST batch engine applies) is checked
        // per miss, so a viable warm start is never lost to a
        // gate-failing pick that merely ranked closer under the
        // configured similarity function.
        let mut pick = 0usize;
        let mut pick_neighbor: Option<crate::library::NearestPulse> = None;
        let mut pick_distance = f64::INFINITY;
        for (slot, &i) in missing.iter().enumerate() {
            let target = &grouped.targets[i];
            let Some(neighbor) = library.nearest_by_fingerprint(
                &fingerprints[i],
                &target.unitary,
                options.candidates,
                session.config().similarity,
            ) else {
                continue;
            };
            if !warm_start_allowed(&neighbor.unitary, &target.unitary, gate) {
                continue;
            }
            // Strict `<` keeps the earliest target on ties.
            if neighbor.distance < pick_distance {
                pick = slot;
                pick_distance = neighbor.distance;
                pick_neighbor = Some(neighbor);
            }
        }
        if pick_neighbor.is_none() {
            // Forced scratch round: serve the hub — the miss within the
            // gate of the most other misses (ties and the no-edge case
            // keep the earliest target).
            let mut best_degree = 0usize;
            for (slot, &i) in missing.iter().enumerate() {
                let degree = missing
                    .iter()
                    .filter(|&&j| {
                        j != i
                            && grouped.targets[j].n_qubits == grouped.targets[i].n_qubits
                            && crate::similarity::SimilarityFn::TraceOverlap.distance_with(
                                &grouped.targets[i].unitary,
                                &grouped.targets[j].unitary,
                                &mut scratch,
                            ) <= gate
                    })
                    .count();
                if degree > best_degree {
                    best_degree = degree;
                    pick = slot;
                }
            }
        }
        let i = missing.remove(pick);
        let target = &grouped.targets[i];
        let warm = pick_neighbor.as_ref();
        let result = session.serve_compile(
            &target.unitary,
            target.n_qubits,
            warm.map(|n| &n.pulse),
            options.search_anchor,
            &mut ws,
        )?;
        let warm_from = warm.map(|n| n.key.clone());
        library.record_compile(warm_from.is_some(), result.total_iterations);
        library.insert_indexed(
            target.key.clone(),
            &target.unitary,
            CachedPulse {
                pulse: result.outcome.pulse,
                latency_ns: result.latency_ns,
                iterations: result.total_iterations,
                n_qubits: target.n_qubits,
            },
        );
        dynamic_iterations += result.total_iterations;
        per_unique[i] = result.latency_ns;
        groups.push(ServedGroup {
            key: target.key.clone(),
            n_qubits: target.n_qubits,
            hit: false,
            warm_from,
            iterations: result.total_iterations,
            latency_ns: result.latency_ns,
        });
    }

    let covered = grouped
        .assignment
        .iter()
        .filter(|&&u| covered_unique[u])
        .count();
    let total = grouped.assignment.iter().filter(|&&u| owned[u]).count();
    // Program-level latencies exist only for a whole-program serve: a
    // width subset cannot see the other shards' group latencies, so the
    // router folds the overall number from the merged per-group results.
    let (overall_latency_ns, gate_based_latency_ns) = if only_qubits.is_none() {
        let per_instance: Vec<f64> = grouped.assignment.iter().map(|&u| per_unique[u]).collect();
        (
            grouped.grouped.overall_latency(|i| per_instance[i]),
            session.gate_based_latency(&grouped.processed),
        )
    } else {
        (0.0, 0.0)
    };

    // Canonical report order: the front end's target order, not the
    // greedy pick order. The pick order interleaves widths by live
    // similarity distances, which no single shard of a width-partitioned
    // deployment can observe — target order is the one order a router
    // can reassemble byte-identically from per-shard reports. The serve
    // *sequence* still shows through `warm_from` lineage.
    let order: std::collections::HashMap<&UnitaryKey, usize> = grouped
        .targets
        .iter()
        .enumerate()
        .map(|(i, t)| (&t.key, i))
        .collect();
    groups.sort_by_key(|g| order.get(&g.key).copied().unwrap_or(usize::MAX));

    let n_compiled = groups.iter().filter(|g| !g.hit).count();
    let n_warm_started = groups.iter().filter(|g| g.warm_from.is_some()).count();
    Ok(ServeReport {
        overall_latency_ns,
        gate_based_latency_ns,
        coverage: CoverageStats { covered, total },
        groups,
        n_compiled,
        n_warm_started,
        dynamic_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Gate};

    fn sample_report() -> ServeReport {
        let key = |theta: f64| {
            let u = circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, theta)]));
            UnitaryKey::canonical(&u, 1)
        };
        ServeReport {
            overall_latency_ns: 42.5,
            gate_based_latency_ns: 120.0,
            coverage: CoverageStats {
                covered: 3,
                total: 5,
            },
            groups: vec![
                ServedGroup {
                    key: key(0.3),
                    n_qubits: 1,
                    hit: true,
                    warm_from: None,
                    iterations: 0,
                    latency_ns: 10.0,
                },
                ServedGroup {
                    key: key(0.9),
                    n_qubits: 1,
                    hit: false,
                    warm_from: Some(key(0.3)),
                    iterations: 17,
                    latency_ns: 12.25,
                },
            ],
            n_compiled: 1,
            n_warm_started: 1,
            dynamic_iterations: 17,
        }
    }

    #[test]
    fn report_json_roundtrips_byte_exactly() {
        let report = sample_report();
        let text = report.to_json();
        assert!(!text.contains('\n'), "wire format is one frame");
        let restored = ServeReport::from_json(&text).unwrap();
        // to_json is deterministic, so byte equality is full equality.
        assert_eq!(restored.to_json(), text);
        assert_eq!(restored.groups.len(), 2);
        assert_eq!(restored.groups[1].warm_from, report.groups[1].warm_from);
        assert_eq!(restored.coverage, report.coverage);
    }

    #[test]
    fn report_json_rejects_malformed_input() {
        assert!(ServeReport::from_json("not json").is_err());
        assert!(ServeReport::from_json("{}").is_err());
        let no_hit = r#"{"overall_latency_ns": 1, "gate_based_latency_ns": 2,
            "coverage_covered": 0, "coverage_total": 0, "n_compiled": 0,
            "n_warm_started": 0, "dynamic_iterations": 0,
            "groups": [{"key": "00", "n_qubits": 1, "warm_from": null,
                        "iterations": 0, "latency_ns": 1}]}"#;
        assert!(ServeReport::from_json(no_hit).is_err());
        let bad_key = r#"{"overall_latency_ns": 1, "gate_based_latency_ns": 2,
            "coverage_covered": 0, "coverage_total": 0, "n_compiled": 0,
            "n_warm_started": 0, "dynamic_iterations": 0,
            "groups": [{"key": "zz", "hit": true, "n_qubits": 1,
                        "warm_from": null, "iterations": 0, "latency_ns": 1}]}"#;
        assert!(ServeReport::from_json(bad_key).is_err());
    }
}
