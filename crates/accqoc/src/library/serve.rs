//! Online serving: compile programs as they arrive, against the live
//! pulse library.
//!
//! Batch pre-compilation covers the profiled third of a suite; the
//! serving path covers everything that arrives afterwards. Each unique
//! group of an arriving program is resolved in order:
//!
//! 1. **hit** — the library already holds the canonical key: the pulse
//!    is reused as-is (and its recency refreshed);
//! 2. **warm miss** — the fingerprint index proposes the nearest cached
//!    neighbors, the exact similarity function re-scores the short list,
//!    and if the best neighbor passes the trace-overlap warm-start gate
//!    (the same [`warm_start_allowed`] rule the MST batch engine uses)
//!    GRAPE starts from its pulse;
//! 3. **scratch miss** — no neighbor (empty library, new dimension, or
//!    nothing similar enough): GRAPE starts from scratch — never an
//!    error.
//!
//! Every compiled pulse is inserted back (fingerprint-indexed, under the
//! capacity bound), so a stream of similar programs converges onto a hot
//! working set; [`LibraryStats`](crate::LibraryStats) counts hits,
//! misses, and the warm/scratch split.

use accqoc_circuit::{Circuit, UnitaryKey};
use accqoc_grape::Workspace as GrapeWorkspace;

use crate::cache::CachedPulse;
use crate::compile::warm_start_allowed;
use crate::error::Result;
use crate::session::{CoverageStats, Session};

/// Configuration of the online serving path.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fingerprint candidates retrieved per cache miss before exact
    /// re-scoring. Larger values recover more warm starts at slightly
    /// higher lookup cost; the default (16) saturates the golden-suite
    /// warm-start share.
    pub candidates: usize,
    /// Warm-started compiles anchor the latency binary search at the
    /// seed: the search floor is raised to `seed_steps × anchor` (never
    /// above the seed itself), pruning the deep-infeasible probes that
    /// dominate a cold search. Similar groups have similar minimal
    /// latencies — the premise of the paper's §V-B — so the pruned
    /// region is (almost) never where the optimum lives; the worst case
    /// is a served pulse a few slices longer than the batch path would
    /// find. `0.0` disables the anchor and reproduces the batch search
    /// exactly. Default: `0.5`.
    pub search_anchor: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            candidates: 16,
            search_anchor: 0.5,
        }
    }
}

/// How one unique group of a served program was resolved.
#[derive(Debug, Clone)]
pub struct ServedGroup {
    /// Canonical group key.
    pub key: UnitaryKey,
    /// Qubits the group spans.
    pub n_qubits: usize,
    /// `true` when the library covered the key (no compile).
    pub hit: bool,
    /// The neighbor whose pulse warm-started the compile, when one
    /// passed the warm-start gate.
    pub warm_from: Option<UnitaryKey>,
    /// GRAPE iterations spent (0 on hits).
    pub iterations: usize,
    /// Pulse latency of the group, ns.
    pub latency_ns: f64,
}

/// Report of serving one program through the pulse library.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Overall pulse latency of the program (Algorithm 3 DP), ns.
    pub overall_latency_ns: f64,
    /// Gate-based compilation latency of the same circuit, ns.
    pub gate_based_latency_ns: f64,
    /// Instance coverage against the library at arrival time.
    pub coverage: CoverageStats,
    /// Per-unique-group serving outcomes, in serve order (hits first,
    /// then compiles nearest-neighbor-first).
    pub groups: Vec<ServedGroup>,
    /// Unique groups compiled (misses).
    pub n_compiled: usize,
    /// Compiled groups that were warm-started.
    pub n_warm_started: usize,
    /// GRAPE iterations spent on this program.
    pub dynamic_iterations: usize,
}

impl ServeReport {
    /// Latency reduction factor vs gate-based compilation.
    pub fn latency_reduction(&self) -> f64 {
        if self.overall_latency_ns == 0.0 {
            1.0
        } else {
            self.gate_based_latency_ns / self.overall_latency_ns
        }
    }

    /// Fraction of this program's compiles that were warm-started
    /// (0.0 when nothing was compiled).
    pub fn warm_share(&self) -> f64 {
        if self.n_compiled == 0 {
            0.0
        } else {
            self.n_warm_started as f64 / self.n_compiled as f64
        }
    }
}

/// Serves one program against the session's pulse library. See the
/// module docs for the hit / warm-miss / scratch-miss resolution; this
/// is the implementation behind [`Session::serve_program`].
///
/// The program's latency is folded from the pulses resolved *during*
/// this call, so a bounded library that evicts one of this program's own
/// groups mid-serve still reports correct latencies.
///
/// # Errors
///
/// Propagates group-compilation failures ([`Error::CompileFailed`],
/// [`Error::GroupTooWide`], [`Error::EmptyGroup`]).
///
/// [`Error::CompileFailed`]: crate::Error::CompileFailed
/// [`Error::GroupTooWide`]: crate::Error::GroupTooWide
/// [`Error::EmptyGroup`]: crate::Error::EmptyGroup
pub fn serve_program(
    session: &Session,
    circuit: &Circuit,
    options: &ServeOptions,
) -> Result<ServeReport> {
    let grouped = session.front_end(circuit);
    let library = session.library();
    let n_unique = grouped.targets.len();

    let mut per_unique: Vec<f64> = vec![0.0; n_unique];
    let mut covered_unique: Vec<bool> = vec![false; n_unique];
    let mut groups: Vec<ServedGroup> = Vec::with_capacity(n_unique);
    let mut ws = GrapeWorkspace::new();
    let mut dynamic_iterations = 0usize;

    // Pass 1: exact key hits.
    let mut missing: Vec<usize> = Vec::new();
    for (i, target) in grouped.targets.iter().enumerate() {
        if let Some(entry) = library.get(&target.key) {
            library.touch(&target.key);
            library.record_hit();
            per_unique[i] = entry.latency_ns;
            covered_unique[i] = true;
            groups.push(ServedGroup {
                key: target.key.clone(),
                n_qubits: target.n_qubits,
                hit: true,
                warm_from: None,
                iterations: 0,
                latency_ns: entry.latency_ns,
            });
        } else {
            missing.push(i);
        }
    }

    // Pass 2: misses, nearest-first. Each compiled pulse is inserted
    // before the next pick, so a program's own groups seed each other —
    // the greedy online analogue of the batch engine's Prim order
    // (which also always extends the tree by the cheapest edge). When
    // no miss has a neighbor inside the warm-start gate, the round is a
    // forced scratch compile; it picks the *hub* — the miss that sits
    // within the gate of the most other misses — so one scratch buys
    // the largest downstream warm harvest. An empty library (or a new
    // dimension) is just a stream of such rounds — never an error.
    let gate = session.config().warm_threshold;
    let mut scratch = crate::similarity::SimilarityScratch::new();
    // A miss's query fingerprint never changes across rounds — compute
    // each once, not O(m²) times over the re-query loop.
    let fingerprints: Vec<crate::UnitaryFingerprint> = grouped
        .targets
        .iter()
        .map(|t| crate::UnitaryFingerprint::of(&t.unitary, t.n_qubits))
        .collect();
    while !missing.is_empty() {
        // Nearest *gated* candidate: the warm-start gate (the exact
        // trace-overlap rule the MST batch engine applies) is checked
        // per miss, so a viable warm start is never lost to a
        // gate-failing pick that merely ranked closer under the
        // configured similarity function.
        let mut pick = 0usize;
        let mut pick_neighbor: Option<crate::library::NearestPulse> = None;
        let mut pick_distance = f64::INFINITY;
        for (slot, &i) in missing.iter().enumerate() {
            let target = &grouped.targets[i];
            let Some(neighbor) = library.nearest_by_fingerprint(
                &fingerprints[i],
                &target.unitary,
                options.candidates,
                session.config().similarity,
            ) else {
                continue;
            };
            if !warm_start_allowed(&neighbor.unitary, &target.unitary, gate) {
                continue;
            }
            // Strict `<` keeps the earliest target on ties.
            if neighbor.distance < pick_distance {
                pick = slot;
                pick_distance = neighbor.distance;
                pick_neighbor = Some(neighbor);
            }
        }
        if pick_neighbor.is_none() {
            // Forced scratch round: serve the hub — the miss within the
            // gate of the most other misses (ties and the no-edge case
            // keep the earliest target).
            let mut best_degree = 0usize;
            for (slot, &i) in missing.iter().enumerate() {
                let degree = missing
                    .iter()
                    .filter(|&&j| {
                        j != i
                            && grouped.targets[j].n_qubits == grouped.targets[i].n_qubits
                            && crate::similarity::SimilarityFn::TraceOverlap.distance_with(
                                &grouped.targets[i].unitary,
                                &grouped.targets[j].unitary,
                                &mut scratch,
                            ) <= gate
                    })
                    .count();
                if degree > best_degree {
                    best_degree = degree;
                    pick = slot;
                }
            }
        }
        let i = missing.remove(pick);
        let target = &grouped.targets[i];
        let warm = pick_neighbor.as_ref();
        let result = session.serve_compile(
            &target.unitary,
            target.n_qubits,
            warm.map(|n| &n.pulse),
            options.search_anchor,
            &mut ws,
        )?;
        let warm_from = warm.map(|n| n.key.clone());
        library.record_compile(warm_from.is_some(), result.total_iterations);
        library.insert_indexed(
            target.key.clone(),
            &target.unitary,
            CachedPulse {
                pulse: result.outcome.pulse,
                latency_ns: result.latency_ns,
                iterations: result.total_iterations,
                n_qubits: target.n_qubits,
            },
        );
        dynamic_iterations += result.total_iterations;
        per_unique[i] = result.latency_ns;
        groups.push(ServedGroup {
            key: target.key.clone(),
            n_qubits: target.n_qubits,
            hit: false,
            warm_from,
            iterations: result.total_iterations,
            latency_ns: result.latency_ns,
        });
    }

    let covered = grouped
        .assignment
        .iter()
        .filter(|&&u| covered_unique[u])
        .count();
    let per_instance: Vec<f64> = grouped.assignment.iter().map(|&u| per_unique[u]).collect();
    let overall_latency_ns = grouped.grouped.overall_latency(|i| per_instance[i]);
    let gate_based_latency_ns = session.gate_based_latency(&grouped.processed);

    let n_compiled = groups.iter().filter(|g| !g.hit).count();
    let n_warm_started = groups.iter().filter(|g| g.warm_from.is_some()).count();
    Ok(ServeReport {
        overall_latency_ns,
        gate_based_latency_ns,
        coverage: CoverageStats {
            covered,
            total: grouped.assignment.len(),
        },
        groups,
        n_compiled,
        n_warm_started,
        dynamic_iterations,
    })
}
