//! Unitary fingerprints and the bucketed nearest-neighbor index.
//!
//! Exact similarity distances (paper §V-B) cost a full pass over two
//! `d×d` matrices — or, for the Uhlmann metric, several spectral
//! decompositions. The serving path cannot afford to score a query
//! against every cached unitary, so the library keeps a
//! [`UnitaryFingerprint`] per entry: a short, global-phase-invariant
//! feature vector built from the [`accqoc_linalg`] kernels
//! ([`trace_moments_abs`], [`diag_abs_profile`], [`row_peak_profile`]).
//! Fingerprints live in buckets keyed by qubit count and the quantized
//! leading feature, so candidate retrieval touches only a few buckets —
//! sublinear in the library size for any fixed bucket occupancy — and
//! the exact [`SimilarityFn`](crate::SimilarityFn) is evaluated on the
//! short candidate list only.

use std::collections::HashMap;

use accqoc_circuit::UnitaryKey;
use accqoc_linalg::{diag_abs_profile, row_peak_profile, trace_moments_abs, Mat};

/// Trace moments kept per fingerprint (`|Tr(Uᵏ)|/d`, k = 1..=3).
const N_MOMENTS: usize = 3;

/// Buckets per unit of the leading feature (`|Tr(U)|/d` ∈ [0, 1]).
const BUCKETS_PER_UNIT: f64 = 8.0;

/// A cheap, global-phase- and permutation-invariant descriptor of a
/// group unitary.
///
/// Features, in order: the normalized trace-moment magnitudes
/// `|Tr(Uᵏ)|/d` for `k = 1..=3`, the sorted diagonal magnitudes, and the
/// sorted row peak magnitudes. Two fingerprints of different qubit
/// counts are at infinite distance (a 1-qubit pulse cannot seed a
/// 2-qubit one — the same rule the exact similarity functions apply).
///
/// # Examples
///
/// ```
/// use accqoc::UnitaryFingerprint;
/// use accqoc_linalg::{C64, Mat};
///
/// let id = Mat::identity(4);
/// let fp = UnitaryFingerprint::of(&id, 2);
/// assert_eq!(fp.distance(&fp), 0.0);
/// // Global phase does not move the fingerprint.
/// let phased = UnitaryFingerprint::of(&id.scale(C64::cis(0.7)), 2);
/// assert!(fp.distance(&phased) < 1e-12);
/// // Dimension mismatches are infinitely far.
/// let one = UnitaryFingerprint::of(&Mat::identity(2), 1);
/// assert!(fp.distance(&one).is_infinite());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnitaryFingerprint {
    n_qubits: usize,
    features: Vec<f64>,
}

impl UnitaryFingerprint {
    /// Fingerprints a unitary (one pass plus two small matrix products).
    pub fn of(u: &Mat, n_qubits: usize) -> Self {
        let mut features = trace_moments_abs(u, N_MOMENTS);
        features.extend(diag_abs_profile(u));
        features.extend(row_peak_profile(u));
        Self { n_qubits, features }
    }

    /// The qubit count the fingerprinted unitary spans.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Euclidean distance between feature vectors; `f64::INFINITY` when
    /// the qubit counts differ. Symmetric, zero on identical inputs, and
    /// invariant under global phase of the fingerprinted unitaries.
    pub fn distance(&self, other: &Self) -> f64 {
        if self.n_qubits != other.n_qubits {
            return f64::INFINITY;
        }
        self.features
            .iter()
            .zip(&other.features)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// The bucket coordinate of the leading feature (`|Tr(U)|/d`).
    fn bucket(&self) -> i64 {
        (self.features[0] * BUCKETS_PER_UNIT).floor() as i64
    }
}

/// One indexed library entry: its fingerprint, the canonical unitary
/// (kept so the serving path can gate warm starts with the exact
/// trace-overlap distance), and an LRU stamp.
#[derive(Debug, Clone)]
pub(crate) struct IndexedUnitary {
    pub fingerprint: UnitaryFingerprint,
    pub unitary: Mat,
    pub n_qubits: usize,
}

/// The bucketed fingerprint index.
///
/// Buckets are keyed by `(n_qubits, quantized |Tr(U)|/d)`. A candidate
/// query starts at the query's own bucket and widens symmetrically until
/// at least `k` live candidates are gathered or the whole dimension's
/// bucket range is exhausted — so for `k ≥` the number of same-dimension
/// entries the search degenerates to an exact scan, which is what makes
/// the top-k guarantee of the property tests hold for small libraries.
#[derive(Debug, Default, Clone)]
pub(crate) struct FingerprintIndex {
    entries: HashMap<UnitaryKey, IndexedUnitary>,
    buckets: HashMap<(usize, i64), Vec<UnitaryKey>>,
}

impl FingerprintIndex {
    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The indexed entry for `key`, if present.
    pub fn get(&self, key: &UnitaryKey) -> Option<&IndexedUnitary> {
        self.entries.get(key)
    }

    /// Iterates over every indexed entry (unordered — persistence
    /// callers sort by key for deterministic artifacts).
    pub fn entries(&self) -> impl Iterator<Item = (&UnitaryKey, &IndexedUnitary)> {
        self.entries.iter()
    }

    /// Indexes (or re-indexes) a unitary under `key`.
    pub fn insert(&mut self, key: UnitaryKey, unitary: &Mat, n_qubits: usize) {
        let fingerprint = UnitaryFingerprint::of(unitary, n_qubits);
        let bucket = (n_qubits, fingerprint.bucket());
        if let Some(old) = self.entries.insert(
            key.clone(),
            IndexedUnitary {
                fingerprint,
                unitary: unitary.clone(),
                n_qubits,
            },
        ) {
            let old_bucket = (old.n_qubits, old.fingerprint.bucket());
            if old_bucket != bucket {
                self.remove_from_bucket(&old_bucket, &key);
            } else {
                return; // already listed in the right bucket
            }
        }
        self.buckets.entry(bucket).or_default().push(key);
    }

    /// Drops `key` from the index (no-op when not indexed).
    pub fn remove(&mut self, key: &UnitaryKey) {
        if let Some(entry) = self.entries.remove(key) {
            let bucket = (entry.n_qubits, entry.fingerprint.bucket());
            self.remove_from_bucket(&bucket, key);
        }
    }

    fn remove_from_bucket(&mut self, bucket: &(usize, i64), key: &UnitaryKey) {
        if let Some(list) = self.buckets.get_mut(bucket) {
            list.retain(|k| k != key);
            if list.is_empty() {
                self.buckets.remove(bucket);
            }
        }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.buckets.clear();
    }

    /// Up to `k` candidate keys nearest to `query` in fingerprint
    /// distance, best first (deterministic: distance, then key order).
    ///
    /// The bucket walk widens until `k` candidates are gathered or every
    /// bucket of the query's dimension has been visited, so the result
    /// is exhaustive whenever `k` covers the dimension's population.
    pub fn candidates(&self, query: &UnitaryFingerprint, k: usize) -> Vec<(UnitaryKey, f64)> {
        if k == 0 || self.entries.is_empty() {
            return Vec::new();
        }
        let center = query.bucket();
        let span = self
            .buckets
            .keys()
            .filter(|(n, _)| *n == query.n_qubits())
            .map(|(_, b)| (center - b).abs())
            .max();
        let Some(span) = span else {
            return Vec::new();
        };
        let mut gathered: Vec<(UnitaryKey, f64)> = Vec::new();
        let mut radius = 0i64;
        while radius <= span {
            // At radius 0 the two walk arms coincide — visit the center
            // bucket exactly once.
            let arms: &[i64] = if radius == 0 {
                &[center]
            } else {
                &[center - radius, center + radius]
            };
            for &bucket in arms {
                if let Some(list) = self.buckets.get(&(query.n_qubits(), bucket)) {
                    for key in list {
                        let entry = &self.entries[key];
                        gathered.push((key.clone(), query.distance(&entry.fingerprint)));
                    }
                }
            }
            if gathered.len() >= k {
                break;
            }
            radius += 1;
        }
        gathered.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        gathered.truncate(k);
        gathered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn rz(theta: f64) -> Mat {
        circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, theta)]))
    }

    fn key_of(u: &Mat, n: usize) -> UnitaryKey {
        UnitaryKey::canonical(u, n)
    }

    #[test]
    fn candidates_are_sorted_and_bounded() {
        let mut index = FingerprintIndex::default();
        let us: Vec<Mat> = (1..=6).map(|k| rz(0.3 * k as f64)).collect();
        for u in &us {
            index.insert(key_of(u, 1), u, 1);
        }
        let query = UnitaryFingerprint::of(&rz(0.31), 1);
        let got = index.candidates(&query, 3);
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        // Asking for more than exist returns everything.
        assert_eq!(index.candidates(&query, 100).len(), 6);
        // Zero k is empty.
        assert!(index.candidates(&query, 0).is_empty());
    }

    #[test]
    fn cross_dimension_entries_are_invisible() {
        let mut index = FingerprintIndex::default();
        let one = rz(0.4);
        index.insert(key_of(&one, 1), &one, 1);
        let two = Mat::identity(4);
        let query = UnitaryFingerprint::of(&two, 2);
        assert!(index.candidates(&query, 8).is_empty());
    }

    #[test]
    fn remove_and_reinsert_round_trip() {
        let mut index = FingerprintIndex::default();
        let u = rz(1.0);
        let key = key_of(&u, 1);
        index.insert(key.clone(), &u, 1);
        assert_eq!(index.len(), 1);
        index.remove(&key);
        assert_eq!(index.len(), 0);
        assert!(index
            .candidates(&UnitaryFingerprint::of(&u, 1), 4)
            .is_empty());
        index.insert(key.clone(), &u, 1);
        index.insert(key.clone(), &u, 1); // idempotent re-index
        assert_eq!(index.len(), 1);
        assert_eq!(index.candidates(&UnitaryFingerprint::of(&u, 1), 4).len(), 1);
    }
}
