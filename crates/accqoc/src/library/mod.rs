//! The incremental pulse library: one engine behind batch pre-compilation
//! and online serving.
//!
//! Historically the repository had two disconnected stories about pulse
//! reuse: the *batch* story (profile a suite, build the O(n²) similarity
//! graph, compile in MST order, persist the cache — §IV/§V of the paper)
//! and nothing at all for programs arriving *after* precompile, which is
//! exactly the serve-heavy regime the ROADMAP targets. [`PulseLibrary`]
//! unifies them:
//!
//! - **storage** — the sharded [`ConcurrentPulseCache`] keeps the pulses;
//!   the library adds per-entry recency metadata and an optional capacity
//!   bound with deterministic least-recently-used eviction;
//! - **retrieval** — every entry inserted with its canonical unitary is
//!   fingerprinted ([`UnitaryFingerprint`]) into a bucketed index, so a
//!   cache miss finds warm-start candidates in sublinear time and only
//!   the top-k short list is re-scored with the exact [`SimilarityFn`];
//! - **planning** — [`batch_plan`] is the one place the similarity graph
//!   and MST compile order are built; the batch drivers
//!   ([`Session::precompile`](crate::Session::precompile) and friends)
//!   and the staged [`Session::compile`](crate::Session::compile) all
//!   call it, so batch artifacts stay byte-identical to the
//!   pre-refactor engine;
//! - **serving** — [`Session::serve_program`](crate::Session::serve_program)
//!   drives the library online: hits are free, misses warm-start GRAPE
//!   from the nearest cached neighbor and insert the result back, and
//!   [`LibraryStats`] counts all of it.

mod fingerprint;
pub(crate) mod serve;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use accqoc_circuit::UnitaryKey;
use accqoc_grape::Pulse;
use accqoc_linalg::Mat;

use crate::cache::{CachedPulse, PulseCache};
use crate::concurrent_cache::ConcurrentPulseCache;
use crate::mst::{mst_compile_order, CompileOrder, SimilarityGraph};
use crate::persist::{Event, Journal};
use crate::similarity::{SimilarityFn, SimilarityScratch};

pub use fingerprint::UnitaryFingerprint;
pub use serve::{serve_grouped_subset, ServeOptions, ServeReport, ServedGroup};

use fingerprint::FingerprintIndex;

/// Builds the similarity graph over a batch of group unitaries and the
/// MST-ordered compile sequence in one step — the single planning
/// entry point shared by batch pre-compilation, the staged
/// [`Session::compile`](crate::Session::compile), and the parallel batch
/// drivers. One [`SimilarityScratch`] is threaded through the whole
/// O(n²) build.
pub fn batch_plan(
    unitaries: Vec<Mat>,
    similarity: SimilarityFn,
) -> (SimilarityGraph, CompileOrder) {
    let graph = SimilarityGraph::build(unitaries, similarity);
    let order = mst_compile_order(&graph);
    (graph, order)
}

/// Point-in-time counters of the library's serving behavior.
///
/// Hits and misses count *unique groups* as they are served (a program
/// with five instances of one cached group scores one hit); warm and
/// scratch compiles partition the misses by whether the nearest-neighbor
/// warm start passed the trace-overlap gate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LibraryStats {
    /// Unique groups served straight from the cache.
    pub hits: u64,
    /// Unique groups that had to be compiled.
    pub misses: u64,
    /// Misses compiled warm-started from a fingerprint neighbor.
    pub warm_compiles: u64,
    /// Misses compiled from scratch (empty library, no neighbor within
    /// the warm-start gate, or a dimension never seen before).
    pub scratch_compiles: u64,
    /// GRAPE iterations spent on warm-started compiles.
    pub warm_iterations: u64,
    /// GRAPE iterations spent on scratch compiles.
    pub scratch_iterations: u64,
    /// Entries evicted to honor the capacity bound.
    pub evictions: u64,
}

impl LibraryStats {
    /// Fraction of served unique groups found in the cache (1.0 when
    /// nothing has been served).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of compiles that were warm-started (0.0 when nothing has
    /// been compiled).
    pub fn warm_share(&self) -> f64 {
        if self.misses == 0 {
            0.0
        } else {
            self.warm_compiles as f64 / self.misses as f64
        }
    }

    /// Mean GRAPE iterations per warm-started compile.
    pub fn mean_warm_iterations(&self) -> f64 {
        if self.warm_compiles == 0 {
            0.0
        } else {
            self.warm_iterations as f64 / self.warm_compiles as f64
        }
    }

    /// Mean GRAPE iterations per scratch compile.
    pub fn mean_scratch_iterations(&self) -> f64 {
        if self.scratch_compiles == 0 {
            0.0
        } else {
            self.scratch_iterations as f64 / self.scratch_compiles as f64
        }
    }

    /// The counters as a JSON value — what the serving daemon's `stats`
    /// method returns, so remote observers read exactly the in-process
    /// numbers.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::LibraryStats;
    ///
    /// let stats = LibraryStats { hits: 3, misses: 1, ..Default::default() };
    /// let value = stats.to_json_value();
    /// assert_eq!(LibraryStats::from_json_value(&value).unwrap(), stats);
    /// ```
    pub fn to_json_value(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let field = |n: u64| JsonValue::Number(n as f64);
        JsonValue::Object(vec![
            ("hits".into(), field(self.hits)),
            ("misses".into(), field(self.misses)),
            ("warm_compiles".into(), field(self.warm_compiles)),
            ("scratch_compiles".into(), field(self.scratch_compiles)),
            ("warm_iterations".into(), field(self.warm_iterations)),
            ("scratch_iterations".into(), field(self.scratch_iterations)),
            ("evictions".into(), field(self.evictions)),
        ])
    }

    /// Reconstructs counters from [`LibraryStats::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Json`] when a counter is missing or mistyped.
    pub fn from_json_value(value: &crate::json::JsonValue) -> crate::error::Result<Self> {
        use crate::json::JsonValue;
        let field = |name: &str| -> crate::error::Result<u64> {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .map(|n| n as u64)
                .ok_or_else(|| {
                    crate::json::JsonError {
                        message: format!("library stats: missing counter `{name}`"),
                        offset: 0,
                    }
                    .into()
                })
        };
        Ok(Self {
            hits: field("hits")?,
            misses: field("misses")?,
            warm_compiles: field("warm_compiles")?,
            scratch_compiles: field("scratch_compiles")?,
            warm_iterations: field("warm_iterations")?,
            scratch_iterations: field("scratch_iterations")?,
            evictions: field("evictions")?,
        })
    }
}

#[derive(Debug, Default)]
struct StatsCells {
    hits: AtomicU64,
    misses: AtomicU64,
    warm_compiles: AtomicU64,
    scratch_compiles: AtomicU64,
    warm_iterations: AtomicU64,
    scratch_iterations: AtomicU64,
    evictions: AtomicU64,
}

/// Index-side state kept under one mutex: the fingerprint index plus the
/// recency metadata that drives eviction.
#[derive(Debug, Default)]
struct LibraryState {
    index: FingerprintIndex,
    /// Last-use stamp per stored key (indexed or not).
    recency: HashMap<UnitaryKey, u64>,
    /// Scratch for exact re-scoring of fingerprint candidates.
    scratch: SimilarityScratch,
}

/// A warm-start neighbor found by [`PulseLibrary::nearest`].
#[derive(Debug, Clone)]
pub struct NearestPulse {
    /// Canonical key of the neighbor entry.
    pub key: UnitaryKey,
    /// Exact similarity distance from the query to the neighbor (under
    /// the similarity function passed to the query).
    pub distance: f64,
    /// The neighbor's canonical unitary (for warm-start gating).
    pub unitary: Mat,
    /// The neighbor's cached pulse.
    pub pulse: Pulse,
}

/// The incremental pulse library: bounded, fingerprint-indexed storage
/// for compiled group pulses, shared by the batch and online paths.
///
/// Thread safety mirrors [`ConcurrentPulseCache`]: every method takes
/// `&self`. Pulse reads take one shard read lock; index queries and
/// recency updates serialize on one internal mutex (they are orders of
/// magnitude cheaper than the GRAPE compiles they guard).
///
/// # Capacity and eviction
///
/// With `capacity = None` (the default — what every batch path uses) the
/// library never evicts and batch pre-compilation artifacts stay exactly
/// as deterministic as the underlying cache. With `Some(n)`, inserting
/// beyond `n` entries evicts the least-recently-used key first
/// (deterministic tie-break on key order); `Some(0)` stores nothing and
/// turns the library into a pure pass-through compiler.
#[derive(Debug)]
pub struct PulseLibrary {
    pulses: ConcurrentPulseCache,
    state: Mutex<LibraryState>,
    capacity: Option<usize>,
    stats: StatsCells,
    clock: AtomicU64,
    /// Durability journal; when attached, every mutation is logged
    /// under the state lock (so WAL order equals apply order).
    journal: Option<Journal>,
}

impl Default for PulseLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl PulseLibrary {
    /// An empty, unbounded library.
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// An empty library holding at most `capacity` entries (`None` =
    /// unbounded).
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            pulses: ConcurrentPulseCache::new(),
            state: Mutex::new(LibraryState::default()),
            capacity,
            stats: StatsCells::default(),
            clock: AtomicU64::new(0),
            journal: None,
        }
    }

    /// Attaches the durability journal. Called once by the session
    /// builder *after* recovery has seeded the library, so recovered
    /// state is not logged a second time.
    pub(crate) fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// An unbounded library pre-seeded from a plain cache (entries are
    /// stored but not fingerprint-indexed — a plain cache carries no
    /// unitaries; see [`PulseLibrary::index_unitary`]).
    pub fn from_cache(cache: PulseCache) -> Self {
        let lib = Self::new();
        lib.merge(cache);
        lib
    }

    /// The capacity bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The underlying sharded pulse store.
    pub fn pulses(&self) -> &ConcurrentPulseCache {
        &self.pulses
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Number of fingerprint-indexed entries (≤ [`PulseLibrary::len`]:
    /// entries merged from plain caches carry no unitary to index).
    pub fn indexed_len(&self) -> usize {
        self.lock().index.len()
    }

    /// `true` when the store covers `key`.
    pub fn contains(&self, key: &UnitaryKey) -> bool {
        self.pulses.contains(key)
    }

    /// A copy of one entry, if covered. Does not touch recency — use
    /// [`PulseLibrary::touch`] on the serving path.
    pub fn get(&self, key: &UnitaryKey) -> Option<CachedPulse> {
        self.pulses.get(key)
    }

    /// Refreshes `key`'s recency stamp (serving-path hits call this so
    /// hot entries survive eviction).
    pub fn touch(&self, key: &UnitaryKey) {
        let stamp = self.tick();
        let mut state = self.lock();
        if let Some(slot) = state.recency.get_mut(key) {
            *slot = stamp;
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LibraryState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Inserts an entry without fingerprint metadata (it is stored,
    /// served on exact key hits, and evictable, but never returned as a
    /// warm-start neighbor).
    pub fn insert(&self, key: UnitaryKey, entry: CachedPulse) {
        let stamp = self.tick();
        let mut state = self.lock();
        if self.capacity == Some(0) {
            return;
        }
        let logged = self.journal.as_ref().map(|_| entry.clone());
        self.pulses.insert(key.clone(), entry);
        state.recency.insert(key.clone(), stamp);
        let evicted = self.evict_over_capacity(&mut state);
        if let Some(journal) = &self.journal {
            journal.record(&Event::Insert {
                key: &key,
                entry: logged.as_ref().expect("cloned when journaling"),
                unitary: None,
            });
            for victim in &evicted {
                journal.record(&Event::Evict { key: victim });
            }
            self.maybe_snapshot(journal, &state);
        }
    }

    /// Inserts an entry together with its canonical unitary, making it
    /// retrievable as a warm-start neighbor. This is the path every
    /// compile (batch or served) goes through.
    pub fn insert_indexed(&self, key: UnitaryKey, unitary: &Mat, entry: CachedPulse) {
        let stamp = self.tick();
        let n_qubits = entry.n_qubits;
        let mut state = self.lock();
        if self.capacity == Some(0) {
            return;
        }
        let logged = self.journal.as_ref().map(|_| entry.clone());
        self.pulses.insert(key.clone(), entry);
        state.index.insert(key.clone(), unitary, n_qubits);
        state.recency.insert(key.clone(), stamp);
        let evicted = self.evict_over_capacity(&mut state);
        if let Some(journal) = &self.journal {
            journal.record(&Event::Insert {
                key: &key,
                entry: logged.as_ref().expect("cloned when journaling"),
                unitary: Some(unitary),
            });
            for victim in &evicted {
                journal.record(&Event::Evict { key: victim });
            }
            self.maybe_snapshot(journal, &state);
        }
    }

    /// Adds fingerprint metadata for an already-stored entry (no-op when
    /// `key` is not stored). Batch drivers call this after a bulk merge,
    /// when the canonical unitaries are still at hand.
    pub fn index_unitary(&self, key: &UnitaryKey, unitary: &Mat, n_qubits: usize) {
        if !self.pulses.contains(key) {
            return;
        }
        let mut state = self.lock();
        state.index.insert(key.clone(), unitary, n_qubits);
        if let Some(journal) = &self.journal {
            journal.record(&Event::Index {
                key,
                n_qubits,
                unitary,
            });
        }
    }

    /// Merges a plain cache (incoming entries win). Entries are stored
    /// un-indexed; keys are processed in sorted order so capacity
    /// eviction stays deterministic.
    pub fn merge(&self, cache: PulseCache) {
        let mut entries: Vec<(UnitaryKey, CachedPulse)> = cache.into_entries().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, entry) in entries {
            self.insert(key, entry);
        }
    }

    /// Replaces the entire contents with `cache` in one step (index and
    /// recency metadata are rebuilt un-indexed; concurrent readers of the
    /// pulse store see the atomic [`ConcurrentPulseCache::replace`]).
    pub fn replace(&self, cache: PulseCache) {
        let mut state = self.lock();
        state.index.clear();
        state.recency.clear();
        if self.capacity == Some(0) {
            self.pulses.replace(PulseCache::new());
            if let Some(journal) = &self.journal {
                journal.record(&Event::Clear);
            }
            return;
        }
        let logged = self.journal.as_ref().map(|_| {
            let mut entries: Vec<(UnitaryKey, CachedPulse)> =
                cache.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            entries
        });
        let mut keys: Vec<UnitaryKey> = cache.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        let stamp = self.tick();
        for key in keys {
            state.recency.insert(key, stamp);
        }
        self.pulses.replace(cache);
        let evicted = self.evict_over_capacity(&mut state);
        if let Some(journal) = &self.journal {
            journal.record(&Event::Replace {
                entries: logged.as_deref().expect("cloned when journaling"),
            });
            for victim in &evicted {
                journal.record(&Event::Evict { key: victim });
            }
            self.maybe_snapshot(journal, &state);
        }
    }

    /// Removes every entry and all metadata.
    pub fn clear(&self) {
        let mut state = self.lock();
        state.index.clear();
        state.recency.clear();
        self.pulses.clear();
        if let Some(journal) = &self.journal {
            journal.record(&Event::Clear);
        }
    }

    /// A plain, sorted-key snapshot of the stored pulses (see
    /// [`ConcurrentPulseCache::snapshot`]).
    pub fn snapshot(&self) -> PulseCache {
        self.pulses.snapshot()
    }

    /// Evicts least-recently-used entries until the capacity bound
    /// holds; returns the victims (in eviction order) so callers with a
    /// journal can log them. Caller holds the state lock.
    fn evict_over_capacity(&self, state: &mut LibraryState) -> Vec<UnitaryKey> {
        let mut evicted = Vec::new();
        let Some(capacity) = self.capacity else {
            return evicted;
        };
        while state.recency.len() > capacity {
            let victim = state
                .recency
                .iter()
                .min_by(|a, b| a.1.cmp(b.1).then_with(|| a.0.cmp(b.0)))
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            state.recency.remove(&victim);
            state.index.remove(&victim);
            self.pulses.remove(&victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            evicted.push(victim);
        }
        evicted
    }

    /// Runs an auto-compaction snapshot when the journal says one is
    /// due. Caller holds the state lock, so the snapshot pair is
    /// consistent with the WAL prefix it replaces. Failures stay inside
    /// the journal (sticky) and resurface at the next explicit
    /// [`PulseLibrary::checkpoint`].
    fn maybe_snapshot(&self, journal: &Journal, state: &LibraryState) {
        if !journal.due_for_snapshot() {
            return;
        }
        let cache = self.pulses.snapshot();
        let unitaries = indexed_of(&state.index);
        let _ = journal.snapshot(&cache, &unitaries);
    }

    /// Forces a durability snapshot: writes the artifact pair and
    /// truncates the WAL. `Ok(())` and a no-op when no journal is
    /// attached.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Store`] when a snapshot write or the WAL
    /// truncation fails; the previous on-disk pair stays recoverable.
    pub fn checkpoint(&self) -> crate::error::Result<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        // Hold the state lock across the write so no concurrent
        // mutation can append to the WAL between our snapshot copy and
        // the truncation (which would silently drop that record).
        let state = self.lock();
        let cache = self.pulses.snapshot();
        let unitaries = indexed_of(&state.index);
        let result = journal.snapshot(&cache, &unitaries);
        drop(state);
        result.map_err(crate::error::Error::from)
    }

    /// Every fingerprint-indexed entry's canonical unitary, sorted by
    /// key — what the persistence tier writes to the index sidecar and
    /// [`Session::save_cache`](crate::Session::save_cache) embeds in the
    /// extended artifact.
    pub fn indexed_unitaries(&self) -> Vec<(UnitaryKey, Mat, usize)> {
        indexed_of(&self.lock().index)
    }

    /// The nearest indexed neighbor of `unitary`: fingerprint buckets
    /// propose up to `k` candidates, the exact `similarity` function
    /// re-scores them, and the best (distance, key) wins. Returns `None`
    /// on an empty index or when no same-dimension entry exists.
    pub fn nearest(
        &self,
        unitary: &Mat,
        n_qubits: usize,
        k: usize,
        similarity: SimilarityFn,
    ) -> Option<NearestPulse> {
        let query = UnitaryFingerprint::of(unitary, n_qubits);
        self.nearest_by_fingerprint(&query, unitary, k, similarity)
    }

    /// [`PulseLibrary::nearest`] with a precomputed query fingerprint —
    /// the serving loop re-queries every remaining miss after each
    /// insert, so it fingerprints each miss once and reuses it across
    /// rounds instead of recomputing the trace moments per query.
    pub fn nearest_by_fingerprint(
        &self,
        query: &UnitaryFingerprint,
        unitary: &Mat,
        k: usize,
        similarity: SimilarityFn,
    ) -> Option<NearestPulse> {
        let mut state = self.lock();
        // Split the guard so the exact re-scoring borrows the index
        // entries and the scratch simultaneously — no per-candidate
        // unitary clones on the serving hot path.
        let LibraryState { index, scratch, .. } = &mut *state;
        let candidates = index.candidates(query, k);
        let mut best: Option<(UnitaryKey, f64)> = None;
        for (key, _) in candidates {
            // A candidate key missing from the entry map would mean the
            // bucket lists drifted from the entries; degrade to skipping
            // the candidate, never to aborting a query with a valid best.
            let Some(entry) = index.get(&key) else {
                continue;
            };
            let d = similarity.distance_with(unitary, &entry.unitary, scratch);
            let better = match &best {
                None => true,
                Some((bk, bd)) => d < *bd || (d == *bd && key < *bk),
            };
            if better {
                best = Some((key, d));
            }
        }
        let (key, distance) = best?;
        let neighbor = index.get(&key)?.unitary.clone();
        drop(state);
        let pulse = self.pulses.get(&key)?.pulse;
        Some(NearestPulse {
            key,
            distance,
            unitary: neighbor,
            pulse,
        })
    }

    /// A point-in-time snapshot of the serving counters.
    pub fn stats(&self) -> LibraryStats {
        LibraryStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            warm_compiles: self.stats.warm_compiles.load(Ordering::Relaxed),
            scratch_compiles: self.stats.scratch_compiles.load(Ordering::Relaxed),
            warm_iterations: self.stats.warm_iterations.load(Ordering::Relaxed),
            scratch_iterations: self.stats.scratch_iterations.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resets the serving counters (eviction counts included).
    pub fn reset_stats(&self) {
        self.stats.hits.store(0, Ordering::Relaxed);
        self.stats.misses.store(0, Ordering::Relaxed);
        self.stats.warm_compiles.store(0, Ordering::Relaxed);
        self.stats.scratch_compiles.store(0, Ordering::Relaxed);
        self.stats.warm_iterations.store(0, Ordering::Relaxed);
        self.stats.scratch_iterations.store(0, Ordering::Relaxed);
        self.stats.evictions.store(0, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_compile(&self, warm: bool, iterations: usize) {
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        if warm {
            self.stats.warm_compiles.fetch_add(1, Ordering::Relaxed);
            self.stats
                .warm_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        } else {
            self.stats.scratch_compiles.fetch_add(1, Ordering::Relaxed);
            self.stats
                .scratch_iterations
                .fetch_add(iterations as u64, Ordering::Relaxed);
        }
    }
}

/// Sorted copy of the fingerprint index's canonical unitaries (the
/// deterministic order every persisted artifact uses).
fn indexed_of(index: &FingerprintIndex) -> Vec<(UnitaryKey, Mat, usize)> {
    let mut out: Vec<(UnitaryKey, Mat, usize)> = index
        .entries()
        .map(|(key, entry)| (key.clone(), entry.unitary.clone(), entry.n_qubits))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

impl Clone for PulseLibrary {
    /// Clones contents and index; the serving counters start fresh, the
    /// recency clock continues from the source's stamp, and the clone
    /// carries **no** journal — two writers on one write-ahead log
    /// would interleave inconsistently, so only the original session
    /// persists.
    fn clone(&self) -> Self {
        // Pulses are cloned while the state lock is held so the copied
        // recency/index metadata agrees with the copied pulse store even
        // when other threads are serving concurrently (the lock-then-
        // shard order matches every other multi-structure operation).
        let state = self.lock();
        let pulses = self.pulses.clone();
        let cloned_state = LibraryState {
            index: state.index.clone(),
            recency: state.recency.clone(),
            scratch: SimilarityScratch::new(),
        };
        drop(state);
        Self {
            pulses,
            state: Mutex::new(cloned_state),
            capacity: self.capacity,
            stats: StatsCells::default(),
            clock: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            journal: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn rz(theta: f64) -> Mat {
        circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, theta)]))
    }

    fn entry(latency: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2, 4, 1.0),
            latency_ns: latency,
            iterations: 5,
            n_qubits: 1,
        }
    }

    fn key_of(u: &Mat) -> UnitaryKey {
        UnitaryKey::canonical(u, 1)
    }

    #[test]
    fn nearest_prefers_the_closest_unitary() {
        let lib = PulseLibrary::new();
        for k in 1..=5 {
            let u = rz(0.4 * k as f64);
            lib.insert_indexed(key_of(&u), &u, entry(k as f64));
        }
        let query = rz(0.83); // closest to rz(0.8), k = 2
        let hit = lib
            .nearest(&query, 1, 4, SimilarityFn::TraceOverlap)
            .expect("non-empty library");
        assert_eq!(hit.key, key_of(&rz(0.8)));
        assert!(hit.distance < 0.01);
        assert_eq!(hit.pulse.n_steps(), 4);
    }

    #[test]
    fn nearest_on_empty_or_cross_dimension_is_none() {
        let lib = PulseLibrary::new();
        assert!(lib
            .nearest(&rz(0.5), 1, 4, SimilarityFn::TraceOverlap)
            .is_none());
        let u = rz(0.5);
        lib.insert_indexed(key_of(&u), &u, entry(1.0));
        assert!(lib
            .nearest(&Mat::identity(4), 2, 4, SimilarityFn::TraceOverlap)
            .is_none());
    }

    #[test]
    fn unindexed_merges_serve_hits_but_not_neighbors() {
        let lib = PulseLibrary::new();
        let u = rz(0.7);
        let mut cache = PulseCache::new();
        cache.insert(key_of(&u), entry(3.0));
        lib.merge(cache);
        assert_eq!(lib.len(), 1);
        assert_eq!(lib.indexed_len(), 0);
        assert!(lib.contains(&key_of(&u)));
        assert!(lib
            .nearest(&rz(0.69), 1, 4, SimilarityFn::TraceOverlap)
            .is_none());
        // Indexing after the fact makes it retrievable.
        lib.index_unitary(&key_of(&u), &u, 1);
        assert_eq!(lib.indexed_len(), 1);
        assert!(lib
            .nearest(&rz(0.69), 1, 4, SimilarityFn::TraceOverlap)
            .is_some());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let lib = PulseLibrary::with_capacity(Some(2));
        let (a, b, c) = (rz(0.2), rz(0.9), rz(1.6));
        lib.insert_indexed(key_of(&a), &a, entry(1.0));
        lib.insert_indexed(key_of(&b), &b, entry(2.0));
        // Touch `a` so `b` is the LRU victim.
        lib.touch(&key_of(&a));
        lib.insert_indexed(key_of(&c), &c, entry(3.0));
        assert_eq!(lib.len(), 2);
        assert!(lib.contains(&key_of(&a)));
        assert!(!lib.contains(&key_of(&b)), "LRU entry must be evicted");
        assert!(lib.contains(&key_of(&c)));
        assert_eq!(lib.stats().evictions, 1);
        assert_eq!(lib.indexed_len(), 2);
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let lib = PulseLibrary::with_capacity(Some(0));
        let u = rz(0.3);
        lib.insert_indexed(key_of(&u), &u, entry(1.0));
        lib.insert(key_of(&rz(0.6)), entry(2.0));
        assert!(lib.is_empty());
        assert_eq!(lib.indexed_len(), 0);
        assert!(lib.nearest(&u, 1, 4, SimilarityFn::TraceOverlap).is_none());
        // replace() honors capacity 0 too.
        let mut cache = PulseCache::new();
        cache.insert(key_of(&u), entry(1.0));
        lib.replace(cache);
        assert!(lib.is_empty());
    }

    #[test]
    fn clone_preserves_entries_and_resets_stats() {
        let lib = PulseLibrary::new();
        let u = rz(0.5);
        lib.insert_indexed(key_of(&u), &u, entry(1.0));
        lib.record_hit();
        lib.record_compile(true, 10);
        let cloned = lib.clone();
        assert_eq!(cloned.len(), 1);
        assert_eq!(cloned.indexed_len(), 1);
        assert_eq!(cloned.stats(), LibraryStats::default());
        assert_eq!(lib.stats().hits, 1);
        assert_eq!(lib.stats().warm_compiles, 1);
        assert_eq!(lib.stats().warm_iterations, 10);
    }

    #[test]
    fn stats_means_and_rates() {
        let s = LibraryStats {
            hits: 3,
            misses: 1,
            warm_compiles: 1,
            scratch_compiles: 0,
            warm_iterations: 40,
            scratch_iterations: 0,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.warm_share() - 1.0).abs() < 1e-12);
        assert_eq!(s.mean_warm_iterations(), 40.0);
        assert_eq!(s.mean_scratch_iterations(), 0.0);
        assert_eq!(LibraryStats::default().hit_rate(), 1.0);
        assert_eq!(LibraryStats::default().warm_share(), 0.0);
    }
}
