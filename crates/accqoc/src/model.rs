//! Control models per group arity.

use accqoc_hw::ControlModel;

use crate::error::{Error, Result};

/// Hard ceiling on model arity: a 6-qubit group is a 64×64 unitary, the
/// largest the dense GRAPE kernels handle in reasonable time.
pub const MAX_MODEL_QUBITS: usize = 6;

/// Control models for groups of 1..=N qubits.
#[derive(Debug, Clone)]
pub struct ModelSet {
    models: Vec<ControlModel>, // index = n_qubits − 1
}

impl ModelSet {
    /// Spin-chain models for `1..=max_qubits` qubits.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for `max_qubits` outside
    /// `1..=`[`MAX_MODEL_QUBITS`].
    pub fn spin(max_qubits: usize) -> Result<Self> {
        if !(1..=MAX_MODEL_QUBITS).contains(&max_qubits) {
            return Err(Error::InvalidConfig {
                message: format!(
                    "model set arity must be 1..={MAX_MODEL_QUBITS}, got {max_qubits}"
                ),
            });
        }
        Ok(Self {
            models: (1..=max_qubits).map(ControlModel::spin_chain).collect(),
        })
    }

    /// The model for groups of `n_qubits`.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyGroup`] for `n_qubits == 0` (there is no zero-qubit
    /// control model — this used to underflow and panic);
    /// [`Error::GroupTooWide`] when no model of that arity was built.
    pub fn for_qubits(&self, n_qubits: usize) -> Result<&ControlModel> {
        if n_qubits == 0 {
            return Err(Error::EmptyGroup);
        }
        self.models.get(n_qubits - 1).ok_or(Error::GroupTooWide {
            n_qubits,
            max: self.models.len(),
        })
    }

    /// Largest supported arity.
    pub fn max_qubits(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_dispatch() {
        let ms = ModelSet::spin(2).unwrap();
        assert_eq!(ms.for_qubits(1).unwrap().dim(), 2);
        assert_eq!(ms.for_qubits(2).unwrap().dim(), 4);
        assert_eq!(ms.max_qubits(), 2);
    }

    #[test]
    fn zero_qubits_is_an_error_not_a_panic() {
        let ms = ModelSet::spin(2).unwrap();
        assert!(matches!(ms.for_qubits(0), Err(Error::EmptyGroup)));
    }

    #[test]
    fn over_wide_requests_are_rejected() {
        let ms = ModelSet::spin(2).unwrap();
        assert!(matches!(
            ms.for_qubits(3),
            Err(Error::GroupTooWide {
                n_qubits: 3,
                max: 2
            })
        ));
    }

    #[test]
    fn constructor_domain_is_validated() {
        assert!(matches!(
            ModelSet::spin(0),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(matches!(
            ModelSet::spin(7),
            Err(Error::InvalidConfig { .. })
        ));
        assert!(ModelSet::spin(MAX_MODEL_QUBITS).is_ok());
    }
}
