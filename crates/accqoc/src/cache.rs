//! The pulse cache: the paper's "group list + pulse list + latency list"
//! artifact produced by static pre-compilation (§IV-C/D) and consulted by
//! dynamic compilation to skip covered groups.
//!
//! Persistence uses the self-contained JSON layer in [`crate::json`]
//! (this workspace builds offline, without serde). Keys serialize as hex
//! strings; amplitudes and latencies round-trip exactly through Rust's
//! shortest-f64 formatting, and entries are emitted sorted by key, so the
//! artifact is byte-deterministic for a given cache state.

use std::collections::HashMap;
use std::path::Path;

use accqoc_circuit::UnitaryKey;
use accqoc_grape::Pulse;

use crate::error::Result;
use crate::json::{self, JsonError, JsonValue};

/// A cached compilation result for one unique group.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPulse {
    /// The optimized control pulse.
    pub pulse: Pulse,
    /// Minimal feasible latency found by binary search, nanoseconds.
    pub latency_ns: f64,
    /// GRAPE iterations spent compiling this group (all probes).
    pub iterations: usize,
    /// Number of qubits of the group.
    pub n_qubits: usize,
}

/// Key-value store from canonical group identity to compiled pulse.
///
/// # Examples
///
/// ```
/// use accqoc::{CachedPulse, PulseCache};
/// use accqoc_circuit::UnitaryKey;
/// use accqoc_grape::Pulse;
/// use accqoc_linalg::Mat;
///
/// let mut cache = PulseCache::new();
/// let key = UnitaryKey::canonical(&Mat::identity(2), 1);
/// cache.insert(key.clone(), CachedPulse {
///     pulse: Pulse::zeros(2, 0, 1.0),
///     latency_ns: 0.0,
///     iterations: 0,
///     n_qubits: 1,
/// });
/// assert!(cache.lookup(&key).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PulseCache {
    entries: HashMap<UnitaryKey, CachedPulse>,
}

impl PulseCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached unique groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a group by canonical key.
    pub fn lookup(&self, key: &UnitaryKey) -> Option<&CachedPulse> {
        self.entries.get(key)
    }

    /// `true` when the group is covered.
    pub fn contains(&self, key: &UnitaryKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts or replaces an entry; returns the previous value if any.
    pub fn insert(&mut self, key: UnitaryKey, value: CachedPulse) -> Option<CachedPulse> {
        self.entries.insert(key, value)
    }

    /// Removes an entry; returns it if it was present (the write-ahead
    /// log replays evictions through this).
    pub fn remove(&mut self, key: &UnitaryKey) -> Option<CachedPulse> {
        self.entries.remove(key)
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&UnitaryKey, &CachedPulse)> {
        self.entries.iter()
    }

    /// Consumes the cache, yielding its entries (unordered — callers that
    /// need determinism sort by key, as [`PulseCache::to_json`] does).
    pub fn into_entries(self) -> impl Iterator<Item = (UnitaryKey, CachedPulse)> {
        self.entries.into_iter()
    }

    /// Merges another cache into this one (other wins on conflicts).
    pub fn merge(&mut self, other: PulseCache) {
        self.entries.extend(other.entries);
    }

    /// Serializes to pretty JSON (entries sorted by key — deterministic
    /// for a given cache state).
    pub fn to_json(&self) -> String {
        let mut entries: Vec<(&UnitaryKey, &CachedPulse)> = self.entries.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let entries = entries
            .into_iter()
            .map(|(key, entry)| entry_to_json_value(key, entry))
            .collect();
        JsonValue::Object(vec![("entries".into(), JsonValue::Array(entries))]).to_pretty()
    }

    /// Deserializes from JSON produced by [`PulseCache::to_json`].
    ///
    /// Unknown per-entry fields are ignored, so artifacts extended with
    /// canonical unitaries (see [`crate::Session::save_cache`]) load
    /// here too — they just drop the index metadata.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = json::parse(text)?;
        let entries = doc
            .get("entries")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| malformed("missing `entries` array"))?;
        let mut cache = PulseCache::new();
        for entry in entries {
            let (key, entry) = entry_from_json_value(entry)?;
            cache.insert(key, entry);
        }
        Ok(cache)
    }

    /// Writes the cache to a file as JSON. The write is atomic
    /// (temp-file + rename), so a crash mid-save never leaves a torn
    /// artifact behind.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Store`] from file creation or writing.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        accqoc_store::write_atomic(path.as_ref(), self.to_json().as_bytes())?;
        Ok(())
    }

    /// Loads a cache from a JSON file.
    ///
    /// # Errors
    ///
    /// [`crate::Error::Io`] / [`crate::Error::Json`] on unreadable or malformed files.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
    }
}

fn malformed(message: &str) -> JsonError {
    JsonError {
        message: format!("pulse cache: {message}"),
        offset: 0,
    }
}

/// One cache entry as the canonical JSON object (`key`, `latency_ns`,
/// `iterations`, `n_qubits`, `pulse`). Shared by the artifact writer,
/// the extended indexed artifact, and the WAL record encoding, so every
/// persisted representation of an entry is byte-for-byte the same.
pub(crate) fn entry_to_json_value(key: &UnitaryKey, entry: &CachedPulse) -> JsonValue {
    JsonValue::Object(vec![
        ("key".into(), JsonValue::String(hex_encode(key.as_bytes()))),
        ("latency_ns".into(), JsonValue::Number(entry.latency_ns)),
        (
            "iterations".into(),
            JsonValue::Number(entry.iterations as f64),
        ),
        ("n_qubits".into(), JsonValue::Number(entry.n_qubits as f64)),
        (
            "pulse".into(),
            JsonValue::Object(vec![
                ("dt_ns".into(), JsonValue::Number(entry.pulse.dt_ns())),
                (
                    "amps".into(),
                    JsonValue::Array(
                        (0..entry.pulse.n_controls())
                            .map(|c| {
                                JsonValue::Array(
                                    entry
                                        .pulse
                                        .channel(c)
                                        .iter()
                                        .map(|&a| JsonValue::Number(a))
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Parses one entry object produced by [`entry_to_json_value`]. Unknown
/// fields (e.g. the optional `unitary` of indexed artifacts) are
/// ignored.
pub(crate) fn entry_from_json_value(entry: &JsonValue) -> Result<(UnitaryKey, CachedPulse)> {
    let key_hex = entry
        .get("key")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| malformed("entry missing `key`"))?;
    let key = UnitaryKey::from_bytes(hex_decode(key_hex)?);
    let latency_ns = entry
        .get("latency_ns")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| malformed("entry missing `latency_ns`"))?;
    let iterations = entry
        .get("iterations")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| malformed("entry missing `iterations`"))?;
    let n_qubits = entry
        .get("n_qubits")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| malformed("entry missing `n_qubits`"))?;
    let pulse = entry
        .get("pulse")
        .ok_or_else(|| malformed("entry missing `pulse`"))?;
    let dt_ns = pulse
        .get("dt_ns")
        .and_then(JsonValue::as_f64)
        .filter(|&dt| dt > 0.0)
        .ok_or_else(|| malformed("pulse missing positive `dt_ns`"))?;
    let amps = pulse
        .get("amps")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| malformed("pulse missing `amps`"))?;
    if amps.is_empty() {
        return Err(malformed("pulse has no control channels").into());
    }
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(amps.len());
    for row in amps {
        let row = row
            .as_array()
            .ok_or_else(|| malformed("amp row is not an array"))?;
        rows.push(
            row.iter()
                .map(|v| v.as_f64().ok_or_else(|| malformed("amp is not a number")))
                .collect::<std::result::Result<_, _>>()?,
        );
    }
    if rows.iter().any(|r| r.len() != rows[0].len()) {
        return Err(malformed("ragged amp rows").into());
    }
    Ok((
        key,
        CachedPulse {
            pulse: Pulse::from_amps(rows, dt_ns),
            latency_ns,
            iterations,
            n_qubits,
        },
    ))
}

pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

pub(crate) fn hex_decode(text: &str) -> Result<Vec<u8>> {
    if !text.len().is_multiple_of(2) || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(malformed("key is not a hex string").into());
    }
    Ok(text
        .as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16).expect("checked hex");
            let lo = (pair[1] as char).to_digit(16).expect("checked hex");
            (hi * 16 + lo) as u8
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn key_of(gates: &[Gate], n: usize) -> UnitaryKey {
        UnitaryKey::canonical(
            &circuit_unitary(&Circuit::from_gates(n, gates.iter().copied())),
            n,
        )
    }

    fn entry(n_qubits: usize, latency: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2 * n_qubits, latency as usize, 1.0),
            latency_ns: latency,
            iterations: 17,
            n_qubits,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut cache = PulseCache::new();
        let k = key_of(&[Gate::H(0)], 1);
        assert!(cache.lookup(&k).is_none());
        cache.insert(k.clone(), entry(1, 10.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&k).unwrap().latency_ns, 10.0);
    }

    #[test]
    fn equivalent_groups_hit_the_same_entry() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::Cx(0, 1)], 2), entry(2, 20.0));
        // cx with permuted qubits: same canonical key ⇒ covered.
        assert!(cache.contains(&key_of(&[Gate::Cx(1, 0)], 2)));
        // A different operation is not covered.
        assert!(!cache.contains(&key_of(&[Gate::Cz(0, 1)], 2)));
    }

    #[test]
    fn json_roundtrip() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::T(0)], 1), entry(1, 5.0));
        let mut wiggly = entry(2, 25.0);
        wiggly.pulse.set(1, 3, -0.123456789012345);
        cache.insert(key_of(&[Gate::Cx(0, 1), Gate::H(1)], 2), wiggly);
        let json = cache.to_json();
        let restored = PulseCache::from_json(&json).unwrap();
        assert_eq!(restored.len(), 2);
        for (k, v) in cache.iter() {
            assert_eq!(restored.lookup(k), Some(v), "exact round-trip");
        }
    }

    #[test]
    fn json_output_is_deterministic() {
        let build = || {
            let mut cache = PulseCache::new();
            cache.insert(key_of(&[Gate::T(0)], 1), entry(1, 5.0));
            cache.insert(key_of(&[Gate::H(0)], 1), entry(1, 7.0));
            cache.insert(key_of(&[Gate::Cx(0, 1)], 2), entry(2, 21.0));
            cache.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn file_roundtrip() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::X(0)], 1), entry(1, 10.0));
        let dir = std::env::temp_dir().join("accqoc_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let restored = PulseCache::load(&path).unwrap();
        assert_eq!(restored.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_prefers_other() {
        let k = key_of(&[Gate::H(0)], 1);
        let mut a = PulseCache::new();
        a.insert(k.clone(), entry(1, 10.0));
        let mut b = PulseCache::new();
        b.insert(k.clone(), entry(1, 8.0));
        a.merge(b);
        assert_eq!(a.lookup(&k).unwrap().latency_ns, 8.0);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            PulseCache::from_json("not json"),
            Err(Error::Json(_))
        ));
        assert!(PulseCache::from_json("{\"entries\": [{\"key\": \"zz\"}]}").is_err());
        assert!(PulseCache::from_json("{\"entries\": 3}").is_err());
    }
}
