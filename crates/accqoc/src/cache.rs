//! The pulse cache: the paper's "group list + pulse list + latency list"
//! artifact produced by static pre-compilation (§IV-C/D) and consulted by
//! dynamic compilation to skip covered groups.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use accqoc_circuit::UnitaryKey;
use accqoc_grape::Pulse;

/// A cached compilation result for one unique group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedPulse {
    /// The optimized control pulse.
    pub pulse: Pulse,
    /// Minimal feasible latency found by binary search, nanoseconds.
    pub latency_ns: f64,
    /// GRAPE iterations spent compiling this group (all probes).
    pub iterations: usize,
    /// Number of qubits of the group.
    pub n_qubits: usize,
}

/// Key-value store from canonical group identity to compiled pulse.
///
/// # Examples
///
/// ```
/// use accqoc::{CachedPulse, PulseCache};
/// use accqoc_circuit::UnitaryKey;
/// use accqoc_grape::Pulse;
/// use accqoc_linalg::Mat;
///
/// let mut cache = PulseCache::new();
/// let key = UnitaryKey::canonical(&Mat::identity(2), 1);
/// cache.insert(key.clone(), CachedPulse {
///     pulse: Pulse::zeros(2, 0, 1.0),
///     latency_ns: 0.0,
///     iterations: 0,
///     n_qubits: 1,
/// });
/// assert!(cache.lookup(&key).is_some());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "CacheOnDisk", into = "CacheOnDisk")]
pub struct PulseCache {
    entries: HashMap<UnitaryKey, CachedPulse>,
}

/// JSON-friendly representation: a list of entries (JSON object keys must
/// be strings, which byte-vector keys are not).
#[derive(Serialize, Deserialize)]
struct CacheOnDisk {
    entries: Vec<(UnitaryKey, CachedPulse)>,
}

impl From<CacheOnDisk> for PulseCache {
    fn from(disk: CacheOnDisk) -> Self {
        Self { entries: disk.entries.into_iter().collect() }
    }
}

impl From<PulseCache> for CacheOnDisk {
    fn from(cache: PulseCache) -> Self {
        let mut entries: Vec<(UnitaryKey, CachedPulse)> = cache.entries.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Self { entries }
    }
}

impl PulseCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached unique groups.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a group by canonical key.
    pub fn lookup(&self, key: &UnitaryKey) -> Option<&CachedPulse> {
        self.entries.get(key)
    }

    /// `true` when the group is covered.
    pub fn contains(&self, key: &UnitaryKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts or replaces an entry; returns the previous value if any.
    pub fn insert(&mut self, key: UnitaryKey, value: CachedPulse) -> Option<CachedPulse> {
        self.entries.insert(key, value)
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&UnitaryKey, &CachedPulse)> {
        self.entries.iter()
    }

    /// Merges another cache into this one (other wins on conflicts).
    pub fn merge(&mut self, other: PulseCache) {
        self.entries.extend(other.entries);
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures (effectively unreachable for this
    /// data model).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserializes from JSON produced by [`PulseCache::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error on malformed input.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }

    /// Writes the cache to a file as JSON.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from file creation or writing.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a cache from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns I/O or parse errors.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn key_of(gates: &[Gate], n: usize) -> UnitaryKey {
        UnitaryKey::canonical(&circuit_unitary(&Circuit::from_gates(n, gates.iter().copied())), n)
    }

    fn entry(n_qubits: usize, latency: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2 * n_qubits, latency as usize, 1.0),
            latency_ns: latency,
            iterations: 17,
            n_qubits,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut cache = PulseCache::new();
        let k = key_of(&[Gate::H(0)], 1);
        assert!(cache.lookup(&k).is_none());
        cache.insert(k.clone(), entry(1, 10.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&k).unwrap().latency_ns, 10.0);
    }

    #[test]
    fn equivalent_groups_hit_the_same_entry() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::Cx(0, 1)], 2), entry(2, 20.0));
        // cx with permuted qubits: same canonical key ⇒ covered.
        assert!(cache.contains(&key_of(&[Gate::Cx(1, 0)], 2)));
        // A different operation is not covered.
        assert!(!cache.contains(&key_of(&[Gate::Cz(0, 1)], 2)));
    }

    #[test]
    fn json_roundtrip() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::T(0)], 1), entry(1, 5.0));
        cache.insert(key_of(&[Gate::Cx(0, 1), Gate::H(1)], 2), entry(2, 25.0));
        let json = cache.to_json().unwrap();
        let restored = PulseCache::from_json(&json).unwrap();
        assert_eq!(restored.len(), 2);
        let k = key_of(&[Gate::T(0)], 1);
        assert_eq!(restored.lookup(&k), cache.lookup(&k));
    }

    #[test]
    fn file_roundtrip() {
        let mut cache = PulseCache::new();
        cache.insert(key_of(&[Gate::X(0)], 1), entry(1, 10.0));
        let dir = std::env::temp_dir().join("accqoc_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        cache.save(&path).unwrap();
        let restored = PulseCache::load(&path).unwrap();
        assert_eq!(restored.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_prefers_other() {
        let k = key_of(&[Gate::H(0)], 1);
        let mut a = PulseCache::new();
        a.insert(k.clone(), entry(1, 10.0));
        let mut b = PulseCache::new();
        b.insert(k.clone(), entry(1, 8.0));
        a.merge(b);
        assert_eq!(a.lookup(&k).unwrap().latency_ns, 8.0);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(PulseCache::from_json("not json").is_err());
    }
}
