//! AccQOC: accelerating quantum-optimal-control pulse generation.
//!
//! Reproduction of Cheng, Deng & Qian, *AccQOC: Accelerating Quantum
//! Optimal Control Based Pulse Generation* (ISCA 2020). The library turns
//! gate groups into control pulses with GRAPE while attacking GRAPE's
//! compile-time cost on three fronts:
//!
//! 1. **Static pre-compilation** ([`precompile`]) — profile a third of a
//!    benchmark suite, compile its de-duplicated group category once, and
//!    reuse the pulses forever (the [`PulseCache`]).
//! 2. **Similarity-MST warm starts** ([`SimilarityGraph`],
//!    [`mst_compile_order`]) — compile uncovered groups in an order that
//!    minimizes the similarity distance between consecutive groups,
//!    seeding each GRAPE run with its MST parent's pulse.
//! 3. **Balanced parallel compilation** ([`partition_tree`],
//!    [`compile_parallel`]) — split the MST into balanced connected parts
//!    and compile them on independent workers.
//!
//! [`AccQocCompiler::compile_program`] runs the full pipeline: decompose →
//! crosstalk-aware map → group (`map2b4l` et al.) → cache lookup →
//! MST-accelerated dynamic compile → Algorithm 3 latency, alongside the
//! gate-based and brute-force QOC baselines of the paper's evaluation.
//!
//! # Example
//!
//! ```no_run
//! use accqoc::{AccQocCompiler, AccQocConfig, PulseCache};
//! use accqoc_circuit::{Circuit, Gate};
//!
//! let compiler = AccQocCompiler::new(AccQocConfig::melbourne());
//! let mut cache = PulseCache::new();
//! let program = Circuit::from_gates(14, [Gate::H(0), Gate::Cx(0, 1)]);
//! let out = compiler.compile_program(&program, &mut cache)?;
//! println!("latency {:.1} ns ({}x vs gate-based)",
//!          out.overall_latency_ns, out.latency_reduction());
//! # Ok::<(), accqoc::AccQocError>(())
//! ```

#![warn(missing_docs)]

mod baselines;
mod cache;
mod compile;
mod mst;
mod parallel;
mod partition;
mod precompile;
mod similarity;

pub use baselines::{brute_force_qoc, BruteForceConfig, BruteForceResult};
pub use cache::{CachedPulse, PulseCache};
pub use compile::{
    warm_start_allowed, AccQocCompiler, AccQocConfig, AccQocError, CoverageStats,
    GroupCompilation, ModelSet, ProgramCompilation,
};
pub use mst::{mst_compile_order, scratch_order, CompileOrder, CompileStep, SimilarityGraph};
pub use parallel::{compile_parallel, ParallelStats};
pub use partition::{partition_tree, TreePartition, WeightedTree};
pub use precompile::{collect_category, optimize_group, precompile, precompile_parallel, PrecompileOrder, PrecompileReport};
pub use similarity::{uhlmann_fidelity, SimilarityFn};
