//! AccQOC: accelerating quantum-optimal-control pulse generation.
//!
//! Reproduction of Cheng, Deng & Qian, *AccQOC: Accelerating Quantum
//! Optimal Control Based Pulse Generation* (ISCA 2020). The library turns
//! gate groups into control pulses with GRAPE while attacking GRAPE's
//! compile-time cost on three fronts:
//!
//! 1. **Static pre-compilation** ([`Session::precompile`]) — profile a
//!    third of a benchmark suite, compile its de-duplicated group
//!    category once, and reuse the pulses forever (the [`PulseCache`]).
//! 2. **Similarity-MST warm starts** ([`SimilarityGraph`],
//!    [`mst_compile_order`]) — compile uncovered groups in an order that
//!    minimizes the similarity distance between consecutive groups,
//!    seeding each GRAPE run with its MST parent's pulse.
//! 3. **Balanced parallel compilation** ([`partition_tree`],
//!    [`compile_parallel_with`]) — split the MST into balanced connected
//!    parts and compile them on a real [`std::thread::scope`] worker
//!    pool, each worker with its own reusable GRAPE workspace, all
//!    writing into a sharded [`ConcurrentPulseCache`]. The partition
//!    plan is thread-count-invariant, so the persisted cache artifact is
//!    byte-identical however many threads run it.
//! 4. **Online serving** ([`PulseLibrary`],
//!    [`Session::serve_program`]) — programs arriving *after* batch
//!    precompile resolve each group against the live, fingerprint-indexed
//!    library: exact hits are free, misses warm-start GRAPE from the
//!    nearest cached neighbor (sublinear bucketed retrieval, exact
//!    similarity re-scoring on the top-k), and results insert back under
//!    an optional LRU capacity bound, with hit/miss/warm/scratch
//!    counters in [`LibraryStats`].
//!
//! The top-level entry point is [`Session`]: built once, it owns the
//! device configuration, the control models, and the pulse cache, and
//! exposes the pipeline of paper Figure 6 as explicit stages —
//! `decompose → map → group → lookup → compile → latency` — plus the
//! one-shot [`Session::compile_program`]. Every failure anywhere in the
//! pipeline surfaces as the unified [`Error`].
//!
//! Compiled output is *provable*, not just fast:
//! [`Session::verify_program`] propagates every cached pulse back through
//! the control Hamiltonians and scores it against the circuit's reference
//! unitaries ([`VerifyReport`]), and [`caches_equivalent`] is the
//! differential oracle asserting that independent compile engines realize
//! the same physics.
//!
//! # Example
//!
//! ```no_run
//! use accqoc::prelude::*;
//!
//! let session = Session::builder().topology(Topology::linear(3)).build()?;
//! let program = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1)]);
//! let out = session.compile_program(&program)?;
//! println!("latency {:.1} ns ({:.2}x vs gate-based)",
//!          out.overall_latency_ns, out.latency_reduction());
//! # Ok::<(), accqoc::Error>(())
//! ```

#![warn(missing_docs)]

mod baselines;
mod cache;
mod compile;
mod concurrent_cache;
mod error;
pub mod json;
pub mod library;
mod model;
mod mst;
mod parallel;
mod partition;
mod persist;
mod precompile;
mod session;
pub mod shard;
mod similarity;
mod verify;

pub use baselines::{brute_force_qoc, BruteForceConfig, BruteForceResult};
pub use cache::{CachedPulse, PulseCache};
#[allow(deprecated)]
pub use compile::AccQocCompiler;
pub use compile::{warm_start_allowed, AccQocConfig};
pub use concurrent_cache::{ConcurrentPulseCache, DEFAULT_CACHE_SHARDS};
#[allow(deprecated)]
pub use error::AccQocError;
pub use error::{Error, Result};
pub use library::{
    batch_plan, serve_grouped_subset, LibraryStats, NearestPulse, PulseLibrary, ServeOptions,
    ServeReport, ServedGroup, UnitaryFingerprint,
};
pub use model::{ModelSet, MAX_MODEL_QUBITS};
pub use mst::{mst_compile_order, scratch_order, CompileOrder, CompileStep, SimilarityGraph};
pub use parallel::{
    compile_parallel, compile_parallel_with, ParallelOptions, ParallelStats, WorkerTiming,
    DEFAULT_PLAN_PARTS,
};
pub use partition::{partition_tree, TreePartition, WeightedTree};
pub use persist::{PersistOptions, RecoveryReport, INDEX_FILE, SNAPSHOT_FILE, WAL_FILE};
pub use precompile::{
    collect_category, compile_programs_parallel, optimize_group, precompile, precompile_parallel,
    precompile_parallel_with, precompile_subset, Category, PrecompileOrder, PrecompileReport,
};
pub use session::{
    CompileReport, CoverageStats, DecomposeReport, GroupCompilation, GroupReport, GroupTarget,
    LatencyReport, LookupReport, MapReport, ProgramCompilation, Session, SessionBuilder,
};
pub use shard::{
    plan_resize, rebalance, rebalance_with_vnodes, RebalanceReport, ShardKey, ShardMove, ShardRing,
    DEFAULT_VNODES,
};
pub use similarity::{uhlmann_fidelity, uhlmann_fidelity_with, SimilarityFn, SimilarityScratch};
pub use verify::{
    caches_equivalent, CacheDivergence, EquivalenceReport, GroupVerification, VerifyOptions,
    VerifyReport,
};

/// One-line import for the common case: the session facade, the unified
/// error type, and the configuration vocabulary the builder speaks.
///
/// ```
/// use accqoc::prelude::*;
///
/// let builder = Session::builder().topology(Topology::linear(2));
/// assert!(builder.build().is_ok());
/// ```
pub mod prelude {
    // `crate::Result` is deliberately not re-exported: examples and
    // binaries routinely return `Result<(), Box<dyn Error>>`, and a
    // glob-imported alias would shadow `std::result::Result`.
    pub use crate::{
        CoverageStats, Error, LibraryStats, ModelSet, PrecompileOrder, ProgramCompilation,
        PulseCache, ServeOptions, ServeReport, Session, SessionBuilder, SimilarityFn,
        VerifyOptions, VerifyReport,
    };
    pub use accqoc_circuit::{Circuit, Gate};
    pub use accqoc_grape::{GrapeOptions, LatencySearch};
    pub use accqoc_group::GroupingPolicy;
    pub use accqoc_hw::Topology;
    pub use accqoc_map::MappingOptions;
}
