//! The durable library tier: write-ahead logging, snapshot compaction,
//! and byte-identical restart recovery.
//!
//! The paper's amortization argument (§V) only holds if the pulse
//! library outlives the process that built it. This module makes the
//! in-memory [`PulseLibrary`](crate::PulseLibrary) durable without
//! changing its serving semantics:
//!
//! - **Write-ahead log** (`library.wal`): every mutation — insert,
//!   fingerprint indexing, eviction, wholesale replace, clear — is
//!   appended as a checksummed compact-JSON record via
//!   [`accqoc_store::WalWriter`] and fsync'd before the call returns.
//!   Records are written *after* the in-memory apply, under the library
//!   state lock, so log order always equals apply order even with
//!   concurrent writers.
//! - **Snapshot compaction** (`snapshot.json` + `snapshot.index.json`):
//!   periodically (every [`PersistOptions::snapshot_every`] inserts, on
//!   explicit checkpoint, and on clean daemon shutdown) the full cache
//!   is written as the ordinary deterministic [`PulseCache::to_json`]
//!   artifact, the fingerprint index's canonical unitaries go to a
//!   sidecar, and the WAL is truncated. Both files are written
//!   atomically (temp + rename), and the WAL is only reset *after*
//!   they land — a crash at any point leaves a recoverable pair.
//!   Because every logged operation is a state *assignment*, replaying
//!   a stale WAL suffix over a newer snapshot is idempotent, so no
//!   generation counters are needed.
//! - **Recovery** ([`open`]): load snapshot + sidecar if present,
//!   replay the WAL suffix (tolerating a torn tail from a crash
//!   mid-append; rejecting checksum corruption with a typed
//!   [`Error::Store`](crate::Error::Store)), and hand back a cache that
//!   is byte-identical to the pre-crash state plus the unitaries needed
//!   to re-index every fingerprint bucket — so a restarted session
//!   warm-starts, it does not just exact-hit.
//!
//! Journal append failures after attach do not poison serving: the
//! library keeps working from memory, the journal goes *sticky* (drops
//! further records so a broken log cannot interleave gaps), and the
//! next successful snapshot — automatic or via
//! [`Session::checkpoint`](crate::Session::checkpoint), which surfaces
//! the error — rewrites the full state and makes the directory whole
//! again.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

use accqoc_circuit::UnitaryKey;
use accqoc_linalg::{Mat, C64};
use accqoc_store::{read_optional_string, write_atomic, StoreError, WalWriter};

use crate::cache::{entry_from_json_value, entry_to_json_value, hex_decode, hex_encode};
use crate::cache::{CachedPulse, PulseCache};
use crate::error::Result;
use crate::json::{self, JsonError, JsonValue};

/// File name of the write-ahead log inside the persistence directory.
pub const WAL_FILE: &str = "library.wal";

/// File name of the snapshot cache artifact (a plain
/// [`PulseCache::to_json`] document, loadable on its own).
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// File name of the snapshot's fingerprint-index sidecar (canonical
/// unitaries keyed like the cache, so recovery can re-index).
pub const INDEX_FILE: &str = "snapshot.index.json";

/// Auto-compaction default: snapshot once this many inserts accumulate
/// in the WAL.
const DEFAULT_SNAPSHOT_EVERY: usize = 128;

/// Canonical unitaries ready for fingerprint re-indexing:
/// `(key, unitary, n_qubits)` per indexed entry.
pub(crate) type IndexedUnitaries = Vec<(UnitaryKey, Mat, usize)>;

/// Where and how a session persists its pulse library.
///
/// # Examples
///
/// ```
/// use accqoc::PersistOptions;
///
/// let options = PersistOptions::new("/tmp/accqoc-data").snapshot_every(64);
/// assert_eq!(options.snapshot_every, 64);
/// ```
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding the WAL and snapshot pair (created on open).
    pub dir: PathBuf,
    /// Compact the WAL into a fresh snapshot after this many logged
    /// inserts. `0` disables auto-compaction — snapshots then happen
    /// only on explicit [`Session::checkpoint`](crate::Session::checkpoint)
    /// calls (and the daemon's clean shutdown).
    pub snapshot_every: usize,
}

impl PersistOptions {
    /// Persistence rooted at `dir`, compacting every
    /// 128 inserts.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// Overrides the auto-compaction threshold (`0` = explicit
    /// checkpoints only).
    #[must_use]
    pub fn snapshot_every(mut self, n: usize) -> Self {
        self.snapshot_every = n;
        self
    }
}

/// What open-time recovery found on disk. Exposed via
/// [`Session::recovery_report`](crate::Session::recovery_report).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Entries loaded from the snapshot artifact (0 on cold start).
    pub snapshot_entries: usize,
    /// Complete WAL records replayed on top of the snapshot.
    pub wal_records: usize,
    /// Bytes of torn WAL tail discarded (non-zero only after a crash
    /// mid-append; the truncated record's mutation was never
    /// acknowledged, so dropping it is correct).
    pub wal_truncated_bytes: u64,
    /// Entries in the recovered cache after replay.
    pub entries: usize,
    /// Recovered entries that carry a canonical unitary and are
    /// therefore fingerprint-indexed (warm-start capable) on load.
    pub indexed: usize,
}

/// One loggable library mutation, borrowed from the caller so the hot
/// path clones nothing unless a journal is attached.
pub(crate) enum Event<'a> {
    /// A pulse entered the cache (optionally with its canonical
    /// unitary, when it was indexed in the same call).
    Insert {
        /// Canonical key of the group.
        key: &'a UnitaryKey,
        /// The cached pulse payload.
        entry: &'a CachedPulse,
        /// Canonical unitary when the insert also indexed.
        unitary: Option<&'a Mat>,
    },
    /// An already-cached pulse gained its canonical unitary.
    Index {
        /// Canonical key of the group.
        key: &'a UnitaryKey,
        /// Width of the group.
        n_qubits: usize,
        /// The canonical unitary being indexed.
        unitary: &'a Mat,
    },
    /// The LRU policy dropped a pulse.
    Evict {
        /// Canonical key of the evicted group.
        key: &'a UnitaryKey,
    },
    /// The whole cache was swapped (entries pre-sorted by key).
    Replace {
        /// The replacement entries, sorted by key.
        entries: &'a [(UnitaryKey, CachedPulse)],
    },
    /// The whole cache was emptied.
    Clear,
}

/// A decoded WAL record, owned (the replay path's counterpart of
/// [`Event`]).
enum WalOp {
    Insert {
        key: UnitaryKey,
        entry: CachedPulse,
        unitary: Option<Mat>,
    },
    Index {
        key: UnitaryKey,
        n_qubits: usize,
        unitary: Mat,
    },
    Evict {
        key: UnitaryKey,
    },
    Replace {
        entries: Vec<(UnitaryKey, CachedPulse)>,
    },
    Clear,
}

fn malformed(message: &str) -> JsonError {
    JsonError {
        message: format!("durable store record: {message}"),
        offset: 0,
    }
}

/// Encodes a unitary as a flat `[re, im, re, im, ...]` JSON array in
/// row-major order (`2·d²` numbers for a `d×d` matrix).
fn unitary_to_json(u: &Mat) -> JsonValue {
    let cells = u.as_slice();
    let mut nums = Vec::with_capacity(cells.len() * 2);
    for c in cells {
        nums.push(JsonValue::Number(c.re));
        nums.push(JsonValue::Number(c.im));
    }
    JsonValue::Array(nums)
}

/// Decodes [`unitary_to_json`] output, checking the length against the
/// dimension implied by `n_qubits`.
fn unitary_from_json(value: &JsonValue, n_qubits: usize) -> Result<Mat> {
    let d = 1usize << n_qubits;
    let nums = value
        .as_array()
        .ok_or_else(|| malformed("unitary is not an array"))?;
    if nums.len() != 2 * d * d {
        return Err(malformed("unitary length does not match n_qubits").into());
    }
    let mut flat = Vec::with_capacity(d * d);
    for pair in nums.chunks(2) {
        let re = pair[0]
            .as_f64()
            .ok_or_else(|| malformed("unitary cell is not a number"))?;
        let im = pair[1]
            .as_f64()
            .ok_or_else(|| malformed("unitary cell is not a number"))?;
        flat.push(C64::new(re, im));
    }
    Ok(Mat::from_flat(&flat))
}

/// Serializes an event to its compact-JSON WAL payload.
fn encode_event(event: &Event<'_>) -> String {
    let value = match event {
        Event::Insert {
            key,
            entry,
            unitary,
        } => {
            let mut fields = vec![
                ("op".into(), JsonValue::String("insert".into())),
                ("entry".into(), entry_to_json_value(key, entry)),
            ];
            if let Some(u) = unitary {
                fields.push(("unitary".into(), unitary_to_json(u)));
            }
            JsonValue::Object(fields)
        }
        Event::Index {
            key,
            n_qubits,
            unitary,
        } => JsonValue::Object(vec![
            ("op".into(), JsonValue::String("index".into())),
            ("key".into(), JsonValue::String(hex_encode(key.as_bytes()))),
            ("n_qubits".into(), JsonValue::Number(*n_qubits as f64)),
            ("unitary".into(), unitary_to_json(unitary)),
        ]),
        Event::Evict { key } => JsonValue::Object(vec![
            ("op".into(), JsonValue::String("evict".into())),
            ("key".into(), JsonValue::String(hex_encode(key.as_bytes()))),
        ]),
        Event::Replace { entries } => JsonValue::Object(vec![
            ("op".into(), JsonValue::String("replace".into())),
            (
                "entries".into(),
                JsonValue::Array(
                    entries
                        .iter()
                        .map(|(key, entry)| entry_to_json_value(key, entry))
                        .collect(),
                ),
            ),
        ]),
        Event::Clear => JsonValue::Object(vec![("op".into(), JsonValue::String("clear".into()))]),
    };
    value.to_compact()
}

/// Parses one WAL payload back into an operation.
fn decode_record(payload: &[u8]) -> Result<WalOp> {
    let text = std::str::from_utf8(payload).map_err(|_| malformed("payload is not UTF-8"))?;
    let value = json::parse(text)?;
    let op = value
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| malformed("record missing `op`"))?;
    match op {
        "insert" => {
            let entry = value
                .get("entry")
                .ok_or_else(|| malformed("insert record missing `entry`"))?;
            let (key, entry) = entry_from_json_value(entry)?;
            let unitary = match value.get("unitary") {
                Some(u) => Some(unitary_from_json(u, entry.n_qubits)?),
                None => None,
            };
            Ok(WalOp::Insert {
                key,
                entry,
                unitary,
            })
        }
        "index" => {
            let key = value
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| malformed("index record missing `key`"))?;
            let key = UnitaryKey::from_bytes(hex_decode(key)?);
            let n_qubits = value
                .get("n_qubits")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| malformed("index record missing `n_qubits`"))?;
            let unitary = value
                .get("unitary")
                .ok_or_else(|| malformed("index record missing `unitary`"))?;
            let unitary = unitary_from_json(unitary, n_qubits)?;
            Ok(WalOp::Index {
                key,
                n_qubits,
                unitary,
            })
        }
        "evict" => {
            let key = value
                .get("key")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| malformed("evict record missing `key`"))?;
            Ok(WalOp::Evict {
                key: UnitaryKey::from_bytes(hex_decode(key)?),
            })
        }
        "replace" => {
            let entries = value
                .get("entries")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| malformed("replace record missing `entries`"))?;
            let entries = entries
                .iter()
                .map(entry_from_json_value)
                .collect::<Result<Vec<_>>>()?;
            Ok(WalOp::Replace { entries })
        }
        "clear" => Ok(WalOp::Clear),
        other => Err(malformed(&format!("unknown op `{other}`")).into()),
    }
}

/// Serializes the index sidecar: `{"entries": [{key, n_qubits,
/// unitary}, ...]}` with entries pre-sorted by key by the caller.
fn sidecar_json(unitaries: &[(UnitaryKey, Mat, usize)]) -> String {
    JsonValue::Object(vec![(
        "entries".into(),
        JsonValue::Array(
            unitaries
                .iter()
                .map(|(key, unitary, n_qubits)| {
                    JsonValue::Object(vec![
                        ("key".into(), JsonValue::String(hex_encode(key.as_bytes()))),
                        ("n_qubits".into(), JsonValue::Number(*n_qubits as f64)),
                        ("unitary".into(), unitary_to_json(unitary)),
                    ])
                })
                .collect(),
        ),
    )])
    .to_pretty()
}

/// Parses [`sidecar_json`] output.
fn parse_sidecar(text: &str) -> Result<IndexedUnitaries> {
    let value = json::parse(text)?;
    let entries = value
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| malformed("index sidecar missing `entries`"))?;
    let mut out = Vec::with_capacity(entries.len());
    for entry in entries {
        let key = entry
            .get("key")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| malformed("sidecar entry missing `key`"))?;
        let key = UnitaryKey::from_bytes(hex_decode(key)?);
        let n_qubits = entry
            .get("n_qubits")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| malformed("sidecar entry missing `n_qubits`"))?;
        let unitary = entry
            .get("unitary")
            .ok_or_else(|| malformed("sidecar entry missing `unitary`"))?;
        out.push((key, unitary_from_json(unitary, n_qubits)?, n_qubits));
    }
    Ok(out)
}

/// The extended user-facing cache artifact: the plain
/// [`PulseCache::to_json`] document with an optional `unitary` field
/// appended to every entry the fingerprint index holds, so
/// [`Session::load_cache`](crate::Session::load_cache) can re-index.
/// Still loadable by [`PulseCache::from_json`], which ignores the extra
/// field.
pub(crate) fn indexed_cache_json(
    cache: &PulseCache,
    unitaries: &[(UnitaryKey, Mat, usize)],
) -> String {
    let by_key: std::collections::HashMap<&UnitaryKey, &Mat> =
        unitaries.iter().map(|(k, u, _)| (k, u)).collect();
    let mut entries: Vec<(&UnitaryKey, &CachedPulse)> = cache.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    JsonValue::Object(vec![(
        "entries".into(),
        JsonValue::Array(
            entries
                .into_iter()
                .map(|(key, entry)| {
                    let mut object = entry_to_json_value(key, entry);
                    if let Some(unitary) = by_key.get(key) {
                        if let JsonValue::Object(fields) = &mut object {
                            fields.push(("unitary".into(), unitary_to_json(unitary)));
                        }
                    }
                    object
                })
                .collect(),
        ),
    )])
    .to_pretty()
}

/// Parses a cache artifact — plain or extended — returning the cache
/// plus whatever canonical unitaries the entries carried.
pub(crate) fn parse_indexed_cache(text: &str) -> Result<(PulseCache, IndexedUnitaries)> {
    let value = json::parse(text)?;
    let entries = value
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| malformed("cache artifact missing `entries`"))?;
    let mut cache = PulseCache::new();
    let mut unitaries = Vec::new();
    for entry in entries {
        let (key, cached) = entry_from_json_value(entry)?;
        if let Some(u) = entry.get("unitary") {
            unitaries.push((
                key.clone(),
                unitary_from_json(u, cached.n_qubits)?,
                cached.n_qubits,
            ));
        }
        cache.insert(key, cached);
    }
    Ok((cache, unitaries))
}

/// The live half of the durable tier: owns the WAL writer and the
/// compaction counter. Attached to a `PulseLibrary` after recovery has
/// seeded it, so recovered state is not re-logged.
#[derive(Debug)]
pub(crate) struct Journal {
    options: PersistOptions,
    inner: Mutex<JournalInner>,
}

#[derive(Debug)]
struct JournalInner {
    wal: WalWriter,
    inserts_since_snapshot: usize,
    /// First append/snapshot failure since the last good snapshot.
    /// While set, further records are dropped (a log with silent gaps
    /// is worse than a short one) and the next successful snapshot —
    /// which rewrites the complete state — clears it.
    sticky: Option<StoreError>,
}

impl Journal {
    fn lock(&self) -> MutexGuard<'_, JournalInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Appends one mutation record; failures go sticky instead of
    /// surfacing (serving must not die on a full disk — the error
    /// resurfaces at the next explicit checkpoint).
    pub(crate) fn record(&self, event: &Event<'_>) {
        let payload = encode_event(event);
        let mut inner = self.lock();
        if inner.sticky.is_some() {
            return;
        }
        match inner.wal.append(payload.as_bytes()) {
            Ok(()) => {
                if matches!(event, Event::Insert { .. }) {
                    inner.inserts_since_snapshot += 1;
                }
            }
            Err(e) => inner.sticky = Some(e),
        }
    }

    /// Whether the auto-compaction insert threshold has been reached.
    pub(crate) fn due_for_snapshot(&self) -> bool {
        let inner = self.lock();
        self.options.snapshot_every > 0
            && inner.inserts_since_snapshot >= self.options.snapshot_every
    }

    /// Writes the snapshot artifact pair atomically and truncates the
    /// WAL. Clears the sticky error on success (the snapshot rewrote
    /// everything the lost records described); on failure the previous
    /// snapshot + WAL pair on disk stays recoverable.
    pub(crate) fn snapshot(
        &self,
        cache: &PulseCache,
        unitaries: &[(UnitaryKey, Mat, usize)],
    ) -> std::result::Result<(), StoreError> {
        let snapshot = cache.to_json();
        let sidecar = sidecar_json(unitaries);
        let mut inner = self.lock();
        match write_snapshot_pair(&self.options.dir, &snapshot, &sidecar, &mut inner.wal) {
            Ok(()) => {
                inner.inserts_since_snapshot = 0;
                inner.sticky = None;
                Ok(())
            }
            Err(e) => {
                if inner.sticky.is_none() {
                    inner.sticky = Some(StoreError::Io(io::Error::other(format!(
                        "snapshot failed: {e}"
                    ))));
                }
                Err(e)
            }
        }
    }

    /// The pending append failure, if any (test-only observability; a
    /// successful snapshot clears it by rewriting the full state).
    #[cfg(test)]
    pub(crate) fn sticky_error(&self) -> Option<String> {
        self.lock().sticky.as_ref().map(|e| e.to_string())
    }
}

fn write_snapshot_pair(
    dir: &Path,
    snapshot: &str,
    sidecar: &str,
    wal: &mut WalWriter,
) -> std::result::Result<(), StoreError> {
    write_atomic(&dir.join(SNAPSHOT_FILE), snapshot.as_bytes())?;
    write_atomic(&dir.join(INDEX_FILE), sidecar.as_bytes())?;
    wal.reset()
}

/// Recovery output: the state to seed a library with, plus the report.
pub(crate) struct Recovered {
    pub cache: PulseCache,
    pub unitaries: IndexedUnitaries,
    pub report: RecoveryReport,
}

/// Opens (or cold-starts) a persistence directory: loads the snapshot
/// pair if present, replays the WAL suffix on top, and returns the
/// journal ready for logging. A missing or empty directory is a cold
/// start, not an error; a checksum-corrupted WAL record is
/// [`Error::Store`](crate::Error::Store).
pub(crate) fn open(options: &PersistOptions) -> Result<(Journal, Recovered)> {
    std::fs::create_dir_all(&options.dir)?;
    let mut cache = match read_optional_string(&options.dir.join(SNAPSHOT_FILE))? {
        Some(text) => PulseCache::from_json(&text)?,
        None => PulseCache::new(),
    };
    let mut unitaries: BTreeMap<UnitaryKey, (Mat, usize)> = BTreeMap::new();
    if let Some(text) = read_optional_string(&options.dir.join(INDEX_FILE))? {
        for (key, unitary, n_qubits) in parse_sidecar(&text)? {
            unitaries.insert(key, (unitary, n_qubits));
        }
    }
    let snapshot_entries = cache.len();
    let (wal, replay) = WalWriter::open(&options.dir.join(WAL_FILE))?;
    let wal_records = replay.records.len();
    for record in &replay.records {
        match decode_record(record)? {
            WalOp::Insert {
                key,
                entry,
                unitary,
            } => {
                if let Some(u) = unitary {
                    unitaries.insert(key.clone(), (u, entry.n_qubits));
                }
                cache.insert(key, entry);
            }
            WalOp::Index {
                key,
                n_qubits,
                unitary,
            } => {
                // Mirrors the live `index_unitary`: indexing a key that
                // is no longer cached is a no-op.
                if cache.contains(&key) {
                    unitaries.insert(key, (unitary, n_qubits));
                }
            }
            WalOp::Evict { key } => {
                cache.remove(&key);
                unitaries.remove(&key);
            }
            WalOp::Replace { entries } => {
                cache = PulseCache::new();
                unitaries.clear();
                for (key, entry) in entries {
                    cache.insert(key, entry);
                }
            }
            WalOp::Clear => {
                cache = PulseCache::new();
                unitaries.clear();
            }
        }
    }
    // An insert can overwrite an entry whose unitary was indexed for a
    // *different* pulse generation; the live library keeps the stale
    // index entry too, so no pruning beyond cache membership is needed.
    unitaries.retain(|key, _| cache.contains(key));
    let unitaries: IndexedUnitaries = unitaries
        .into_iter()
        .map(|(key, (unitary, n_qubits))| (key, unitary, n_qubits))
        .collect();
    let report = RecoveryReport {
        snapshot_entries,
        wal_records,
        wal_truncated_bytes: replay.truncated_bytes,
        entries: cache.len(),
        indexed: unitaries.len(),
    };
    let journal = Journal {
        options: options.clone(),
        inner: Mutex::new(JournalInner {
            wal,
            inserts_since_snapshot: 0,
            sticky: None,
        }),
    };
    Ok((
        journal,
        Recovered {
            cache,
            unitaries,
            report,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_grape::Pulse;

    fn entry(n_qubits: usize, latency_ns: f64) -> CachedPulse {
        CachedPulse {
            pulse: Pulse::zeros(2 * n_qubits, 4, 1.0),
            latency_ns,
            iterations: 7,
            n_qubits,
        }
    }

    fn key(tag: u8) -> UnitaryKey {
        UnitaryKey::from_bytes(vec![tag; 4])
    }

    #[test]
    fn unitary_json_round_trips() {
        let u = Mat::from_flat(&[
            C64::new(0.6, 0.0),
            C64::new(0.0, -0.8),
            C64::new(0.0, -0.8),
            C64::new(0.6, 0.0),
        ]);
        let round = unitary_from_json(&unitary_to_json(&u), 1).expect("decodes");
        assert_eq!(round.as_slice(), u.as_slice());
        // Dimension mismatch is typed, not a panic.
        assert!(unitary_from_json(&unitary_to_json(&u), 2).is_err());
    }

    #[test]
    fn every_event_round_trips_through_the_record_codec() {
        let u = Mat::identity(2);
        let e = entry(1, 40.0);
        let pairs = vec![(key(1), entry(1, 40.0)), (key(2), entry(1, 50.0))];
        let events = [
            Event::Insert {
                key: &key(1),
                entry: &e,
                unitary: Some(&u),
            },
            Event::Insert {
                key: &key(1),
                entry: &e,
                unitary: None,
            },
            Event::Index {
                key: &key(1),
                n_qubits: 1,
                unitary: &u,
            },
            Event::Evict { key: &key(9) },
            Event::Replace { entries: &pairs },
            Event::Clear,
        ];
        for event in &events {
            let payload = encode_event(event);
            let op = decode_record(payload.as_bytes()).expect("decodes");
            match (event, &op) {
                (Event::Insert { unitary, .. }, WalOp::Insert { unitary: got, .. }) => {
                    assert_eq!(unitary.is_some(), got.is_some());
                }
                (Event::Index { .. }, WalOp::Index { n_qubits, .. }) => {
                    assert_eq!(*n_qubits, 1);
                }
                (Event::Evict { .. }, WalOp::Evict { key }) => {
                    assert_eq!(key.as_bytes(), &[9; 4]);
                }
                (Event::Replace { .. }, WalOp::Replace { entries }) => {
                    assert_eq!(entries.len(), 2);
                }
                (Event::Clear, WalOp::Clear) => {}
                _ => panic!("event decoded to the wrong op"),
            }
        }
    }

    #[test]
    fn unknown_op_is_a_typed_error() {
        assert!(decode_record(br#"{"op":"defrag"}"#).is_err());
        assert!(decode_record(b"\xff\xfe").is_err());
    }

    #[test]
    fn indexed_artifact_round_trips_and_stays_plain_loadable() {
        let mut cache = PulseCache::new();
        cache.insert(key(1), entry(1, 40.0));
        cache.insert(key(2), entry(1, 50.0));
        let unitaries = vec![(key(1), Mat::identity(2), 1)];
        let text = indexed_cache_json(&cache, &unitaries);
        let (round, round_unitaries) = parse_indexed_cache(&text).expect("parses");
        assert_eq!(round.len(), 2);
        assert_eq!(round_unitaries.len(), 1);
        assert_eq!(round_unitaries[0].0, key(1));
        // The plain loader ignores the `unitary` field.
        let plain = PulseCache::from_json(&text).expect("plain loader accepts");
        assert_eq!(plain.len(), 2);
        // Entries without unitaries produce the exact legacy document.
        let legacy = indexed_cache_json(&cache, &[]);
        assert_eq!(legacy, cache.to_json());
    }

    #[test]
    fn sidecar_round_trips_sorted() {
        let unitaries = vec![(key(1), Mat::identity(2), 1), (key(3), Mat::identity(4), 2)];
        let parsed = parse_sidecar(&sidecar_json(&unitaries)).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].2, 2);
        assert_eq!(parsed[1].1.as_slice(), Mat::identity(4).as_slice());
    }

    #[test]
    fn open_replays_wal_over_snapshot() {
        let dir = std::env::temp_dir().join(format!("accqoc-persist-open-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = PersistOptions::new(&dir).snapshot_every(0);
        // Cold start.
        let (journal, recovered) = open(&options).expect("cold start");
        assert_eq!(recovered.report, RecoveryReport::default());
        // Log a few mutations, snapshot mid-way, log more.
        journal.record(&Event::Insert {
            key: &key(1),
            entry: &entry(1, 40.0),
            unitary: Some(&Mat::identity(2)),
        });
        journal.record(&Event::Insert {
            key: &key(2),
            entry: &entry(1, 50.0),
            unitary: None,
        });
        let mut cache = PulseCache::new();
        cache.insert(key(1), entry(1, 40.0));
        cache.insert(key(2), entry(1, 50.0));
        journal
            .snapshot(&cache, &[(key(1), Mat::identity(2), 1)])
            .expect("snapshot");
        journal.record(&Event::Insert {
            key: &key(3),
            entry: &entry(1, 60.0),
            unitary: None,
        });
        journal.record(&Event::Evict { key: &key(2) });
        drop(journal);
        // Reopen: snapshot(2 entries) + WAL suffix(insert 3, evict 2).
        let (_journal, recovered) = open(&options).expect("recovers");
        assert_eq!(recovered.report.snapshot_entries, 2);
        assert_eq!(recovered.report.wal_records, 2);
        assert_eq!(recovered.report.entries, 2);
        assert_eq!(recovered.report.indexed, 1);
        assert!(recovered.cache.contains(&key(1)));
        assert!(recovered.cache.contains(&key(3)));
        assert!(!recovered.cache.contains(&key(2)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sticky_journal_drops_records_until_a_snapshot_repairs_it() {
        let dir =
            std::env::temp_dir().join(format!("accqoc-persist-sticky-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = PersistOptions::new(&dir).snapshot_every(0);
        let (journal, _) = open(&options).expect("cold start");
        // Simulate an append failure (e.g. disk full) going sticky.
        journal.lock().sticky = Some(StoreError::Io(io::Error::other("disk full")));
        assert!(journal
            .sticky_error()
            .expect("sticky")
            .contains("disk full"));
        // While sticky, records are dropped — no partial log with gaps.
        journal.record(&Event::Insert {
            key: &key(1),
            entry: &entry(1, 40.0),
            unitary: None,
        });
        // A successful snapshot rewrites the full state and clears it.
        let mut cache = PulseCache::new();
        cache.insert(key(1), entry(1, 40.0));
        journal.snapshot(&cache, &[]).expect("snapshot repairs");
        assert!(journal.sticky_error().is_none());
        drop(journal);
        // Recovery sees the snapshot only: the dropped record left no
        // trace, but the state it described was captured wholesale.
        let (_journal, recovered) = open(&options).expect("recovers");
        assert_eq!(recovered.report.snapshot_entries, 1);
        assert_eq!(recovered.report.wal_records, 0);
        assert!(recovered.cache.contains(&key(1)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
