//! Minimal JSON reader/writer for pulse-cache persistence.
//!
//! The build environment has no crates.io access, so the cache's on-disk
//! format is produced by this self-contained module instead of serde.
//! It supports exactly what [`crate::PulseCache`] needs: objects, arrays,
//! strings, `f64` numbers (round-tripped exactly via Rust's shortest
//! representation), booleans, and `null`. Object key order is preserved,
//! which keeps the emitted cache byte-deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

/// A JSON parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Self::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline,
    /// byte-deterministic for a given value.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no trailing newline — the
    /// framing the newline-delimited daemon protocol needs (a pretty
    /// document would split one message across frames). Strings escape
    /// control characters, so the output never contains a raw `\n`.
    /// Byte-deterministic for a given value, and [`parse`] round-trips
    /// it exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::json::JsonValue;
    ///
    /// let doc = JsonValue::Object(vec![
    ///     ("ok".into(), JsonValue::Bool(true)),
    ///     ("ids".into(), JsonValue::Array(vec![JsonValue::Number(1.0)])),
    /// ]);
    /// let line = doc.to_compact();
    /// assert_eq!(line, r#"{"ok": true, "ids": [1]}"#);
    /// assert!(!line.contains('\n'));
    /// assert_eq!(accqoc::json::parse(&line).unwrap(), doc);
    /// ```
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => write_number(out, *n),
            Self::String(s) => write_string(out, s),
            Self::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Self::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => write_number(out, *n),
            Self::String(s) => write_string(out, s),
            Self::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars stay on one line; nested ones wrap.
                let scalar = items
                    .iter()
                    .all(|v| !matches!(v, Self::Array(_) | Self::Object(_)));
                if scalar {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        v.write_pretty(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, v) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        v.write_pretty(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            Self::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 9.0e15 && !(n == 0.0 && n.is_sign_negative()) {
            // Integral values (counts, whole-ns latencies) print without
            // the `.0`; parsing "18" yields bit-identical 18.0.
            out.push_str(&format!("{}", n as i64));
        } else {
            // `{:?}` is Rust's shortest representation that parses back
            // to exactly the same f64 — the cache round-trips rely on it.
            out.push_str(&format!("{n:?}"));
        }
    } else {
        // JSON has no Inf/NaN; the cache never stores them, but degrade
        // gracefully rather than emitting invalid JSON.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts (serde_json uses the
/// same default). The recursive-descent parser would otherwise overflow
/// the stack on adversarially nested input instead of erroring.
const MAX_DEPTH: usize = 128;

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] with a byte offset on malformed input, including
/// trailing garbage after the top-level value and nesting deeper than
/// 128 containers.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after json value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_nested(Parser::parse_object),
            Some(b'[') => self.parse_nested(Parser::parse_array),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_nested(
        &mut self,
        inner: fn(&mut Self) -> Result<JsonValue, JsonError>,
    ) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 containers"));
        }
        self.depth += 1;
        let out = inner(self);
        self.depth -= 1;
        out
    }

    fn parse_literal(&mut self, literal: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("numeric bytes are ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.error("truncated unicode escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid unicode escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid unicode escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("cache".into())),
            (
                "entries".into(),
                JsonValue::Array(vec![JsonValue::Object(vec![
                    ("latency".into(), JsonValue::Number(12.5)),
                    (
                        "amps".into(),
                        JsonValue::Array(vec![JsonValue::Number(-0.125), JsonValue::Number(3.0)]),
                    ),
                    ("ok".into(), JsonValue::Bool(true)),
                    ("none".into(), JsonValue::Null),
                ])]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7, 10.0] {
            let text = JsonValue::Number(v).to_pretty();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} reparsed as {back}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" back\\slash \t end\u{1}";
        let text = JsonValue::String(s.into()).to_pretty();
        assert_eq!(parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // 128 levels are accepted…
        let ok = format!("{}null{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok());
        // …but adversarial input (e.g. a corrupted cache file) errors.
        let deep = "[".repeat(200_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let mixed = format!("{}{}", "[{\"k\": ".repeat(100_000), "0");
        assert!(parse(&mixed).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
        let err = parse("[1, @]").unwrap_err();
        assert!(err.offset > 0);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": [1, 2.5], \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_usize(),
            Some(1)
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_usize(), None);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.as_f64(), None);
    }

    #[test]
    fn compact_output_is_single_line_and_roundtrips() {
        let doc = JsonValue::Object(vec![
            ("s".into(), JsonValue::String("multi\nline \"q\"".into())),
            (
                "nested".into(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![("k".into(), JsonValue::Number(0.1))]),
                    JsonValue::Null,
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let line = doc.to_compact();
        assert!(!line.contains('\n'), "compact output must be one frame");
        assert_eq!(parse(&line).unwrap(), doc);
        // Compact and pretty agree on content, not on bytes.
        assert_eq!(parse(&doc.to_pretty()).unwrap(), parse(&line).unwrap());
        assert_eq!(JsonValue::Array(vec![]).to_compact(), "[]");
        assert_eq!(JsonValue::Object(vec![]).to_compact(), "{}");
    }

    #[test]
    fn deterministic_output() {
        let doc = JsonValue::Array(vec![JsonValue::Number(0.1), JsonValue::Number(0.2)]);
        assert_eq!(doc.to_pretty(), doc.to_pretty());
        assert_eq!(doc.to_pretty(), "[0.1, 0.2]\n");
    }
}
