//! Multi-threaded compilation over a balanced MST partition (paper §V-D).
//!
//! The MST dependencies are "soft": a group can always be trained from
//! scratch, so partitioning the tree into balanced connected parts lets
//! independent workers compile concurrently. Each worker follows its
//! part's local MST sequence; edges cut by the partition degrade to
//! scratch starts — exactly the trade the paper describes.
//!
//! # Execution model
//!
//! The engine separates the **plan** from the **execution**:
//!
//! - The *plan* is the balanced partition of the weighted MST into
//!   [`ParallelOptions::plan_parts`] connected parts, each with a local
//!   compile sequence (global MST order restricted to the part, cut
//!   parents degraded to scratch). The plan depends only on the inputs
//!   and the part count — never on thread count or timing.
//! - The *execution* runs the parts on a [`std::thread::scope`] worker
//!   pool of [`ParallelOptions::threads`] OS threads. Parts are handed
//!   out longest-processing-time-first from a shared atomic queue; each
//!   worker owns a reusable GRAPE workspace and writes results into a
//!   sharded [`ConcurrentPulseCache`], so workers never serialize on a
//!   global cache lock.
//!
//! Because GRAPE is deterministic and the plan is thread-count-invariant,
//! compiling with 1 thread and with 16 threads produces **byte-identical
//! pulse-cache artifacts** (see [`ConcurrentPulseCache::snapshot`]); only
//! the wall clock changes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use accqoc_circuit::UnitaryKey;
use accqoc_grape::Pulse;
use accqoc_linalg::Mat;

use crate::cache::{CachedPulse, PulseCache};
use crate::compile::warm_start_allowed;
use crate::concurrent_cache::ConcurrentPulseCache;
use crate::error::{Error, Result};
use crate::mst::CompileOrder;
use crate::partition::{partition_tree, TreePartition, WeightedTree};
use crate::session::Session;

/// Default plan width: how many connected parts the MST is split into
/// when the caller does not pin one. Chosen above common core counts so
/// the pool stays busy, while keeping the number of cut MST edges (and
/// thus extra scratch starts) small.
pub const DEFAULT_PLAN_PARTS: usize = 8;

/// Configuration of a parallel compilation run.
#[derive(Debug, Clone)]
pub struct ParallelOptions {
    /// OS threads in the worker pool (≥ 1). More threads than parts is
    /// allowed; the surplus idles.
    pub threads: usize,
    /// Parts in the MST partition plan; `None` uses
    /// [`DEFAULT_PLAN_PARTS`]. The plan — and therefore the compiled
    /// pulses and the persisted cache artifact — depends on this value
    /// but **not** on [`ParallelOptions::threads`]: change `plan_parts`
    /// and the cut-edge set changes; change `threads` and only the wall
    /// clock changes.
    pub plan_parts: Option<usize>,
}

impl ParallelOptions {
    /// A plan-stable configuration for `threads` workers: the default
    /// plan width with the given pool size.
    pub fn threads(threads: usize) -> Self {
        Self {
            threads,
            plan_parts: None,
        }
    }

    /// Pins the plan width (the paper's §V-D modeling uses one part per
    /// worker: `ParallelOptions::threads(k).with_plan_parts(k)`).
    pub fn with_plan_parts(mut self, parts: usize) -> Self {
        self.plan_parts = Some(parts);
        self
    }
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            plan_parts: None,
        }
    }
}

/// Wall-clock accounting for one pool worker.
#[derive(Debug, Clone)]
pub struct WorkerTiming {
    /// Pool worker index (`0..threads`).
    pub worker: usize,
    /// Parts this worker executed.
    pub parts: usize,
    /// Groups this worker compiled.
    pub groups: usize,
    /// GRAPE iterations this worker spent.
    pub iterations: usize,
    /// Busy wall-clock time of this worker (from first part claimed to
    /// last part finished).
    pub wall: Duration,
}

/// Statistics from a parallel compilation run.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    /// GRAPE iterations per plan part.
    pub iterations_per_part: Vec<usize>,
    /// Sum of iterations across parts. Cut MST edges degrade warm starts
    /// to scratch starts, so this can exceed what a fully sequential MST
    /// compile would have spent — that surplus is the price of
    /// parallelism the paper accepts in §V-D.
    pub total_iterations: usize,
    /// Iteration-metric makespan: the heaviest *part's* iteration load,
    /// i.e. the parallel compile time under the paper's iteration-count
    /// model with one worker per part. Always `<=` `total_iterations`
    /// (it is the max of the per-part terms whose sum is the total);
    /// real wall-clock timings are in
    /// [`ParallelStats::worker_timings`].
    pub makespan_iterations: usize,
    /// Number of MST edges cut by the partition. Each cut edge turns one
    /// warm start into a scratch start.
    pub cut_edges: usize,
    /// The partition itself.
    pub partition: TreePartition,
    /// Per-worker wall-clock accounting (one entry per pool thread that
    /// executed at least one part).
    pub worker_timings: Vec<WorkerTiming>,
    /// Wall-clock time of the whole parallel section (plan build
    /// excluded, thread spawn/join included).
    pub wall: Duration,
}

impl ParallelStats {
    /// Wall-clock speedup proxy: the busiest worker's share of the total
    /// busy time (`Σ worker wall / max worker wall`). 1.0 when a single
    /// worker did everything.
    pub fn worker_parallelism(&self) -> f64 {
        let max = self
            .worker_timings
            .iter()
            .map(|t| t.wall.as_secs_f64())
            .fold(0.0, f64::max);
        if max == 0.0 {
            return 1.0;
        }
        let sum: f64 = self
            .worker_timings
            .iter()
            .map(|t| t.wall.as_secs_f64())
            .sum();
        sum / max
    }

    fn empty() -> Self {
        Self {
            iterations_per_part: vec![],
            total_iterations: 0,
            makespan_iterations: 0,
            cut_edges: 0,
            partition: TreePartition {
                part_of: vec![],
                n_parts: 0,
            },
            worker_timings: vec![],
            wall: Duration::ZERO,
        }
    }
}

/// One part's compile plan: `(vertex, warm parent)` in local MST order.
type PartPlan = Vec<(usize, Option<usize>)>;

/// Builds the per-part local sequences (global selection order restricted
/// to each part, cut parents degraded to scratch) and counts cut edges.
fn build_plans(order: &CompileOrder, parts: &[Vec<usize>]) -> (Vec<PartPlan>, usize) {
    let mut cut_edges = 0usize;
    let mut plans: Vec<PartPlan> = Vec::with_capacity(parts.len());
    for part in parts {
        let mut plan = Vec::with_capacity(part.len());
        for step in &order.steps {
            if !part.contains(&step.vertex) {
                continue;
            }
            let parent = match step.parent {
                Some(p) if part.contains(&p) => Some(p),
                Some(_) => {
                    cut_edges += 1;
                    None
                }
                None => None,
            };
            plan.push((step.vertex, parent));
        }
        plans.push(plan);
    }
    (plans, cut_edges)
}

/// Compiles the groups of a compile order with `n_workers` parallel
/// workers over a balanced partition of the MST, one plan part per
/// worker — the paper's §V-D setup. Results land in a fresh
/// [`PulseCache`]; pass `keys` aligned with `unitaries`.
///
/// Because the plan width here *equals* the worker count, the compiled
/// pulses depend on `n_workers` (more workers ⇒ more cut edges). Use
/// [`compile_parallel_with`] with a fixed
/// [`ParallelOptions::plan_parts`] when the artifact must be identical
/// across thread counts — that is what [`Session::precompile_parallel`]
/// does.
///
/// # Errors
///
/// [`Error::InvalidConfig`] when `n_workers == 0` or input lengths
/// disagree; otherwise propagates the first compilation failure (other
/// workers' completed work is discarded).
pub fn compile_parallel(
    session: &Session,
    order: &CompileOrder,
    unitaries: &[(Mat, usize)],
    keys: &[UnitaryKey],
    n_workers: usize,
) -> Result<(PulseCache, ParallelStats)> {
    if n_workers == 0 {
        return Err(Error::InvalidConfig {
            message: "need at least one worker".into(),
        });
    }
    compile_parallel_with(
        session,
        order,
        unitaries,
        keys,
        &ParallelOptions::threads(n_workers).with_plan_parts(n_workers),
    )
}

/// Compiles the groups of a compile order on a worker pool over a
/// balanced MST partition (see the module-level docs for the
/// plan/execution split). Results land in a fresh [`PulseCache`]; pass
/// `keys` aligned with `unitaries`.
///
/// # Errors
///
/// [`Error::InvalidConfig`] when `options.threads == 0` or input lengths
/// disagree; otherwise propagates the first compilation failure (other
/// workers' completed work is discarded).
pub fn compile_parallel_with(
    session: &Session,
    order: &CompileOrder,
    unitaries: &[(Mat, usize)],
    keys: &[UnitaryKey],
    options: &ParallelOptions,
) -> Result<(PulseCache, ParallelStats)> {
    if options.threads == 0 {
        return Err(Error::InvalidConfig {
            message: "need at least one worker thread".into(),
        });
    }
    if unitaries.len() != keys.len() {
        return Err(Error::InvalidConfig {
            message: format!("{} unitaries but {} keys", unitaries.len(), keys.len()),
        });
    }
    let n = unitaries.len();
    if n == 0 {
        return Ok((PulseCache::new(), ParallelStats::empty()));
    }

    let tree = WeightedTree::from_order(order, n);
    let plan_parts = options.plan_parts.unwrap_or(DEFAULT_PLAN_PARTS).max(1);
    let partition = partition_tree(&tree, plan_parts);
    let parts = partition.parts();
    let (plans, cut_edges) = build_plans(order, &parts);

    // Longest-processing-time-first queue order (by estimated part
    // weight, deterministic index tie-break) so the heaviest part starts
    // first and the pool drains evenly.
    let loads = partition.loads(&tree);
    let mut queue: Vec<usize> = (0..plans.len()).collect();
    queue.sort_by(|&a, &b| loads[b].total_cmp(&loads[a]).then(a.cmp(&b)));

    struct PartOutcome {
        iterations: usize,
        groups: usize,
    }
    type WorkerResult = Result<(Vec<(usize, PartOutcome)>, Duration)>;

    let next = AtomicUsize::new(0);
    let shared = ConcurrentPulseCache::new();
    let pool_size = options.threads.min(plans.len());
    let t0 = Instant::now();
    let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pool_size)
            .map(|_| {
                let next = &next;
                let queue = &queue;
                let plans = &plans;
                let shared = &shared;
                scope.spawn(move || -> WorkerResult {
                    // One pooled workspace per worker for the whole
                    // drain; returned warm for the next batch.
                    let mut ws = session.lease_workspace();
                    let mut done: Vec<(usize, PartOutcome)> = Vec::new();
                    let started = Instant::now();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&part_idx) = queue.get(slot) else {
                            break;
                        };
                        let mut pulses: HashMap<usize, Pulse> = HashMap::new();
                        let mut iterations = 0usize;
                        for &(vertex, parent) in &plans[part_idx] {
                            let (target, n_qubits) = &unitaries[vertex];
                            let warm = parent
                                .filter(|&p| {
                                    warm_start_allowed(
                                        &unitaries[p].0,
                                        target,
                                        session.config().warm_threshold,
                                    )
                                })
                                .and_then(|p| pulses.get(&p));
                            let r =
                                session.compile_unitary_with(target, *n_qubits, warm, &mut ws)?;
                            iterations += r.total_iterations;
                            shared.insert(
                                keys[vertex].clone(),
                                CachedPulse {
                                    pulse: r.outcome.pulse.clone(),
                                    latency_ns: r.latency_ns,
                                    iterations: r.total_iterations,
                                    n_qubits: *n_qubits,
                                },
                            );
                            pulses.insert(vertex, r.outcome.pulse);
                        }
                        done.push((
                            part_idx,
                            PartOutcome {
                                iterations,
                                groups: plans[part_idx].len(),
                            },
                        ));
                    }
                    Ok((done, started.elapsed()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let wall = t0.elapsed();

    let mut iterations_per_part = vec![0usize; plans.len()];
    let mut worker_timings = Vec::new();
    for (worker, result) in worker_results.into_iter().enumerate() {
        let (done, busy) = result?;
        let mut groups = 0usize;
        let mut iterations = 0usize;
        for (part_idx, outcome) in &done {
            iterations_per_part[*part_idx] = outcome.iterations;
            groups += outcome.groups;
            iterations += outcome.iterations;
        }
        if !done.is_empty() {
            worker_timings.push(WorkerTiming {
                worker,
                parts: done.len(),
                groups,
                iterations,
                wall: busy,
            });
        }
    }
    let total_iterations = iterations_per_part.iter().sum();
    let makespan_iterations = iterations_per_part.iter().copied().max().unwrap_or(0);

    Ok((
        shared.snapshot(),
        ParallelStats {
            iterations_per_part,
            total_iterations,
            makespan_iterations,
            cut_edges,
            partition,
            worker_timings,
            wall,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{mst_compile_order, SimilarityGraph};
    use crate::similarity::SimilarityFn;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};
    use accqoc_hw::Topology;

    fn setup() -> (Session, Vec<(Mat, usize)>, Vec<UnitaryKey>, CompileOrder) {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        let session = Session::builder()
            .topology(Topology::linear(2))
            .grape(grape)
            .build()
            .unwrap();
        let unitaries: Vec<(Mat, usize)> = (1..=5)
            .map(|k| {
                let u = circuit_unitary(&Circuit::from_gates(
                    1,
                    [Gate::Rz(0, 0.3 * k as f64), Gate::H(0)],
                ));
                (u, 1)
            })
            .collect();
        let keys: Vec<UnitaryKey> = unitaries
            .iter()
            .map(|(u, n)| UnitaryKey::canonical(u, *n))
            .collect();
        let graph = SimilarityGraph::build(
            unitaries.iter().map(|(u, _)| u.clone()).collect(),
            SimilarityFn::Frobenius,
        );
        let order = mst_compile_order(&graph);
        (session, unitaries, keys, order)
    }

    #[test]
    fn parallel_compilation_fills_cache() {
        let (session, unitaries, keys, order) = setup();
        let (cache, stats) = compile_parallel(&session, &order, &unitaries, &keys, 2).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(stats.iterations_per_part.len(), stats.partition.n_parts);
        assert!(stats.total_iterations > 0);
        assert!(stats.makespan_iterations <= stats.total_iterations);
        assert!(stats.wall > Duration::ZERO);
        assert!(!stats.worker_timings.is_empty());
        let timed_groups: usize = stats.worker_timings.iter().map(|t| t.groups).sum();
        assert_eq!(timed_groups, 5);
        for key in &keys {
            assert!(cache.contains(key));
        }
    }

    #[test]
    fn single_worker_equals_sequential_iteration_count() {
        let (session, unitaries, keys, order) = setup();
        let (_, one) = compile_parallel(&session, &order, &unitaries, &keys, 1).unwrap();
        assert_eq!(one.partition.n_parts, 1);
        assert_eq!(one.cut_edges, 0);
        assert_eq!(one.makespan_iterations, one.total_iterations);
        assert_eq!(one.worker_timings.len(), 1);
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let (session, unitaries, keys, order) = setup();
        let (_, one) = compile_parallel(&session, &order, &unitaries, &keys, 1).unwrap();
        let (_, three) = compile_parallel(&session, &order, &unitaries, &keys, 3).unwrap();
        assert!(
            three.makespan_iterations <= one.makespan_iterations,
            "3 workers {} vs 1 worker {}",
            three.makespan_iterations,
            one.makespan_iterations
        );
    }

    #[test]
    fn fixed_plan_is_thread_count_invariant() {
        let (session, unitaries, keys, order) = setup();
        let run = |threads: usize| {
            let opts = ParallelOptions::threads(threads).with_plan_parts(3);
            let (cache, stats) =
                compile_parallel_with(&session, &order, &unitaries, &keys, &opts).unwrap();
            (cache.to_json(), stats)
        };
        let (json1, stats1) = run(1);
        let (json4, stats4) = run(4);
        assert_eq!(json1, json4, "artifact must not depend on thread count");
        assert_eq!(stats1.cut_edges, stats4.cut_edges);
        assert_eq!(stats1.iterations_per_part, stats4.iterations_per_part);
    }

    #[test]
    fn total_iterations_bound_makespan() {
        // The documented ParallelStats invariant: the makespan is the max
        // of the per-part loads whose sum is the total, with cut MST
        // edges degrading to scratch starts (never negative work).
        let (session, unitaries, keys, order) = setup();
        for workers in [1, 2, 4] {
            let (_, stats) =
                compile_parallel(&session, &order, &unitaries, &keys, workers).unwrap();
            assert!(
                stats.total_iterations >= stats.makespan_iterations,
                "workers {workers}: total {} < makespan {}",
                stats.total_iterations,
                stats.makespan_iterations
            );
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let (session, _, _, _) = setup();
        let order = CompileOrder { steps: vec![] };
        let (cache, stats) = compile_parallel(&session, &order, &[], &[], 4).unwrap();
        assert!(cache.is_empty());
        assert_eq!(stats.total_iterations, 0);
        assert_eq!(stats.wall, Duration::ZERO);
    }

    #[test]
    fn zero_workers_is_an_error() {
        let (session, unitaries, keys, order) = setup();
        let e = compile_parallel(&session, &order, &unitaries, &keys, 0).unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }));
        let opts = ParallelOptions {
            threads: 0,
            plan_parts: None,
        };
        let e2 = compile_parallel_with(&session, &order, &unitaries, &keys, &opts).unwrap_err();
        assert!(matches!(e2, Error::InvalidConfig { .. }));
    }
}
