//! Parallel compilation over a balanced MST partition (paper §V-D).
//!
//! The MST dependencies are "soft": a group can always be trained from
//! scratch, so partitioning the tree into balanced connected parts lets
//! independent workers compile concurrently. Each worker follows its
//! part's local sequence; edges cut by the partition degrade to scratch
//! starts — exactly the trade the paper describes.

use std::collections::HashMap;

use accqoc_circuit::UnitaryKey;
use accqoc_grape::Pulse;
use accqoc_linalg::Mat;

use crate::cache::{CachedPulse, PulseCache};
use crate::compile::warm_start_allowed;
use crate::error::{Error, Result};
use crate::mst::CompileOrder;
use crate::partition::{partition_tree, TreePartition, WeightedTree};
use crate::session::Session;

/// Statistics from a parallel compilation run.
#[derive(Debug, Clone)]
pub struct ParallelStats {
    /// GRAPE iterations per worker/part.
    pub iterations_per_part: Vec<usize>,
    /// Sum of iterations across parts.
    pub total_iterations: usize,
    /// Iteration makespan: the busiest worker's load — the parallel
    /// compile time in the paper's iteration metric.
    pub makespan_iterations: usize,
    /// Number of MST edges cut by the partition (extra scratch starts).
    pub cut_edges: usize,
    /// The partition itself.
    pub partition: TreePartition,
}

/// Compiles the groups of a compile order with `n_workers` parallel
/// workers over a balanced partition of the MST. Results land in a fresh
/// [`PulseCache`]; pass `keys` aligned with `unitaries`.
///
/// # Errors
///
/// [`Error::InvalidConfig`] when `n_workers == 0` or input lengths
/// disagree; otherwise propagates the first compilation failure (other
/// workers' completed work is discarded).
pub fn compile_parallel(
    session: &Session,
    order: &CompileOrder,
    unitaries: &[(Mat, usize)],
    keys: &[UnitaryKey],
    n_workers: usize,
) -> Result<(PulseCache, ParallelStats)> {
    if n_workers == 0 {
        return Err(Error::InvalidConfig {
            message: "need at least one worker".into(),
        });
    }
    if unitaries.len() != keys.len() {
        return Err(Error::InvalidConfig {
            message: format!("{} unitaries but {} keys", unitaries.len(), keys.len()),
        });
    }
    let n = unitaries.len();
    if n == 0 {
        return Ok((
            PulseCache::new(),
            ParallelStats {
                iterations_per_part: vec![],
                total_iterations: 0,
                makespan_iterations: 0,
                cut_edges: 0,
                partition: TreePartition {
                    part_of: vec![],
                    n_parts: 0,
                },
            },
        ));
    }

    let tree = WeightedTree::from_order(order, n);
    let partition = partition_tree(&tree, n_workers);
    let parts = partition.parts();

    // Per-part local sequences in global order, with parents degraded to
    // scratch when the MST edge is cut.
    let mut cut_edges = 0usize;
    let mut plans: Vec<Vec<(usize, Option<usize>)>> = Vec::with_capacity(parts.len());
    for part in &parts {
        let mut plan = Vec::with_capacity(part.len());
        // Follow global selection order restricted to the part.
        for step in &order.steps {
            if !part.contains(&step.vertex) {
                continue;
            }
            let parent = match step.parent {
                Some(p) if part.contains(&p) => Some(p),
                Some(_) => {
                    cut_edges += 1;
                    None
                }
                None => None,
            };
            plan.push((step.vertex, parent));
        }
        plans.push(plan);
    }

    // Run the parts on scoped threads.
    type PartResult = Result<(Vec<(usize, Pulse, f64, usize)>, usize)>;
    let results: Vec<PartResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                scope.spawn(move || -> PartResult {
                    let mut local: Vec<(usize, Pulse, f64, usize)> = Vec::new();
                    let mut pulses: HashMap<usize, Pulse> = HashMap::new();
                    let mut iterations = 0usize;
                    for &(vertex, parent) in plan {
                        let (target, n_qubits) = &unitaries[vertex];
                        let warm = parent
                            .filter(|&p| {
                                warm_start_allowed(
                                    &unitaries[p].0,
                                    target,
                                    session.config().warm_threshold,
                                )
                            })
                            .and_then(|p| pulses.get(&p));
                        let r = session.compile_unitary(target, *n_qubits, warm)?;
                        iterations += r.total_iterations;
                        pulses.insert(vertex, r.outcome.pulse.clone());
                        local.push((vertex, r.outcome.pulse, r.latency_ns, r.total_iterations));
                    }
                    Ok((local, iterations))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut cache = PulseCache::new();
    let mut iterations_per_part = Vec::with_capacity(results.len());
    for result in results {
        let (local, iters) = result?;
        iterations_per_part.push(iters);
        for (vertex, pulse, latency_ns, iterations) in local {
            cache.insert(
                keys[vertex].clone(),
                CachedPulse {
                    pulse,
                    latency_ns,
                    iterations,
                    n_qubits: unitaries[vertex].1,
                },
            );
        }
    }
    let total_iterations = iterations_per_part.iter().sum();
    let makespan_iterations = iterations_per_part.iter().copied().max().unwrap_or(0);

    Ok((
        cache,
        ParallelStats {
            iterations_per_part,
            total_iterations,
            makespan_iterations,
            cut_edges,
            partition,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::{mst_compile_order, SimilarityGraph};
    use crate::similarity::SimilarityFn;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};
    use accqoc_hw::Topology;

    fn setup() -> (Session, Vec<(Mat, usize)>, Vec<UnitaryKey>, CompileOrder) {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        let session = Session::builder()
            .topology(Topology::linear(2))
            .grape(grape)
            .build()
            .unwrap();
        let unitaries: Vec<(Mat, usize)> = (1..=5)
            .map(|k| {
                let u = circuit_unitary(&Circuit::from_gates(
                    1,
                    [Gate::Rz(0, 0.3 * k as f64), Gate::H(0)],
                ));
                (u, 1)
            })
            .collect();
        let keys: Vec<UnitaryKey> = unitaries
            .iter()
            .map(|(u, n)| UnitaryKey::canonical(u, *n))
            .collect();
        let graph = SimilarityGraph::build(
            unitaries.iter().map(|(u, _)| u.clone()).collect(),
            SimilarityFn::Frobenius,
        );
        let order = mst_compile_order(&graph);
        (session, unitaries, keys, order)
    }

    #[test]
    fn parallel_compilation_fills_cache() {
        let (session, unitaries, keys, order) = setup();
        let (cache, stats) = compile_parallel(&session, &order, &unitaries, &keys, 2).unwrap();
        assert_eq!(cache.len(), 5);
        assert_eq!(stats.iterations_per_part.len(), stats.partition.n_parts);
        assert!(stats.total_iterations > 0);
        assert!(stats.makespan_iterations <= stats.total_iterations);
        for key in &keys {
            assert!(cache.contains(key));
        }
    }

    #[test]
    fn single_worker_equals_sequential_iteration_count() {
        let (session, unitaries, keys, order) = setup();
        let (_, one) = compile_parallel(&session, &order, &unitaries, &keys, 1).unwrap();
        assert_eq!(one.partition.n_parts, 1);
        assert_eq!(one.cut_edges, 0);
        assert_eq!(one.makespan_iterations, one.total_iterations);
    }

    #[test]
    fn more_workers_reduce_makespan() {
        let (session, unitaries, keys, order) = setup();
        let (_, one) = compile_parallel(&session, &order, &unitaries, &keys, 1).unwrap();
        let (_, three) = compile_parallel(&session, &order, &unitaries, &keys, 3).unwrap();
        assert!(
            three.makespan_iterations <= one.makespan_iterations,
            "3 workers {} vs 1 worker {}",
            three.makespan_iterations,
            one.makespan_iterations
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let (session, _, _, _) = setup();
        let order = CompileOrder { steps: vec![] };
        let (cache, stats) = compile_parallel(&session, &order, &[], &[], 4).unwrap();
        assert!(cache.is_empty());
        assert_eq!(stats.total_iterations, 0);
    }

    #[test]
    fn zero_workers_is_an_error() {
        let (session, unitaries, keys, order) = setup();
        let e = compile_parallel(&session, &order, &unitaries, &keys, 0).unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }));
    }
}
