//! Similarity graph and MST-ordered compilation sequence (paper §V-C).
//!
//! For the uncovered groups we build the complete *similarity graph* SG —
//! one vertex per group, edge weights from a [`SimilarityFn`] — plus the
//! identity matrix as a special vertex, then extract a Minimum Spanning
//! Tree with Prim's algorithm starting at the identity. The order in
//! which Prim selects vertices is the compilation sequence `CS`: each
//! group's GRAPE run is warm-started from the pulse of its tree parent
//! (the identity parent means a from-scratch start).

use accqoc_linalg::Mat;

use crate::similarity::{SimilarityFn, SimilarityScratch};

/// The complete similarity graph over a set of group unitaries.
///
/// Vertices `0..n` are the groups; vertex `n` is the identity (one per
/// occurring dimension, merged logically: an identity edge uses the
/// identity of the group's own dimension).
#[derive(Debug, Clone)]
pub struct SimilarityGraph {
    unitaries: Vec<Mat>,
    function: SimilarityFn,
    /// Dense distance matrix between groups; `dist_to_id[i]` holds the
    /// group-to-identity distance.
    dist: Vec<Vec<f64>>,
    dist_to_id: Vec<f64>,
}

impl SimilarityGraph {
    /// Builds the complete graph (O(n²) distance evaluations).
    ///
    /// One [`SimilarityScratch`] is threaded through every evaluation, so
    /// the pairwise loop reuses the probe states and product buffers
    /// instead of reallocating them per pair; the distances — and hence
    /// the MST orders derived from them — are bit-identical to the
    /// scratch-free path.
    pub fn build(unitaries: Vec<Mat>, function: SimilarityFn) -> Self {
        let n = unitaries.len();
        let mut scratch = SimilarityScratch::new();
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = function.distance_with(&unitaries[i], &unitaries[j], &mut scratch);
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        // One identity per occurring dimension, reused across vertices.
        let mut identities: std::collections::HashMap<usize, Mat> =
            std::collections::HashMap::new();
        let dist_to_id = unitaries
            .iter()
            .map(|u| {
                let id = identities
                    .entry(u.rows())
                    .or_insert_with(|| Mat::identity(u.rows()));
                function.distance_with(u, id, &mut scratch)
            })
            .collect();
        Self {
            unitaries,
            function,
            dist,
            dist_to_id,
        }
    }

    /// Number of group vertices (identity excluded).
    pub fn len(&self) -> usize {
        self.unitaries.len()
    }

    /// `true` when the graph has no group vertices.
    pub fn is_empty(&self) -> bool {
        self.unitaries.is_empty()
    }

    /// The similarity function in use.
    pub fn function(&self) -> SimilarityFn {
        self.function
    }

    /// Distance between two group vertices.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.dist[a][b]
    }

    /// Distance between a group and the identity of its dimension.
    pub fn distance_to_identity(&self, v: usize) -> f64 {
        self.dist_to_id[v]
    }

    /// The group unitaries.
    pub fn unitaries(&self) -> &[Mat] {
        &self.unitaries
    }
}

/// One step of the compilation sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileStep {
    /// Group vertex to compile.
    pub vertex: usize,
    /// Tree parent whose pulse warm-starts this group; `None` means the
    /// identity vertex (compile from scratch).
    pub parent: Option<usize>,
    /// Similarity distance to the parent (the MST edge weight).
    pub weight: f64,
}

/// The MST-ordered compilation sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileOrder {
    /// Steps in Prim selection order — a valid schedule: every parent
    /// appears before its children.
    pub steps: Vec<CompileStep>,
}

impl CompileOrder {
    /// Total MST weight (sum of selected edge weights).
    pub fn total_weight(&self) -> f64 {
        self.steps.iter().map(|s| s.weight).sum()
    }

    /// Number of groups that start from scratch (identity parents).
    pub fn scratch_starts(&self) -> usize {
        self.steps.iter().filter(|s| s.parent.is_none()).count()
    }

    /// Validates the schedule invariant (parents precede children).
    pub fn is_valid_schedule(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for s in &self.steps {
            if let Some(p) = s.parent {
                if !seen.contains(&p) {
                    return false;
                }
            }
            seen.insert(s.vertex);
        }
        true
    }
}

/// Runs Prim's algorithm from the identity vertex and records the
/// selection order (paper: "In the process of generating MST using the
/// greedy algorithm, i.e., Prim algorithm, we can remember the sequence
/// that all vertices are selected; this sequence is exactly what we need
/// for CS").
///
/// Vertices whose best edge is the identity edge (including all vertices
/// of a dimension with no compiled sibling yet) get `parent: None`.
///
/// # Examples
///
/// ```
/// use accqoc::{mst_compile_order, SimilarityFn, SimilarityGraph};
/// use accqoc_linalg::Mat;
///
/// let x = Mat::from_reals(&[0.0, 1.0, 1.0, 0.0]);
/// let graph = SimilarityGraph::build(vec![Mat::identity(2), x], SimilarityFn::Frobenius);
/// let order = mst_compile_order(&graph);
/// assert_eq!(order.steps.len(), 2);
/// assert!(order.is_valid_schedule());
/// ```
pub fn mst_compile_order(graph: &SimilarityGraph) -> CompileOrder {
    let n = graph.len();
    let mut in_tree = vec![false; n];
    // best[(v)] = (distance, parent): parent None = identity vertex.
    let mut best: Vec<(f64, Option<usize>)> = (0..n)
        .map(|v| (graph.distance_to_identity(v), None))
        .collect();
    let mut steps = Vec::with_capacity(n);

    for _ in 0..n {
        // Cheapest fringe vertex (deterministic tie-break on index).
        let mut pick: Option<usize> = None;
        for v in 0..n {
            if in_tree[v] {
                continue;
            }
            match pick {
                None => pick = Some(v),
                Some(p) => {
                    if best[v].0 < best[p].0 {
                        pick = Some(v);
                    }
                }
            }
        }
        let v = pick.expect("loop bounded by n");
        in_tree[v] = true;
        steps.push(CompileStep {
            vertex: v,
            parent: best[v].1,
            weight: best[v].0,
        });
        for u in 0..n {
            if !in_tree[u] {
                let d = graph.distance(v, u);
                if d < best[u].0 {
                    best[u] = (d, Some(v));
                }
            }
        }
    }
    CompileOrder { steps }
}

/// The naive baseline order: every group compiled from scratch in input
/// order (no similarity reuse). Used for the Figure 8/13 comparisons.
pub fn scratch_order(n: usize, graph: &SimilarityGraph) -> CompileOrder {
    CompileOrder {
        steps: (0..n)
            .map(|v| CompileStep {
                vertex: v,
                parent: None,
                weight: graph.distance_to_identity(v),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_circuit::{circuit_unitary, Circuit, Gate};

    fn rz(theta: f64) -> Mat {
        circuit_unitary(&Circuit::from_gates(1, [Gate::Rz(0, theta)]))
    }

    #[test]
    fn chain_of_rotations_orders_by_angle() {
        // Rz(0.1), Rz(0.2), Rz(0.3): MST from identity should chain them
        // in angle order (each nearest to its neighbor).
        let graph =
            SimilarityGraph::build(vec![rz(0.3), rz(0.1), rz(0.2)], SimilarityFn::Frobenius);
        let order = mst_compile_order(&graph);
        assert!(order.is_valid_schedule());
        // First selected: the one closest to identity = Rz(0.1) = vertex 1.
        assert_eq!(order.steps[0].vertex, 1);
        assert_eq!(order.steps[0].parent, None);
        // Then Rz(0.2) (vertex 2) with parent Rz(0.1), then Rz(0.3).
        assert_eq!(order.steps[1].vertex, 2);
        assert_eq!(order.steps[1].parent, Some(1));
        assert_eq!(order.steps[2].vertex, 0);
        assert_eq!(order.steps[2].parent, Some(2));
    }

    #[test]
    fn total_weight_below_scratch_weight() {
        let us: Vec<Mat> = (1..=6).map(|k| rz(0.15 * k as f64)).collect();
        let graph = SimilarityGraph::build(us, SimilarityFn::Frobenius);
        let mst = mst_compile_order(&graph);
        let scratch = scratch_order(graph.len(), &graph);
        assert!(
            mst.total_weight() < scratch.total_weight(),
            "mst {} vs scratch {}",
            mst.total_weight(),
            scratch.total_weight()
        );
        assert_eq!(scratch.scratch_starts(), 6);
        assert!(mst.scratch_starts() >= 1);
    }

    #[test]
    fn mixed_dimensions_split_into_components() {
        let x1 = circuit_unitary(&Circuit::from_gates(1, [Gate::X(0)]));
        let cx = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1)]));
        let cxt = circuit_unitary(&Circuit::from_gates(2, [Gate::Cx(0, 1), Gate::T(1)]));
        let graph = SimilarityGraph::build(vec![x1, cx, cxt], SimilarityFn::TraceOverlap);
        let order = mst_compile_order(&graph);
        assert!(order.is_valid_schedule());
        // Cross-dimension edges are infinite, so at least one scratch start
        // per dimension.
        assert!(order.scratch_starts() >= 2);
        // The two 2-qubit groups should connect to each other, not both to
        // the identity.
        let two_qubit_parents: Vec<Option<usize>> = order
            .steps
            .iter()
            .filter(|s| s.vertex != 0)
            .map(|s| s.parent)
            .collect();
        assert!(two_qubit_parents.contains(&Some(1)) || two_qubit_parents.contains(&Some(2)));
    }

    #[test]
    fn empty_graph() {
        let graph = SimilarityGraph::build(vec![], SimilarityFn::L1);
        assert!(graph.is_empty());
        let order = mst_compile_order(&graph);
        assert!(order.steps.is_empty());
        assert_eq!(order.total_weight(), 0.0);
    }

    #[test]
    fn single_vertex_starts_from_identity() {
        let graph = SimilarityGraph::build(vec![rz(1.0)], SimilarityFn::Uhlmann);
        let order = mst_compile_order(&graph);
        assert_eq!(order.steps.len(), 1);
        assert_eq!(order.steps[0].parent, None);
    }

    #[test]
    fn identity_like_group_has_near_zero_weight() {
        let graph = SimilarityGraph::build(vec![rz(1e-9)], SimilarityFn::Frobenius);
        let order = mst_compile_order(&graph);
        assert!(order.steps[0].weight < 1e-6);
    }
}
