//! The [`Session`] facade: one owner for the whole AccQOC pipeline.
//!
//! A session is built once ([`Session::builder`]), owns the device
//! configuration, the [`ModelSet`], the lazily compiled single-gate
//! duration table, and the [`PulseCache`], and exposes the paper's
//! pipeline (Figure 6) as explicit stages:
//!
//! ```text
//! decompose → map → group → lookup → compile → latency
//! ```
//!
//! Each stage returns a typed report so callers can observe exactly what
//! the compiler did; [`Session::compile_program`] runs all six in order
//! and folds the reports into one [`ProgramCompilation`].

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex};

use accqoc_circuit::{Circuit, CircuitDag, Gate, GateKind, UnitaryKey};
use accqoc_grape::{
    find_minimal_latency_seeded, LatencyResult, Pulse, Workspace as GrapeWorkspace,
};
use accqoc_group::{dedup_groups, divide_circuit, GroupedCircuit, GroupingPolicy};
use accqoc_hw::{GateDurations, Topology};
use accqoc_linalg::Mat;
use accqoc_map::{crosstalk_metric, map_circuit, MappingOptions};

use crate::cache::{CachedPulse, PulseCache};
use crate::compile::{warm_start_allowed, AccQocConfig};
use crate::concurrent_cache::ConcurrentPulseCache;
use crate::error::{Error, Result};
use crate::library::{self, PulseLibrary, ServeOptions, ServeReport};
use crate::model::ModelSet;
use crate::parallel::ParallelStats;
use crate::persist::{PersistOptions, RecoveryReport};
use crate::precompile::{self, PrecompileOrder, PrecompileReport};
use crate::similarity::SimilarityFn;

// ---------------------------------------------------------------------------
// Stage reports.
// ---------------------------------------------------------------------------

/// Report of the decomposition stage: the program lowered to the
/// hardware-native gate alphabet.
#[derive(Debug, Clone)]
pub struct DecomposeReport {
    /// The decomposed circuit.
    pub circuit: Circuit,
    /// Gates before decomposition.
    pub input_gates: usize,
    /// Gates after decomposition.
    pub output_gates: usize,
}

/// Report of the crosstalk-aware mapping stage.
#[derive(Debug, Clone)]
pub struct MapReport {
    /// The physically mapped circuit.
    pub circuit: Circuit,
    /// Swaps inserted to satisfy the coupling graph.
    pub swap_count: usize,
    /// Crosstalk metric of the mapped circuit (close CNOT pairs/layer).
    pub crosstalk: usize,
    /// Logical→physical layout before the first gate.
    pub initial_layout: Vec<usize>,
    /// Layout after the last gate.
    pub final_layout: Vec<usize>,
}

/// One unique gate group, canonicalized for compilation and caching.
#[derive(Debug, Clone)]
pub struct GroupTarget {
    /// Canonical cache key (phase- and permutation-invariant).
    pub key: UnitaryKey,
    /// Canonical unitary GRAPE compiles toward.
    pub unitary: Mat,
    /// Number of qubits the group spans.
    pub n_qubits: usize,
}

/// Report of the grouping + de-duplication stage.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// Groups and the group DAG.
    pub grouped: GroupedCircuit,
    /// The processed physical circuit the groups cover.
    pub processed: Circuit,
    /// Unique groups after de-duplication.
    pub targets: Vec<GroupTarget>,
    /// `assignment[i]` = index into `targets` of group instance `i`.
    pub assignment: Vec<usize>,
    /// Swaps inserted by mapping (carried through for the final report).
    pub swap_count: usize,
    /// Crosstalk metric of the mapped circuit (carried through).
    pub crosstalk: usize,
}

impl GroupReport {
    /// Number of group instances.
    pub fn n_instances(&self) -> usize {
        self.assignment.len()
    }

    /// Number of unique groups.
    pub fn n_unique(&self) -> usize {
        self.targets.len()
    }
}

/// Report of the cache-lookup stage (paper §V-A coverage).
#[derive(Debug, Clone)]
pub struct LookupReport {
    /// Instance coverage against the session cache.
    pub coverage: CoverageStats,
    /// Unique groups the cache does not cover, in target order.
    pub uncovered: Vec<GroupTarget>,
}

/// Result of compiling one unique group.
#[derive(Debug, Clone)]
pub struct GroupCompilation {
    /// Canonical group identity.
    pub key: UnitaryKey,
    /// Minimal pulse latency (ns).
    pub latency_ns: f64,
    /// GRAPE iterations spent (0 for cache hits).
    pub iterations: usize,
    /// Whether the pulse came from the cache.
    pub covered: bool,
}

/// Report of the MST-ordered dynamic compilation stage.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// Per-group compilation results, in MST order.
    pub compiled: Vec<GroupCompilation>,
    /// GRAPE iterations spent across all groups (the paper's compile-cost
    /// metric).
    pub dynamic_iterations: usize,
    /// Groups that started from scratch (identity MST parents).
    pub scratch_starts: usize,
    /// Total similarity weight of the MST that ordered the compilation.
    pub mst_weight: f64,
}

/// Report of the Algorithm 3 latency stage.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// Overall pulse latency of the program (Algorithm 3 DP), ns.
    pub overall_latency_ns: f64,
    /// Gate-based compilation latency of the same circuit, ns.
    pub gate_based_latency_ns: f64,
    /// Latency of each group instance, ns.
    pub per_instance_ns: Vec<f64>,
}

impl LatencyReport {
    /// Latency reduction factor vs gate-based compilation.
    pub fn latency_reduction(&self) -> f64 {
        if self.overall_latency_ns == 0.0 {
            1.0
        } else {
            self.gate_based_latency_ns / self.overall_latency_ns
        }
    }
}

/// Coverage statistics (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Group *instances* covered by the cache.
    pub covered: usize,
    /// Total group instances in the program.
    pub total: usize,
}

impl CoverageStats {
    /// `# covered / # groups` (1.0 for empty programs).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.covered as f64 / self.total as f64
        }
    }
}

/// Full result of compiling a program through AccQOC: the folded view of
/// every stage report.
#[derive(Debug, Clone)]
pub struct ProgramCompilation {
    /// Overall pulse latency of the program (Algorithm 3), ns.
    pub overall_latency_ns: f64,
    /// Gate-based compilation latency of the same mapped circuit, ns.
    pub gate_based_latency_ns: f64,
    /// Coverage of the pulse cache (before this program's compilation).
    pub coverage: CoverageStats,
    /// GRAPE iterations spent on uncovered groups (dynamic compile cost).
    pub dynamic_iterations: usize,
    /// Unique uncovered groups compiled.
    pub n_uncovered_unique: usize,
    /// Groups after division and the processed physical circuit.
    pub grouped: GroupedCircuit,
    /// Crosstalk metric of the mapped circuit.
    pub crosstalk: usize,
    /// Swaps inserted by mapping.
    pub swap_count: usize,
}

impl ProgramCompilation {
    /// Latency reduction factor vs gate-based compilation.
    pub fn latency_reduction(&self) -> f64 {
        if self.overall_latency_ns == 0.0 {
            1.0
        } else {
            self.gate_based_latency_ns / self.overall_latency_ns
        }
    }
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

/// Builder for [`Session`]. Only the topology is required; everything
/// else defaults to the paper's headline setup (map2b4l grouping,
/// crosstalk-aware mapping, L-BFGS GRAPE at the 1e-4 target, `fidelity1`
/// similarity with the 0.15 warm-start gate).
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    topology: Option<Topology>,
    policy: Option<GroupingPolicy>,
    mapping: Option<MappingOptions>,
    grape: Option<accqoc_grape::GrapeOptions>,
    search: Option<accqoc_grape::LatencySearch>,
    similarity: Option<SimilarityFn>,
    warm_threshold: Option<f64>,
    models: Option<ModelSet>,
    cache: Option<PulseCache>,
    library_capacity: Option<usize>,
    persistence: Option<PersistOptions>,
}

impl SessionBuilder {
    /// Sets the device coupling topology (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the grouping policy (default: `map2b4l`).
    pub fn policy(mut self, policy: GroupingPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the mapping options (default: crosstalk-aware).
    pub fn mapping(mut self, mapping: MappingOptions) -> Self {
        self.mapping = Some(mapping);
        self
    }

    /// Sets the GRAPE solver options.
    pub fn grape(mut self, grape: accqoc_grape::GrapeOptions) -> Self {
        self.grape = Some(grape);
        self
    }

    /// Sets the latency-search bounds.
    pub fn search(mut self, search: accqoc_grape::LatencySearch) -> Self {
        self.search = Some(search);
        self
    }

    /// Sets the similarity function ordering the MST (default:
    /// `fidelity1`, the trace-overlap distance).
    pub fn similarity(mut self, similarity: SimilarityFn) -> Self {
        self.similarity = Some(similarity);
        self
    }

    /// Sets the warm-start gate threshold (default: 0.15).
    pub fn warm_threshold(mut self, threshold: f64) -> Self {
        self.warm_threshold = Some(threshold);
        self
    }

    /// Sets a custom model set (default: spin-chain models up to the
    /// grouping policy's width).
    pub fn models(mut self, models: ModelSet) -> Self {
        self.models = Some(models);
        self
    }

    /// Seeds the session with a pre-populated pulse cache.
    pub fn cache(mut self, cache: PulseCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Bounds the pulse library to at most `capacity` entries, evicted
    /// least-recently-used (default: unbounded — what batch
    /// pre-compilation expects; a bound is meant for the online
    /// [`Session::serve_program`] path).
    ///
    /// The batch [`Session::compile_program`] pipeline re-reads compiled
    /// pulses from the library in its latency stage, so it rejects a
    /// program whose unique-group count exceeds the capacity with
    /// [`Error::CapacityExceeded`] up front (instead of evicting its own
    /// pulses mid-pipeline); [`Session::serve_program`] folds latencies
    /// as it compiles and keeps working at any capacity, including 0.
    pub fn library_capacity(mut self, capacity: usize) -> Self {
        self.library_capacity = Some(capacity);
        self
    }

    /// Makes the pulse library durable under `dir` with default options
    /// (see [`PersistOptions::new`]): on build, any snapshot + write-ahead
    /// log found there is recovered into the library — byte-identical to
    /// the pre-crash state, fingerprint-indexed so recovered entries
    /// warm-start — and every subsequent mutation is logged.
    pub fn persistence(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.persistence_with(PersistOptions::new(dir))
    }

    /// [`SessionBuilder::persistence`] with explicit [`PersistOptions`]
    /// (compaction cadence etc.).
    pub fn persistence_with(mut self, options: PersistOptions) -> Self {
        self.persistence = Some(options);
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// [`Error::Builder`] when the topology was never set;
    /// [`Error::InvalidConfig`] when the warm threshold is not finite and
    /// non-negative, or the (defaulted) model arity is unsupported.
    pub fn build(self) -> Result<Session> {
        let topology = self.topology.ok_or(Error::Builder { field: "topology" })?;
        // Single source of truth for the paper defaults: start from the
        // stock config and overlay only what the caller set explicitly.
        let mut config = AccQocConfig::for_topology(topology);
        if let Some(policy) = self.policy {
            config.policy = policy;
        }
        if let Some(mapping) = self.mapping {
            config.mapping = mapping;
        }
        if let Some(grape) = self.grape {
            config.grape = grape;
        }
        if let Some(search) = self.search {
            config.search = search;
        }
        if let Some(similarity) = self.similarity {
            config.similarity = similarity;
        }
        if let Some(warm_threshold) = self.warm_threshold {
            if warm_threshold.is_nan() || warm_threshold < 0.0 {
                return Err(Error::InvalidConfig {
                    message: format!("warm threshold must be non-negative, got {warm_threshold}"),
                });
            }
            config.warm_threshold = warm_threshold;
        }
        let models = match self.models {
            Some(m) => m,
            None => ModelSet::spin(config.policy.max_qubits)?,
        };
        let mut library = PulseLibrary::with_capacity(self.library_capacity);
        if let Some(cache) = self.cache {
            library.merge(cache);
        }
        let mut recovery = None;
        if let Some(options) = self.persistence {
            // Seed before attaching the journal so recovered state is
            // not logged a second time. Sorted-key insertion keeps the
            // post-restart LRU order deterministic (recency stamps are
            // ephemeral and intentionally not persisted).
            let (journal, recovered) = crate::persist::open(&options)?;
            let mut entries: Vec<_> = recovered.cache.into_entries().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            for (key, entry) in entries {
                library.insert(key, entry);
            }
            for (key, unitary, n_qubits) in &recovered.unitaries {
                library.index_unitary(key, unitary, *n_qubits);
            }
            library.attach_journal(journal);
            recovery = Some(recovered.report);
        }
        Ok(Session {
            config,
            models,
            durations: Arc::new(Mutex::new(None)),
            library,
            recovery,
            ws_pool: Arc::new(Mutex::new(Vec::new())),
        })
    }
}

// ---------------------------------------------------------------------------
// Session.
// ---------------------------------------------------------------------------

/// The AccQOC compiler session: owns configuration, device models, the
/// single-gate duration table, and the pulse library.
///
/// Pulse storage is the fingerprint-indexed [`PulseLibrary`] over a
/// sharded [`ConcurrentPulseCache`], so every method takes `&self` and
/// the session can be shared across threads (`Session` is `Sync`):
/// concurrent lookups take only shard read locks and never serialize
/// each other.
#[derive(Debug)]
pub struct Session {
    config: AccQocConfig,
    models: ModelSet,
    /// Shared across forks: the table only depends on config + models.
    durations: Arc<Mutex<Option<GateDurations>>>,
    library: PulseLibrary,
    /// What build-time recovery found (`None` without persistence).
    recovery: Option<RecoveryReport>,
    /// Pooled GRAPE workspaces, shared across forks. Serve and compile
    /// paths lease one per request instead of allocating fresh solver
    /// scratch, so a long-lived session reaches an allocation-free
    /// steady state once the pool buffers have grown to the workload's
    /// dimensions. The pool never exceeds the peak number of concurrent
    /// leases (one per serving thread).
    ws_pool: Arc<Mutex<Vec<GrapeWorkspace>>>,
}

/// RAII lease on a pooled [`GrapeWorkspace`]: pops a warmed workspace
/// from the session pool (or creates an empty one when the pool is dry)
/// and returns it on drop, buffers intact, for the next request.
pub(crate) struct WorkspaceLease<'a> {
    pool: &'a Mutex<Vec<GrapeWorkspace>>,
    ws: Option<GrapeWorkspace>,
}

impl std::ops::Deref for WorkspaceLease<'_> {
    type Target = GrapeWorkspace;
    fn deref(&self) -> &GrapeWorkspace {
        self.ws
            .as_ref()
            .expect("lease holds a workspace until drop")
    }
}

impl std::ops::DerefMut for WorkspaceLease<'_> {
    fn deref_mut(&mut self) -> &mut GrapeWorkspace {
        self.ws
            .as_mut()
            .expect("lease holds a workspace until drop")
    }
}

impl Drop for WorkspaceLease<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            // A poisoned pool only loses the recycle, never correctness.
            if let Ok(mut pool) = self.pool.lock() {
                pool.push(ws);
            }
        }
    }
}

impl Session {
    /// Starts building a session.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_hw::Topology;
    ///
    /// let session = Session::builder()
    ///     .topology(Topology::linear(3)) // required; everything else defaults
    ///     .warm_threshold(0.15)
    ///     .build()?;
    /// assert_eq!(session.cache_len(), 0);
    /// assert_eq!(session.config().warm_threshold, 0.15);
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Builds a session from a full [`AccQocConfig`], deriving models
    /// from the policy width.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the policy width has no spin-chain
    /// model.
    pub fn from_config(config: AccQocConfig) -> Result<Self> {
        let models = ModelSet::spin(config.policy.max_qubits)?;
        Ok(Self {
            config,
            models,
            durations: Arc::new(Mutex::new(None)),
            library: PulseLibrary::new(),
            recovery: None,
            ws_pool: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// A session with independent state but the same configuration and a
    /// snapshot of the current library (entries and fingerprint index;
    /// serving counters start fresh). Forks share the (lazily compiled)
    /// single-gate duration table. A fork does **not** inherit
    /// persistence — two writers on one write-ahead log would
    /// interleave inconsistently, so only the original session logs.
    pub fn fork(&self) -> Self {
        Self {
            config: self.config.clone(),
            models: self.models.clone(),
            durations: Arc::clone(&self.durations),
            library: self.library.clone(),
            recovery: None,
            ws_pool: Arc::clone(&self.ws_pool),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AccQocConfig {
        &self.config
    }

    /// The model set.
    pub fn models(&self) -> &ModelSet {
        &self.models
    }

    // -- cache management ---------------------------------------------------

    /// The pulse library: fingerprint-indexed, capacity-bounded storage
    /// shared by the batch and serving paths.
    pub fn library(&self) -> &PulseLibrary {
        &self.library
    }

    /// The sharded concurrent cache under the library (for advanced
    /// callers that want lock-granular access, e.g. contention tests or
    /// custom persistence). Writes through this handle bypass the
    /// library's recency/index bookkeeping.
    pub fn shared_cache(&self) -> &ConcurrentPulseCache {
        self.library.pulses()
    }

    /// Number of cached unique groups.
    pub fn cache_len(&self) -> usize {
        self.library.len()
    }

    /// A copy of the current pulse cache, merged from the shards in
    /// sorted key order (deterministic regardless of how many threads
    /// filled it).
    pub fn cache_snapshot(&self) -> PulseCache {
        self.library.snapshot()
    }

    /// `true` when the cache covers `key` (one shard read lock).
    pub fn cache_contains(&self, key: &UnitaryKey) -> bool {
        self.library.contains(key)
    }

    /// A copy of one cache entry, if covered (one shard read lock).
    pub fn cached(&self, key: &UnitaryKey) -> Option<CachedPulse> {
        self.library.get(key)
    }

    /// Merges entries into the session library (incoming entries win).
    /// A plain [`PulseCache`] carries no canonical unitaries, so entries
    /// imported this way serve exact key hits but are not
    /// fingerprint-indexed; batch drivers index theirs via
    /// [`PulseLibrary::index_unitary`], and [`Session::load_cache`]
    /// re-indexes automatically when the artifact embeds unitaries
    /// (every [`Session::save_cache`] artifact does).
    pub fn import_cache(&self, other: PulseCache) {
        self.library.merge(other);
    }

    /// Replaces the session cache in one atomic step — concurrent
    /// readers see either the old contents or the new, never the
    /// in-between (see [`ConcurrentPulseCache::replace`]). The
    /// fingerprint index is reset (the new entries carry no unitaries).
    pub fn set_cache(&self, cache: PulseCache) {
        self.library.replace(cache);
    }

    /// Persists the cache as JSON, written atomically (temp + rename):
    /// entries sorted by key, each carrying its canonical unitary when
    /// the fingerprint index holds one. The artifact is
    /// byte-deterministic for a given library state, loads in full via
    /// [`Session::load_cache`] (which re-indexes the embedded
    /// unitaries), and stays readable by the plain [`PulseCache::load`]
    /// (which ignores the index metadata).
    ///
    /// # Errors
    ///
    /// [`Error::Store`] on filesystem failures.
    pub fn save_cache(&self, path: impl AsRef<Path>) -> Result<()> {
        let cache = self.library.snapshot();
        let unitaries = self.library.indexed_unitaries();
        let json = crate::persist::indexed_cache_json(&cache, &unitaries);
        accqoc_store::write_atomic(path.as_ref(), json.as_bytes())?;
        Ok(())
    }

    /// Merges a JSON cache file into the session cache; returns how many
    /// unique groups the file held. Entries carrying a canonical
    /// unitary (every [`Session::save_cache`] artifact embeds them) are
    /// fingerprint-indexed on load, so a freshly loaded library
    /// warm-starts near-misses instead of only serving exact hits.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] / [`Error::Json`] on unreadable or malformed files.
    pub fn load_cache(&self, path: impl AsRef<Path>) -> Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let (loaded, unitaries) = crate::persist::parse_indexed_cache(&text)?;
        let n = loaded.len();
        self.import_cache(loaded);
        for (key, unitary, n_qubits) in &unitaries {
            self.library.index_unitary(key, unitary, *n_qubits);
        }
        Ok(n)
    }

    /// What build-time recovery found when the session was built with
    /// [`SessionBuilder::persistence`]; `None` for non-durable sessions
    /// (including forks, which never inherit persistence).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Forces a durability snapshot: writes the snapshot artifact pair
    /// under the persistence directory and truncates the write-ahead
    /// log. A no-op `Ok(())` for non-durable sessions. The serving
    /// daemon calls this on clean shutdown; long-lived embedders can
    /// call it at natural barriers.
    ///
    /// # Errors
    ///
    /// [`Error::Store`] when a snapshot write or the log truncation
    /// fails (the previous on-disk pair stays recoverable). This is
    /// also where background journal append failures resurface.
    pub fn checkpoint(&self) -> Result<()> {
        self.library.checkpoint()
    }

    // -- pipeline stages ----------------------------------------------------

    /// Stage 1: decomposes a logical program into the hardware-native
    /// gate alphabet (`ccx` is never native; swaps survive until grouping
    /// decides their fate per policy).
    pub fn decompose(&self, circuit: &Circuit) -> DecomposeReport {
        let decomposed = circuit.decomposed(false);
        DecomposeReport {
            input_gates: circuit.len(),
            output_gates: decomposed.len(),
            circuit: decomposed,
        }
    }

    /// Stage 2: crosstalk-aware mapping onto the device topology (§IV-A).
    pub fn map(&self, decomposed: &DecomposeReport) -> MapReport {
        let mapped = map_circuit(
            &decomposed.circuit,
            &self.config.topology,
            &self.config.mapping,
        );
        let crosstalk = crosstalk_metric(&mapped.circuit, &self.config.topology);
        MapReport {
            crosstalk,
            swap_count: mapped.swap_count,
            initial_layout: mapped.initial_layout,
            final_layout: mapped.final_layout,
            circuit: mapped.circuit,
        }
    }

    /// Stage 3: divides the mapped circuit into gate groups under the
    /// session policy and de-duplicates them up to phase and qubit
    /// permutation (§IV-B/C).
    pub fn group(&self, mapped: &MapReport) -> GroupReport {
        let (grouped, processed) = divide_circuit(&mapped.circuit, &self.config.policy);
        let dedup = dedup_groups(&grouped.groups);
        let targets = dedup
            .unique
            .iter()
            .zip(&dedup.keys)
            .map(|(g, key)| {
                let u = g.unitary();
                let (_, perm) = UnitaryKey::canonical_with_permutation(&u, g.n_qubits());
                GroupTarget {
                    key: key.clone(),
                    unitary: accqoc_circuit::permute_qubits(&u, &perm, g.n_qubits()),
                    n_qubits: g.n_qubits(),
                }
            })
            .collect();
        GroupReport {
            grouped,
            processed,
            targets,
            assignment: dedup.assignment,
            swap_count: mapped.swap_count,
            crosstalk: mapped.crosstalk,
        }
    }

    /// Stage 4: checks every group instance against the pulse cache
    /// (paper Figure 7 measures exactly this coverage).
    pub fn lookup(&self, grouped: &GroupReport) -> LookupReport {
        let covered_unique: Vec<bool> = grouped
            .targets
            .iter()
            .map(|t| self.library.contains(&t.key))
            .collect();
        let uncovered: Vec<GroupTarget> = grouped
            .targets
            .iter()
            .zip(&covered_unique)
            .filter(|(_, &c)| !c)
            .map(|(t, _)| t.clone())
            .collect();
        let covered = grouped
            .assignment
            .iter()
            .filter(|&&u| covered_unique[u])
            .count();
        LookupReport {
            coverage: CoverageStats {
                covered,
                total: grouped.assignment.len(),
            },
            uncovered,
        }
    }

    /// Stage 5: compiles the uncovered groups in similarity-MST order
    /// with warm starts (§V-C), adding every pulse to the session cache.
    ///
    /// # Errors
    ///
    /// [`Error::CompileFailed`] when a group has no feasible pulse within
    /// the latency cap; [`Error::GroupTooWide`] / [`Error::EmptyGroup`]
    /// for groups outside the model set.
    pub fn compile(&self, lookup: &LookupReport) -> Result<CompileReport> {
        if lookup.uncovered.is_empty() {
            return Ok(CompileReport {
                compiled: vec![],
                dynamic_iterations: 0,
                scratch_starts: 0,
                mst_weight: 0.0,
            });
        }
        let (_, order) = library::batch_plan(
            lookup.uncovered.iter().map(|t| t.unitary.clone()).collect(),
            self.config.similarity,
        );

        let mut pulses: HashMap<usize, Pulse> = HashMap::new();
        let mut compiled = Vec::with_capacity(order.steps.len());
        let mut dynamic_iterations = 0usize;
        let mut ws = self.lease_workspace();
        for step in &order.steps {
            let target = &lookup.uncovered[step.vertex];
            let warm = step
                .parent
                .filter(|&p| {
                    warm_start_allowed(
                        &lookup.uncovered[p].unitary,
                        &target.unitary,
                        self.config.warm_threshold,
                    )
                })
                .and_then(|p| pulses.get(&p));
            let result =
                self.compile_unitary_with(&target.unitary, target.n_qubits, warm, &mut ws)?;
            dynamic_iterations += result.total_iterations;
            pulses.insert(step.vertex, result.outcome.pulse.clone());
            compiled.push(GroupCompilation {
                key: target.key.clone(),
                latency_ns: result.latency_ns,
                iterations: result.total_iterations,
                covered: false,
            });
            self.library.insert_indexed(
                target.key.clone(),
                &target.unitary,
                CachedPulse {
                    pulse: result.outcome.pulse,
                    latency_ns: result.latency_ns,
                    iterations: result.total_iterations,
                    n_qubits: target.n_qubits,
                },
            );
        }
        Ok(CompileReport {
            compiled,
            dynamic_iterations,
            scratch_starts: order.scratch_starts(),
            mst_weight: order.total_weight(),
        })
    }

    /// Stage 6: the Algorithm 3 latency dynamic program over the group
    /// DAG, plus the gate-based baseline on the same circuit.
    ///
    /// # Errors
    ///
    /// [`Error::UncoveredGroup`] when a group has no cached pulse (run
    /// [`Session::compile`] first).
    pub fn latency(&self, grouped: &GroupReport) -> Result<LatencyReport> {
        let per_unique: Vec<f64> = grouped
            .targets
            .iter()
            .map(|t| {
                self.library
                    .get(&t.key)
                    .map(|e| e.latency_ns)
                    .ok_or(Error::UncoveredGroup {
                        n_qubits: t.n_qubits,
                    })
            })
            .collect::<Result<_>>()?;
        let per_instance_ns: Vec<f64> = grouped.assignment.iter().map(|&u| per_unique[u]).collect();
        let overall_latency_ns = grouped.grouped.overall_latency(|i| per_instance_ns[i]);
        let gate_based_latency_ns = self.gate_based_latency(&grouped.processed);
        Ok(LatencyReport {
            overall_latency_ns,
            gate_based_latency_ns,
            per_instance_ns,
        })
    }

    /// Runs the whole pipeline on one program: decompose → map → group →
    /// lookup → MST-accelerated compile → Algorithm 3 latency. Compiled
    /// pulses stay in the session cache, so recompiling the same (or a
    /// similar) program is cheaper.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures. On a capacity-bounded
    /// library, returns [`Error::CapacityExceeded`] when the program has
    /// more unique groups than the library can hold at once (the latency
    /// stage would find its own pulses already evicted) — use
    /// [`Session::serve_program`] for bounded libraries.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_circuit::{Circuit, Gate};
    /// use accqoc_hw::Topology;
    ///
    /// let mut grape = accqoc_grape::GrapeOptions::default();
    /// grape.stop.max_iters = 200;
    /// let session = Session::builder()
    ///     .topology(Topology::linear(2))
    ///     .grape(grape)
    ///     .build()?;
    /// let program = Circuit::from_gates(2, [Gate::H(0)]);
    /// let out = session.compile_program(&program)?;
    /// assert!(out.overall_latency_ns > 0.0);
    /// // Recompiling is fully covered by the session cache.
    /// let again = session.compile_program(&program)?;
    /// assert_eq!(again.dynamic_iterations, 0);
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn compile_program(&self, circuit: &Circuit) -> Result<ProgramCompilation> {
        let decomposed = self.decompose(circuit);
        let mapped = self.map(&decomposed);
        let grouped = self.group(&mapped);
        if let Some(capacity) = self.library.capacity() {
            if capacity < grouped.targets.len() {
                return Err(Error::CapacityExceeded {
                    capacity,
                    required: grouped.targets.len(),
                });
            }
        }
        let lookup = self.lookup(&grouped);
        let compiled = self.compile(&lookup)?;
        let latency = self.latency(&grouped)?;
        Ok(ProgramCompilation {
            overall_latency_ns: latency.overall_latency_ns,
            gate_based_latency_ns: latency.gate_based_latency_ns,
            coverage: lookup.coverage,
            dynamic_iterations: compiled.dynamic_iterations,
            n_uncovered_unique: lookup.uncovered.len(),
            grouped: grouped.grouped,
            crosstalk: grouped.crosstalk,
            swap_count: grouped.swap_count,
        })
    }

    /// Leases a GRAPE workspace from the session pool (creating an empty
    /// one only when the pool is dry). The workspace returns to the pool
    /// on drop with its grown buffers intact.
    pub(crate) fn lease_workspace(&self) -> WorkspaceLease<'_> {
        let ws = self
            .ws_pool
            .lock()
            .map(|mut pool| pool.pop())
            .unwrap_or_default()
            .unwrap_or_default();
        WorkspaceLease {
            pool: &self.ws_pool,
            ws: Some(ws),
        }
    }

    /// Number of idle workspaces currently parked in the pool.
    #[cfg(test)]
    pub(crate) fn pooled_workspaces(&self) -> usize {
        self.ws_pool.lock().map(|p| p.len()).unwrap_or(0)
    }

    // -- lower-level entry points -------------------------------------------

    /// Front-end only: decompose, map, and group a program.
    pub fn front_end(&self, circuit: &Circuit) -> GroupReport {
        let decomposed = self.decompose(circuit);
        let mapped = self.map(&decomposed);
        self.group(&mapped)
    }

    /// Coverage of a program against the session cache, without
    /// compiling anything.
    pub fn coverage_of(&self, circuit: &Circuit) -> CoverageStats {
        self.lookup(&self.front_end(circuit)).coverage
    }

    /// Compiles one canonical unitary to a pulse (binary-searched minimal
    /// latency), optionally warm-started. Does **not** touch the cache.
    ///
    /// # Errors
    ///
    /// [`Error::GroupTooWide`] / [`Error::EmptyGroup`] for groups outside
    /// the model set; [`Error::CompileFailed`] when no feasible pulse
    /// exists within the latency cap.
    pub fn compile_unitary(
        &self,
        target: &Mat,
        n_qubits: usize,
        warm: Option<&Pulse>,
    ) -> Result<LatencyResult> {
        self.compile_unitary_with(target, n_qubits, warm, &mut self.lease_workspace())
    }

    /// [`Session::compile_unitary`] with a caller-owned GRAPE workspace,
    /// so repeated compilations (and per-thread worker loops) reuse the
    /// solver's scratch buffers instead of reallocating them every probe.
    ///
    /// # Errors
    ///
    /// Same as [`Session::compile_unitary`].
    pub fn compile_unitary_with(
        &self,
        target: &Mat,
        n_qubits: usize,
        warm: Option<&Pulse>,
        ws: &mut GrapeWorkspace,
    ) -> Result<LatencyResult> {
        // Anchor 0.0 = the plain batch search (no seed-anchored floor).
        self.serve_compile(target, n_qubits, warm, 0.0, ws)
    }

    /// The serving-path compile: [`Session::compile_unitary_with`] plus
    /// the seed-anchored search window of
    /// [`ServeOptions::search_anchor`] — a warm seed raises the search
    /// floor to `seed_steps × anchor`, pruning the deep-infeasible
    /// probes a cold search must pay for. Anchor `0.0` (or a scratch
    /// compile) is exactly the batch search.
    pub(crate) fn serve_compile(
        &self,
        target: &Mat,
        n_qubits: usize,
        warm: Option<&Pulse>,
        anchor: f64,
        ws: &mut GrapeWorkspace,
    ) -> Result<LatencyResult> {
        let model = self.models.for_qubits(n_qubits)?;
        let mut search = self.config.search.clone();
        search.min_steps = search
            .min_steps
            .max((model.min_time_estimate_ns() / model.dt_ns()) as usize / 2)
            .max(1);
        if let Some(p) = warm.filter(|p| anchor > 0.0 && p.n_steps() > 0) {
            let floor = ((p.n_steps() as f64) * anchor).floor() as usize;
            search.min_steps = search
                .min_steps
                .max(floor.min(p.n_steps()))
                .min(search.max_steps);
        }
        find_minimal_latency_seeded(model, target, warm, &self.config.grape, &search, ws)
            .map_err(|source| Error::CompileFailed { n_qubits, source })
    }

    /// Static pre-compilation (§IV): profiles `programs`, compiles their
    /// de-duplicated group category into the session cache, and reports
    /// the category statistics.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn precompile(
        &self,
        programs: &[Circuit],
        order: PrecompileOrder,
    ) -> Result<PrecompileReport> {
        precompile::precompile(self, programs, order)
    }

    /// [`Session::precompile`] restricted to the unique groups whose
    /// width is in `only_qubits` — what one shard of a sharded
    /// deployment precompiles. The report counts owned groups only, so
    /// shard reports over a width partition sum to the whole-category
    /// numbers. `None` is [`Session::precompile`] exactly.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn precompile_subset(
        &self,
        programs: &[Circuit],
        order: PrecompileOrder,
        only_qubits: Option<&[usize]>,
    ) -> Result<PrecompileReport> {
        precompile::precompile_subset(self, programs, order, only_qubits)
    }

    /// Parallel variant of [`Session::precompile`]: compiles the missing
    /// groups on a pool of `n_workers` OS threads over a balanced MST
    /// partition (§V-D), each worker with its own GRAPE workspace, and
    /// returns real per-worker wall-clock timings in the stats.
    ///
    /// The partition *plan* is fixed (independent of `n_workers`), so the
    /// session cache — and any artifact saved from it — is byte-identical
    /// whether this runs on 1 thread or 16.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_circuit::{Circuit, Gate};
    /// use accqoc_hw::Topology;
    ///
    /// let mut grape = accqoc_grape::GrapeOptions::default();
    /// grape.stop.max_iters = 200;
    /// let session = Session::builder()
    ///     .topology(Topology::linear(2))
    ///     .grape(grape)
    ///     .build()?;
    /// let programs = vec![Circuit::from_gates(2, [Gate::H(0)])];
    /// let (report, stats) = session.precompile_parallel(&programs, 2)?;
    /// assert_eq!(report.n_unique_groups, session.cache_len());
    /// assert!(stats.total_iterations >= stats.makespan_iterations);
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn precompile_parallel(
        &self,
        programs: &[Circuit],
        n_workers: usize,
    ) -> Result<(PrecompileReport, ParallelStats)> {
        precompile::precompile_parallel(self, programs, n_workers)
    }

    /// [`Session::precompile_parallel`] with explicit
    /// [`ParallelOptions`](crate::ParallelOptions):
    /// set `plan_parts` above [`crate::DEFAULT_PLAN_PARTS`] on machines
    /// with more cores, or to `1` to reproduce the sequential
    /// [`Session::precompile`] artifact bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn precompile_parallel_with(
        &self,
        programs: &[Circuit],
        options: &crate::ParallelOptions,
    ) -> Result<(PrecompileReport, ParallelStats)> {
        precompile::precompile_parallel_with(self, programs, options)
    }

    /// Batch-compiles many programs on a worker pool: concurrent front
    /// ends, one parallel MST compile of the union of uncovered groups,
    /// then per-program latency folding from the warm cache. See
    /// [`precompile::compile_programs_parallel`] for the report-semantics
    /// differences from looping [`Session::compile_program`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `threads == 0`; otherwise propagates
    /// group-compilation failures.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_circuit::{Circuit, Gate};
    /// use accqoc_hw::Topology;
    ///
    /// let mut grape = accqoc_grape::GrapeOptions::default();
    /// grape.stop.max_iters = 200;
    /// let session = Session::builder()
    ///     .topology(Topology::linear(2))
    ///     .grape(grape)
    ///     .build()?;
    /// let programs = vec![
    ///     Circuit::from_gates(2, [Gate::H(0)]),
    ///     Circuit::from_gates(2, [Gate::H(0), Gate::T(0)]),
    /// ];
    /// let (compiled, _stats) = session.compile_programs_parallel(&programs, 2)?;
    /// assert_eq!(compiled.len(), 2);
    /// assert!(compiled.iter().all(|c| c.overall_latency_ns > 0.0));
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn compile_programs_parallel(
        &self,
        programs: &[Circuit],
        threads: usize,
    ) -> Result<(Vec<ProgramCompilation>, ParallelStats)> {
        precompile::compile_programs_parallel(self, programs, threads)
    }

    // -- online serving -----------------------------------------------------

    /// Serves one arriving program against the live pulse library: cache
    /// hits are free, misses warm-start GRAPE from the nearest
    /// fingerprint neighbor that passes the warm-start gate (scratch
    /// otherwise — an empty library is a valid, slow library, never an
    /// error), and every compiled pulse is inserted back under the
    /// capacity bound. Hit/miss/warm/scratch counters accumulate in
    /// [`PulseLibrary::stats`].
    ///
    /// This is the online counterpart of [`Session::compile_program`]:
    /// where the batch path plans a similarity MST over all uncovered
    /// groups at once, the serving path resolves each group against
    /// whatever the library holds *right now* — so it keeps improving as
    /// traffic flows, without ever rebuilding an O(n²) graph.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_circuit::{Circuit, Gate};
    /// use accqoc_hw::Topology;
    ///
    /// let mut grape = accqoc_grape::GrapeOptions::default();
    /// grape.stop.max_iters = 200;
    /// let session = Session::builder()
    ///     .topology(Topology::linear(2))
    ///     .grape(grape)
    ///     .build()?;
    /// // Serving against an empty library falls back to scratch compiles.
    /// let first = session.serve_program(&Circuit::from_gates(2, [Gate::H(0)]))?;
    /// assert!(first.n_compiled > 0);
    /// // The same program again is a pure cache hit.
    /// let again = session.serve_program(&Circuit::from_gates(2, [Gate::H(0)]))?;
    /// assert_eq!(again.n_compiled, 0);
    /// assert!(session.library().stats().hits > 0);
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn serve_program(&self, circuit: &Circuit) -> Result<ServeReport> {
        library::serve::serve_program(self, circuit, &ServeOptions::default())
    }

    /// [`Session::serve_program`] with explicit [`ServeOptions`]
    /// (candidate count of the fingerprint retrieval).
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn serve_program_with(
        &self,
        circuit: &Circuit,
        options: &ServeOptions,
    ) -> Result<ServeReport> {
        library::serve::serve_program(self, circuit, options)
    }

    /// [`Session::serve_program`] for callers that already ran
    /// [`Session::front_end`] — e.g. the serving daemon, which needs the
    /// program's group keys *before* serving to claim them for in-flight
    /// coalescing, and should not pay decompose/map/group twice per
    /// request.
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn serve_grouped(
        &self,
        grouped: &GroupReport,
        options: &ServeOptions,
    ) -> Result<ServeReport> {
        library::serve::serve_grouped(self, grouped, options)
    }

    /// [`Session::serve_grouped`] restricted to the unique groups whose
    /// width is in `only_qubits` — what one shard of a sharded
    /// deployment serves. Warm starts are width-local, so the owned
    /// groups' pulses, counters, and per-group latencies are
    /// byte-identical to a whole-program serve; see
    /// [`serve_grouped_subset`](crate::library::serve_grouped_subset)
    /// for the transparency contract (subset reports zero their
    /// program-level latencies and count only owned instances).
    ///
    /// # Errors
    ///
    /// Propagates group-compilation failures.
    pub fn serve_grouped_subset(
        &self,
        grouped: &GroupReport,
        options: &ServeOptions,
        only_qubits: Option<&[usize]>,
    ) -> Result<ServeReport> {
        library::serve::serve_grouped_subset(self, grouped, options, only_qubits)
    }

    /// Folds the program-level overall latency (Algorithm 3 DP) from
    /// per-unique-group latencies supplied by the caller — the router's
    /// merge path: each shard reports latencies for the groups it owns,
    /// and the front end folds the merged map into the same number a
    /// single-process serve reports.
    ///
    /// # Errors
    ///
    /// [`Error::UncoveredGroup`] when `latency_of` has no latency for
    /// one of the program's unique groups.
    pub fn overall_latency_from<F>(&self, grouped: &GroupReport, mut latency_of: F) -> Result<f64>
    where
        F: FnMut(&UnitaryKey) -> Option<f64>,
    {
        let mut per_unique = Vec::with_capacity(grouped.targets.len());
        for target in &grouped.targets {
            match latency_of(&target.key) {
                Some(latency) => per_unique.push(latency),
                None => {
                    return Err(Error::UncoveredGroup {
                        n_qubits: target.n_qubits,
                    })
                }
            }
        }
        let per_instance: Vec<f64> = grouped.assignment.iter().map(|&u| per_unique[u]).collect();
        Ok(grouped.grouped.overall_latency(|i| per_instance[i]))
    }

    // -- verification -------------------------------------------------------

    /// Verifies that the session cache semantically implements `circuit`:
    /// every unique group's cached pulse is propagated through its
    /// control-model Hamiltonians and scored against the canonical group
    /// unitary with the global-phase-invariant gate fidelity, and — on
    /// registers narrow enough for dense evaluation — the per-instance
    /// unitaries are composed per the grouped schedule and checked
    /// against the whole-program reference unitary.
    ///
    /// Uses [`VerifyOptions::default`](crate::VerifyOptions); see
    /// [`Session::verify_program_with`] for configurable thresholds.
    ///
    /// # Errors
    ///
    /// [`Error::UncoveredGroup`] when a group has no cached pulse
    /// (compile the program first); [`Error::InvalidConfig`] when a
    /// cached pulse does not fit its control model.
    ///
    /// # Examples
    ///
    /// ```
    /// use accqoc::Session;
    /// use accqoc_circuit::{Circuit, Gate};
    /// use accqoc_hw::Topology;
    ///
    /// let mut grape = accqoc_grape::GrapeOptions::default();
    /// grape.stop.max_iters = 200;
    /// let session = Session::builder()
    ///     .topology(Topology::linear(2))
    ///     .grape(grape)
    ///     .build()?;
    /// let program = Circuit::from_gates(2, [Gate::H(0)]);
    /// session.compile_program(&program)?;
    /// let report = session.verify_program(&program)?;
    /// assert!(report.passed);
    /// assert!(report.min_group_fidelity >= 0.999);
    /// # Ok::<(), accqoc::Error>(())
    /// ```
    pub fn verify_program(&self, circuit: &Circuit) -> Result<crate::VerifyReport> {
        crate::verify::verify_program(self, circuit, &crate::VerifyOptions::default())
    }

    /// [`Session::verify_program`] with explicit thresholds and dense
    /// composition limits.
    ///
    /// # Errors
    ///
    /// Same as [`Session::verify_program`].
    pub fn verify_program_with(
        &self,
        circuit: &Circuit,
        options: &crate::VerifyOptions,
    ) -> Result<crate::VerifyReport> {
        crate::verify::verify_program(self, circuit, options)
    }

    /// Re-optimizes one cached group on a finer time grid (§IV-G).
    ///
    /// # Errors
    ///
    /// Propagates compilation failures of the refined search.
    pub fn optimize_group(
        &self,
        key: &UnitaryKey,
        target: &Mat,
        n_qubits: usize,
    ) -> Result<(f64, f64)> {
        precompile::optimize_group(self, key, target, n_qubits)
    }

    // -- gate-based baseline ------------------------------------------------

    /// Gate-based compilation latency of a processed physical circuit:
    /// weighted critical path with device-derived per-gate pulse
    /// durations (paper §II-C).
    pub fn gate_based_latency(&self, processed: &Circuit) -> f64 {
        let durations = self.gate_durations();
        let dag = CircuitDag::from_circuit(processed);
        dag.critical_path(|i| durations.gate_duration(&dag.node(i).gate))
    }

    /// The single-gate duration table, compiled on first use: each basis
    /// gate gets a GRAPE-minimal pulse on this device, exactly how the
    /// gate-pulse lookup table of Figure 3 would be calibrated.
    pub fn gate_durations(&self) -> GateDurations {
        let mut guard = self
            .durations
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(d) = guard.as_ref() {
            return d.clone();
        }
        let table = self.build_gate_durations();
        *guard = Some(table.clone());
        table
    }

    fn build_gate_durations(&self) -> GateDurations {
        use GateKind::*;
        let mut map: std::collections::BTreeMap<GateKind, f64> = std::collections::BTreeMap::new();
        let single: &[(GateKind, Gate)] = &[
            (X, Gate::X(0)),
            (Y, Gate::Y(0)),
            (Z, Gate::Z(0)),
            (H, Gate::H(0)),
            (S, Gate::S(0)),
            (Sdg, Gate::Sdg(0)),
            (T, Gate::T(0)),
            (Tdg, Gate::Tdg(0)),
            (Rx, Gate::Rx(0, std::f64::consts::FRAC_PI_2)),
            (Ry, Gate::Ry(0, std::f64::consts::FRAC_PI_2)),
            (Rz, Gate::Rz(0, std::f64::consts::FRAC_PI_2)),
            (U1, Gate::U1(0, std::f64::consts::FRAC_PI_2)),
            (U2, Gate::U2(0, 0.3, 0.9)),
            (U3, Gate::U3(0, 1.1, 0.4, -0.7)),
        ];
        for (kind, gate) in single {
            let target = gate.matrix();
            let latency = self
                .compile_unitary(&target, 1, None)
                .map(|r| r.latency_ns)
                .unwrap_or(f64::INFINITY);
            map.insert(*kind, latency);
        }
        let double: &[(GateKind, Gate)] = &[
            (Cx, Gate::Cx(0, 1)),
            (Cz, Gate::Cz(0, 1)),
            (Swap, Gate::Swap(0, 1)),
        ];
        for (kind, gate) in double {
            let target = gate.matrix();
            let latency = self
                .compile_unitary(&target, 2, None)
                .map(|r| r.latency_ns)
                .unwrap_or(f64::INFINITY);
            map.insert(*kind, latency);
        }
        let default = map.values().copied().fold(0.0, f64::max);
        GateDurations::from_single_gate_pulses(map, default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_hw::Topology;

    fn tiny_session() -> Session {
        let mut grape = accqoc_grape::GrapeOptions::default();
        grape.stop.max_iters = 200;
        Session::builder()
            .topology(Topology::linear(3))
            .grape(grape)
            .build()
            .expect("valid session")
    }

    #[test]
    fn builder_requires_topology() {
        let e = Session::builder().build().unwrap_err();
        assert!(matches!(e, Error::Builder { field: "topology" }));
    }

    #[test]
    fn workspace_pool_recycles_leases() {
        let session = tiny_session();
        assert_eq!(session.pooled_workspaces(), 0);
        {
            let _a = session.lease_workspace();
            let _b = session.lease_workspace();
            assert_eq!(session.pooled_workspaces(), 0);
        }
        // Both leases returned; pool holds exactly the peak concurrency.
        assert_eq!(session.pooled_workspaces(), 2);
        drop(session.lease_workspace());
        assert_eq!(session.pooled_workspaces(), 2);
    }

    #[test]
    fn forks_share_one_workspace_pool() {
        let session = tiny_session();
        let fork = session.fork();
        drop(fork.lease_workspace());
        assert_eq!(session.pooled_workspaces(), 1);
        drop(session.lease_workspace());
        assert_eq!(fork.pooled_workspaces(), 1);
    }

    #[test]
    fn builder_rejects_negative_warm_threshold() {
        let e = Session::builder()
            .topology(Topology::linear(2))
            .warm_threshold(-0.1)
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::InvalidConfig { .. }));
    }

    #[test]
    fn compile_unitary_rejects_wide_and_empty_groups() {
        let s = tiny_session();
        let wide = s.compile_unitary(&Mat::identity(8), 3, None).unwrap_err();
        assert!(matches!(
            wide,
            Error::GroupTooWide {
                n_qubits: 3,
                max: 2
            }
        ));
        let empty = s.compile_unitary(&Mat::identity(1), 0, None).unwrap_err();
        assert!(matches!(empty, Error::EmptyGroup));
    }

    #[test]
    fn coverage_rate_edge_cases() {
        assert_eq!(
            CoverageStats {
                covered: 0,
                total: 0
            }
            .rate(),
            1.0
        );
        assert!(
            (CoverageStats {
                covered: 3,
                total: 4
            }
            .rate()
                - 0.75)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn staged_pipeline_matches_one_shot() {
        use accqoc_circuit::Gate;
        let session = tiny_session();
        let circuit =
            Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1), Gate::T(1), Gate::Cx(1, 2)]);

        // Drive the stages by hand.
        let decomposed = session.decompose(&circuit);
        assert!(decomposed.output_gates >= decomposed.input_gates.min(4));
        let mapped = session.map(&decomposed);
        let grouped = session.group(&mapped);
        assert!(grouped.n_unique() <= grouped.n_instances());
        let lookup = session.lookup(&grouped);
        assert_eq!(lookup.coverage.covered, 0);
        assert_eq!(lookup.uncovered.len(), grouped.n_unique());
        let compiled = session.compile(&lookup).unwrap();
        assert!(compiled.dynamic_iterations > 0);
        assert_eq!(compiled.compiled.len(), lookup.uncovered.len());
        let latency = session.latency(&grouped).unwrap();
        assert!(latency.overall_latency_ns > 0.0);
        assert!(latency.latency_reduction() > 1.0);

        // The one-shot path on a fresh fork agrees.
        let fresh = tiny_session();
        let result = fresh.compile_program(&circuit).unwrap();
        assert_eq!(result.overall_latency_ns, latency.overall_latency_ns);
        assert_eq!(result.dynamic_iterations, compiled.dynamic_iterations);
        assert_eq!(result.coverage.covered, 0);

        // Recompilation is fully covered and free.
        let again = fresh.compile_program(&circuit).unwrap();
        assert_eq!(again.coverage.covered, again.coverage.total);
        assert_eq!(again.dynamic_iterations, 0);
        assert!((again.overall_latency_ns - result.overall_latency_ns).abs() < 1e-9);
    }

    #[test]
    fn latency_stage_requires_compiled_cache() {
        use accqoc_circuit::Gate;
        let session = tiny_session();
        let grouped = session.front_end(&Circuit::from_gates(2, [Gate::H(0), Gate::Cx(0, 1)]));
        let e = session.latency(&grouped).unwrap_err();
        assert!(matches!(e, Error::UncoveredGroup { .. }));
    }

    #[test]
    fn fork_inherits_cache_but_diverges_after() {
        use accqoc_circuit::Gate;
        let session = tiny_session();
        let c1 = Circuit::from_gates(3, [Gate::H(0)]);
        session.compile_program(&c1).unwrap();
        let fork = session.fork();
        assert_eq!(fork.cache_len(), session.cache_len());
        let c2 = Circuit::from_gates(3, [Gate::H(0), Gate::Cx(0, 1)]);
        fork.compile_program(&c2).unwrap();
        assert!(fork.cache_len() > session.cache_len());
    }

    #[test]
    fn gate_duration_table_is_sane() {
        let session = tiny_session();
        let d = session.gate_durations();
        // X needs its full π rotation: 10 ns at our drive cap.
        assert!((d.duration(GateKind::X) - 10.0).abs() < 1.5);
        // Phase-type gates are cheaper than X.
        assert!(d.duration(GateKind::T) <= d.duration(GateKind::X));
        // Entangling gates cost more than single-qubit ones.
        assert!(d.duration(GateKind::Cx) > d.duration(GateKind::H));
        // Cached on second call (identical values).
        let d2 = session.gate_durations();
        assert_eq!(d.duration(GateKind::Cx), d2.duration(GateKind::Cx));
    }
}
