//! Strict flag parsing for the daemon and router binaries.
//!
//! Two failure modes of the old ad-hoc parser motivated this module:
//! unknown flags were silently ignored (a typo like `--worker 8` ran a
//! 2-worker daemon without a word), and a flag would happily consume a
//! following flag as its value (`--addr --qubits` bound a listener to
//! the address `--qubits`). Here every argument must be a known flag,
//! every flag must have a value, and a value that itself looks like a
//! flag is rejected — write `--flag=value` for the rare literal that
//! genuinely starts with `--`.

use crate::server::ServerConfig;

/// Usage text the binary prints for `--help` and under parse errors.
pub const USAGE: &str = "\
accqoc daemon — pulse-serving over TCP (legacy line protocol + HTTP/1.1)

USAGE:
  daemon [FLAGS]

FLAGS (all optional, `--flag VALUE` or `--flag=VALUE`):
  --addr HOST:PORT        listen address (default 127.0.0.1:7878; port 0
                          picks a free port and prints it)
  --qubits N              device width, linear topology (default 5)
  --workers N             worker threads (default 2)
  --queue N               admission-queue capacity (default 64)
  --max-connections N     concurrent client connections (default 1024)
  --max-iters N           GRAPE iteration cap per probe (default 300)
  --library-capacity N    LRU bound on the pulse library (default
                          unbounded; serving works at any capacity)
  --data-dir PATH         durable library tier: recover on startup,
                          write-ahead log while serving, snapshot on
                          clean shutdown
  --snapshot-every N      with --data-dir, compact the log into a fresh
                          snapshot every N inserts (default 128; 0 =
                          shutdown snapshot only)
  -h, --help              print this help
";

/// Everything the daemon binary needs to boot, parsed and validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonOptions {
    /// Listen address.
    pub addr: String,
    /// Device width (linear topology).
    pub qubits: usize,
    /// Worker threads.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue: usize,
    /// Concurrent-connection cap.
    pub max_connections: usize,
    /// GRAPE iteration cap per probe.
    pub max_iters: usize,
    /// LRU bound on the pulse library, when bounded.
    pub library_capacity: Option<usize>,
    /// Durable-tier directory, when persistence is on.
    pub data_dir: Option<String>,
    /// Snapshot compaction cadence (inserts) for the durable tier.
    pub snapshot_every: usize,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        let server = ServerConfig::default();
        Self {
            addr: "127.0.0.1:7878".to_string(),
            qubits: 5,
            workers: server.workers,
            queue: server.queue_capacity,
            max_connections: server.max_connections,
            max_iters: 300,
            library_capacity: None,
            data_dir: None,
            snapshot_every: 128,
        }
    }
}

impl DaemonOptions {
    /// The [`ServerConfig`] these options select.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            workers: self.workers,
            queue_capacity: self.queue,
            max_connections: self.max_connections,
            ..ServerConfig::default()
        }
    }
}

/// What the argument vector asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Boot the daemon with these options.
    Serve(DaemonOptions),
    /// Print usage and exit 0.
    Help,
}

/// Why the argument vector was rejected (the binary exits 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// An argument that is not a known flag.
    UnknownFlag(String),
    /// A bare word where a flag was expected.
    UnexpectedArgument(String),
    /// A flag at the end of the line with no value after it.
    MissingValue(String),
    /// A flag whose next argument is itself flag-shaped (almost always
    /// a forgotten value, never silently consumed).
    FlagShapedValue {
        /// The flag awaiting a value.
        flag: String,
        /// The flag-shaped token that followed it.
        value: String,
    },
    /// A value that did not parse as the flag's type.
    BadValue {
        /// The flag.
        flag: String,
        /// The unparseable value.
        value: String,
    },
    /// A flag the selected mode requires was never given.
    MissingFlag(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            Self::UnexpectedArgument(arg) => write!(f, "unexpected argument `{arg}`"),
            Self::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            Self::FlagShapedValue { flag, value } => write!(
                f,
                "flag `{flag}` is followed by `{value}`, which looks like a flag, not a value \
                 (write `{flag}={value}` if that really is the value)"
            ),
            Self::BadValue { flag, value } => {
                write!(f, "invalid value for `{flag}`: `{value}`")
            }
            Self::MissingFlag(flag) => write!(f, "required flag `{flag}` was not given"),
        }
    }
}

impl std::error::Error for CliError {}

const KNOWN_FLAGS: [&str; 9] = [
    "--addr",
    "--qubits",
    "--workers",
    "--queue",
    "--max-connections",
    "--max-iters",
    "--library-capacity",
    "--data-dir",
    "--snapshot-every",
];

/// Parses the daemon's argument vector (without the program name).
///
/// # Errors
///
/// A [`CliError`] naming exactly what was wrong; nothing is ever
/// silently ignored or misassigned.
pub fn parse_args(args: impl IntoIterator<Item = String>) -> Result<Command, CliError> {
    let mut options = DaemonOptions::default();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if arg == "-h" || arg == "--help" {
            return Ok(Command::Help);
        }
        if !arg.starts_with("--") {
            return Err(CliError::UnexpectedArgument(arg));
        }
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        if !KNOWN_FLAGS.contains(&flag.as_str()) {
            return Err(CliError::UnknownFlag(flag));
        }
        let value = match inline {
            Some(value) => value,
            None => match args.peek() {
                None => return Err(CliError::MissingValue(flag)),
                Some(next) if next.starts_with("--") => {
                    return Err(CliError::FlagShapedValue {
                        flag,
                        value: next.clone(),
                    })
                }
                Some(_) => args.next().expect("peeked"),
            },
        };
        let count = |value: &str| -> Result<usize, CliError> {
            value.parse().map_err(|_| CliError::BadValue {
                flag: flag.clone(),
                value: value.to_string(),
            })
        };
        match flag.as_str() {
            "--addr" => options.addr = value,
            "--qubits" => options.qubits = count(&value)?,
            "--workers" => options.workers = count(&value)?,
            "--queue" => options.queue = count(&value)?,
            "--max-connections" => options.max_connections = count(&value)?,
            "--max-iters" => options.max_iters = count(&value)?,
            "--library-capacity" => options.library_capacity = Some(count(&value)?),
            "--data-dir" => options.data_dir = Some(value),
            "--snapshot-every" => options.snapshot_every = count(&value)?,
            _ => unreachable!("flag was checked against KNOWN_FLAGS"),
        }
    }
    Ok(Command::Serve(options))
}

/// Usage text the router binary prints for `--help` and under parse
/// errors.
pub const ROUTER_USAGE: &str = "\
accqoc router — front-end for a sharded pulse-library deployment

Speaks the daemon's wire surfaces (line protocol + HTTP/1.1) unchanged
and forwards each request to the worker daemons owning its groups on a
consistent-hash ring keyed by group width.

USAGE:
  router --shards HOST:PORT,HOST:PORT,... [FLAGS]
  router --rebalance --data-base PATH --from N --to M [--vnodes V]

FLAGS (`--flag VALUE` or `--flag=VALUE`):
  --shards LIST           comma-separated worker addresses; the list
                          order is the shard numbering (required)
  --addr HOST:PORT        listen address (default 127.0.0.1:7979; port 0
                          picks a free port and prints it)
  --qubits N              device width of the front-end session, linear
                          topology — must match the workers (default 5)
  --workers N             router worker threads (default 2)
  --queue N               admission-queue capacity (default 64)
  --max-connections N     concurrent client connections (default 1024)
  --attempts N            forwarding attempts per call before answering
                          `shard_unavailable` (default 3)
  --backoff-ms MS         backoff before the first retry; each further
                          retry waits 5x longer (default 10)
  --connect-timeout-ms MS TCP connect timeout per attempt (default 1000)
  --read-timeout-ms MS    per-response read timeout (default 120000)
  --vnodes V              virtual nodes per shard on the ring (default
                          64; every process in a deployment must agree)

REBALANCE MODE (offline; stop the workers first):
  --rebalance             run a ring resize instead of serving
  --data-base PATH        directory holding the shard-N data dirs
  --from N                shard count the stores were written under
  --to M                  shard count to rebalance onto
  -h, --help              print this help
";

/// Everything the router binary needs to boot, parsed and validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOptions {
    /// Listen address.
    pub addr: String,
    /// Worker-daemon addresses, in shard order.
    pub shards: Vec<String>,
    /// Device width of the front-end session (linear topology).
    pub qubits: usize,
    /// Router worker threads.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue: usize,
    /// Concurrent-connection cap.
    pub max_connections: usize,
    /// Forwarding attempts per call.
    pub attempts: usize,
    /// Backoff before the first retry, milliseconds.
    pub backoff_ms: u64,
    /// TCP connect timeout per attempt, milliseconds.
    pub connect_timeout_ms: u64,
    /// Per-response read timeout, milliseconds.
    pub read_timeout_ms: u64,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        let server = ServerConfig::default();
        let router = crate::router::RouterConfig::default();
        Self {
            addr: "127.0.0.1:7979".to_string(),
            shards: Vec::new(),
            qubits: 5,
            workers: server.workers,
            queue: server.queue_capacity,
            max_connections: server.max_connections,
            attempts: router.attempts,
            backoff_ms: router.backoff.as_millis() as u64,
            connect_timeout_ms: router.connect_timeout.as_millis() as u64,
            read_timeout_ms: router.read_timeout.as_millis() as u64,
            vnodes: router.vnodes,
        }
    }
}

impl RouterOptions {
    /// The [`ServerConfig`] these options select for the router's own
    /// event loop.
    pub fn server_config(&self) -> ServerConfig {
        ServerConfig {
            workers: self.workers,
            queue_capacity: self.queue,
            max_connections: self.max_connections,
            ..ServerConfig::default()
        }
    }

    /// The [`crate::router::RouterConfig`] these options select for the
    /// forwarding path.
    pub fn router_config(&self) -> crate::router::RouterConfig {
        use std::time::Duration;
        crate::router::RouterConfig {
            attempts: self.attempts,
            backoff: Duration::from_millis(self.backoff_ms),
            connect_timeout: Duration::from_millis(self.connect_timeout_ms),
            read_timeout: Duration::from_millis(self.read_timeout_ms),
            vnodes: self.vnodes,
        }
    }
}

/// The offline rebalance invocation, parsed and validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceOptions {
    /// Directory holding the `shard-N` data dirs.
    pub data_base: String,
    /// Shard count the stores were written under.
    pub from: usize,
    /// Shard count to rebalance onto.
    pub to: usize,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
}

/// What the router's argument vector asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterCommand {
    /// Boot the router with these options.
    Route(RouterOptions),
    /// Rebalance the shard stores offline, then exit.
    Rebalance(RebalanceOptions),
    /// Print usage and exit 0.
    Help,
}

const ROUTER_KNOWN_FLAGS: [&str; 14] = [
    "--shards",
    "--addr",
    "--qubits",
    "--workers",
    "--queue",
    "--max-connections",
    "--attempts",
    "--backoff-ms",
    "--connect-timeout-ms",
    "--read-timeout-ms",
    "--vnodes",
    "--data-base",
    "--from",
    "--to",
];

/// Parses the router's argument vector (without the program name), with
/// the same strictness as [`parse_args`]: every argument must be a
/// known flag, every value-taking flag must have a value, and a value
/// that itself looks like a flag is rejected.
///
/// # Errors
///
/// A [`CliError`] naming exactly what was wrong; nothing is ever
/// silently ignored or misassigned.
pub fn parse_router_args(
    args: impl IntoIterator<Item = String>,
) -> Result<RouterCommand, CliError> {
    let mut options = RouterOptions::default();
    let mut rebalance = false;
    let mut data_base: Option<String> = None;
    let mut from: Option<usize> = None;
    let mut to: Option<usize> = None;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if arg == "-h" || arg == "--help" {
            return Ok(RouterCommand::Help);
        }
        if arg == "--rebalance" {
            rebalance = true;
            continue;
        }
        if !arg.starts_with("--") {
            return Err(CliError::UnexpectedArgument(arg));
        }
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag.to_string(), Some(value.to_string())),
            None => (arg, None),
        };
        if !ROUTER_KNOWN_FLAGS.contains(&flag.as_str()) {
            return Err(CliError::UnknownFlag(flag));
        }
        let value = match inline {
            Some(value) => value,
            None => match args.peek() {
                None => return Err(CliError::MissingValue(flag)),
                Some(next) if next.starts_with("--") => {
                    return Err(CliError::FlagShapedValue {
                        flag,
                        value: next.clone(),
                    })
                }
                Some(_) => args.next().expect("peeked"),
            },
        };
        let count = |value: &str| -> Result<usize, CliError> {
            value.parse().map_err(|_| CliError::BadValue {
                flag: flag.clone(),
                value: value.to_string(),
            })
        };
        let millis = |value: &str| -> Result<u64, CliError> {
            value.parse().map_err(|_| CliError::BadValue {
                flag: flag.clone(),
                value: value.to_string(),
            })
        };
        match flag.as_str() {
            "--shards" => {
                options.shards = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if options.shards.is_empty() {
                    return Err(CliError::BadValue { flag, value });
                }
            }
            "--addr" => options.addr = value,
            "--qubits" => options.qubits = count(&value)?,
            "--workers" => options.workers = count(&value)?,
            "--queue" => options.queue = count(&value)?,
            "--max-connections" => options.max_connections = count(&value)?,
            "--attempts" => options.attempts = count(&value)?.max(1),
            "--backoff-ms" => options.backoff_ms = millis(&value)?,
            "--connect-timeout-ms" => options.connect_timeout_ms = millis(&value)?,
            "--read-timeout-ms" => options.read_timeout_ms = millis(&value)?,
            "--vnodes" => options.vnodes = count(&value)?.max(1),
            "--data-base" => data_base = Some(value),
            "--from" => from = Some(count(&value)?),
            "--to" => to = Some(count(&value)?),
            _ => unreachable!("flag was checked against ROUTER_KNOWN_FLAGS"),
        }
    }
    if rebalance {
        return Ok(RouterCommand::Rebalance(RebalanceOptions {
            data_base: data_base.ok_or_else(|| CliError::MissingFlag("--data-base".into()))?,
            from: from.ok_or_else(|| CliError::MissingFlag("--from".into()))?,
            to: to.ok_or_else(|| CliError::MissingFlag("--to".into()))?,
            vnodes: options.vnodes,
        }));
    }
    if options.shards.is_empty() {
        return Err(CliError::MissingFlag("--shards".into()));
    }
    Ok(RouterCommand::Route(options))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, CliError> {
        parse_args(args.iter().map(|a| a.to_string()))
    }

    fn parse_router(args: &[&str]) -> Result<RouterCommand, CliError> {
        parse_router_args(args.iter().map(|a| a.to_string()))
    }

    #[test]
    fn router_needs_shards() {
        assert_eq!(
            parse_router(&[]),
            Err(CliError::MissingFlag("--shards".into()))
        );
        assert_eq!(
            parse_router(&["--shards", " , "]),
            Err(CliError::BadValue {
                flag: "--shards".into(),
                value: " , ".into(),
            })
        );
    }

    #[test]
    fn router_flags_parse_and_project() {
        let command = parse_router(&[
            "--shards=127.0.0.1:7001, 127.0.0.1:7002 ,127.0.0.1:7003",
            "--addr=0.0.0.0:0",
            "--qubits=3",
            "--attempts=5",
            "--backoff-ms=2",
            "--connect-timeout-ms=250",
            "--read-timeout-ms=9000",
            "--vnodes=32",
            "--workers=4",
        ])
        .expect("valid args");
        let RouterCommand::Route(options) = command else {
            panic!("expected route options, got {command:?}");
        };
        assert_eq!(
            options.shards,
            vec!["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]
        );
        assert_eq!(options.qubits, 3);
        let router = options.router_config();
        assert_eq!(router.attempts, 5);
        assert_eq!(router.backoff, std::time::Duration::from_millis(2));
        assert_eq!(router.read_timeout, std::time::Duration::from_millis(9000));
        assert_eq!(router.vnodes, 32);
        assert_eq!(options.server_config().workers, 4);
    }

    #[test]
    fn router_rejects_like_the_daemon() {
        assert_eq!(
            parse_router(&["--shard", "x"]),
            Err(CliError::UnknownFlag("--shard".into()))
        );
        assert_eq!(
            parse_router(&["--shards", "--addr"]),
            Err(CliError::FlagShapedValue {
                flag: "--shards".into(),
                value: "--addr".into(),
            })
        );
        assert_eq!(parse_router(&["-h"]), Ok(RouterCommand::Help));
    }

    #[test]
    fn rebalance_mode_requires_its_trio() {
        assert_eq!(
            parse_router(&["--rebalance", "--from=2", "--to=3"]),
            Err(CliError::MissingFlag("--data-base".into()))
        );
        assert_eq!(
            parse_router(&["--rebalance", "--data-base=/tmp/x", "--from=2", "--to=3"]),
            Ok(RouterCommand::Rebalance(RebalanceOptions {
                data_base: "/tmp/x".into(),
                from: 2,
                to: 3,
                vnodes: accqoc::DEFAULT_VNODES,
            }))
        );
    }

    fn options(args: &[&str]) -> DaemonOptions {
        match parse(args).expect("valid args") {
            Command::Serve(options) => options,
            Command::Help => panic!("expected options, got help"),
        }
    }

    #[test]
    fn empty_args_give_defaults() {
        assert_eq!(options(&[]), DaemonOptions::default());
    }

    #[test]
    fn every_flag_parses_in_both_spellings() {
        let spaced = options(&[
            "--addr",
            "0.0.0.0:0",
            "--qubits",
            "3",
            "--workers",
            "4",
            "--queue",
            "16",
            "--max-connections",
            "300",
            "--max-iters",
            "150",
            "--library-capacity",
            "8",
            "--data-dir",
            "/tmp/lib",
            "--snapshot-every",
            "5",
        ]);
        let inline = options(&[
            "--addr=0.0.0.0:0",
            "--qubits=3",
            "--workers=4",
            "--queue=16",
            "--max-connections=300",
            "--max-iters=150",
            "--library-capacity=8",
            "--data-dir=/tmp/lib",
            "--snapshot-every=5",
        ]);
        assert_eq!(spaced, inline);
        assert_eq!(spaced.addr, "0.0.0.0:0");
        assert_eq!(spaced.qubits, 3);
        assert_eq!(spaced.max_connections, 300);
        assert_eq!(spaced.library_capacity, Some(8));
        assert_eq!(spaced.data_dir.as_deref(), Some("/tmp/lib"));
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        assert_eq!(
            parse(&["--worker", "8"]),
            Err(CliError::UnknownFlag("--worker".into()))
        );
        assert_eq!(
            parse(&["--qubits", "3", "--frobnicate"]),
            Err(CliError::UnknownFlag("--frobnicate".into()))
        );
    }

    #[test]
    fn a_flag_never_consumes_a_following_flag_as_its_value() {
        // The motivating bug: `--addr --qubits` used to bind to the
        // literal address `--qubits`.
        assert_eq!(
            parse(&["--addr", "--qubits"]),
            Err(CliError::FlagShapedValue {
                flag: "--addr".into(),
                value: "--qubits".into(),
            })
        );
        // The `=` spelling is the explicit escape hatch.
        assert_eq!(options(&["--addr=--qubits"]).addr, "--qubits");
    }

    #[test]
    fn trailing_flags_and_bare_words_are_rejected() {
        assert_eq!(
            parse(&["--qubits"]),
            Err(CliError::MissingValue("--qubits".into()))
        );
        assert_eq!(
            parse(&["serve"]),
            Err(CliError::UnexpectedArgument("serve".into()))
        );
    }

    #[test]
    fn non_numeric_counts_are_rejected() {
        assert_eq!(
            parse(&["--qubits", "many"]),
            Err(CliError::BadValue {
                flag: "--qubits".into(),
                value: "many".into(),
            })
        );
        assert_eq!(
            parse(&["--queue=-1"]),
            Err(CliError::BadValue {
                flag: "--queue".into(),
                value: "-1".into(),
            })
        );
    }

    #[test]
    fn help_wins() {
        assert_eq!(parse(&["--help"]), Ok(Command::Help));
        assert_eq!(parse(&["-h"]), Ok(Command::Help));
        assert_eq!(parse(&["--qubits", "3", "--help"]), Ok(Command::Help));
    }

    #[test]
    fn server_config_projection_carries_the_caps() {
        let options = options(&["--workers=7", "--queue=9", "--max-connections=11"]);
        let config = options.server_config();
        assert_eq!(config.workers, 7);
        assert_eq!(config.queue_capacity, 9);
        assert_eq!(config.max_connections, 11);
    }
}
