//! `accqoc-server`: a multi-client pulse-serving daemon over the live
//! AccQOC pulse library.
//!
//! The paper's result is that pre-compilation plus similarity warm
//! starts make pulse generation cheap enough to keep up with compilation
//! demand; this crate is where that claim meets traffic. A [`Server`]
//! owns one shared [`accqoc::Session`] (and therefore one fingerprint-
//! indexed [`accqoc::PulseLibrary`]) and exposes it on a TCP socket
//! speaking two wire surfaces, auto-detected per connection:
//!
//! - the newline-delimited JSON line protocol ([`protocol`]) with seven
//!   methods: `serve_program`, `precompile`, `verify_program`, `stats`,
//!   `library`, `pulses`, and `shutdown`;
//! - HTTP/1.1 ([`http`]): `POST /serve`, `POST /precompile`,
//!   `POST /verify`, `GET /stats`, `GET /library` (limit/offset
//!   pagination), `POST /shutdown`, with `.json`/`.pretty` format
//!   suffixes for compact vs indented bodies.
//!
//! Everything is `std`-only (this workspace builds offline): the
//! transport is a non-blocking event loop over [`std::net::TcpListener`]
//! (one thread multiplexes every connection, so idle clients cost a
//! registry entry instead of an OS thread), the worker pool is the same
//! [`std::thread::scope`] pattern as `accqoc::compile_parallel_with`,
//! and the wire format reuses `accqoc::json`.
//!
//! Three properties define the daemon's behavior under load:
//!
//! - **admission control** — requests pass through a bounded queue
//!   ([`queue::BoundedQueue`]); when it is full the client gets a typed
//!   `busy` error immediately. The accept loop never blocks on the
//!   backlog.
//! - **in-flight coalescing** — two clients requesting the same unitary
//!   trigger one GRAPE run ([`inflight::InflightGroups`]): the second
//!   waits for the first's pulse to land in the library and serves it as
//!   a cache hit.
//! - **in-process fidelity** — responses carry the same
//!   [`accqoc::ServeReport`] / [`accqoc::LibraryStats`] counters as the
//!   in-process path, and served pulses are byte-identical to what
//!   [`accqoc::Session::serve_program`] produces (the `server` bench bin
//!   asserts this over loopback).
//!
//! The same event loop also hosts the sharded tier: [`router`] is a
//! [`server::CallHandler`] that partitions the library across N worker
//! daemons by a consistent-hash ring on group width, while speaking
//! both wire surfaces unchanged (see `ARCHITECTURE.md`, "Sharded
//! serving tier").
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use accqoc::Session;
//! use accqoc_hw::Topology;
//! use accqoc_server::{Client, Server, ServerConfig};
//!
//! let session = Arc::new(Session::builder().topology(Topology::linear(2)).build()?);
//! let server = Server::bind(session, "127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let circuit = accqoc_circuit::parse_qasm("qreg q[2]; h q[0]; cx q[0],q[1];")?;
//! let (report, _) = client.serve_program(&circuit, false).unwrap();
//! println!("latency {:.1} ns", report.overall_latency_ns);
//! client.shutdown().unwrap();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod http;
pub mod inflight;
pub mod protocol;
pub mod queue;
pub mod router;
pub mod server;

pub use client::{Client, ClientError};
pub use protocol::{
    Call, ErrorCode, LibraryEntryInfo, LibraryPage, Payload, PrecompileSummary, Request, Response,
    ServerCounters, StatsSnapshot, WireError,
};
pub use router::{RouterConfig, RouterHandler};
pub use server::{CallHandler, HandlerContext, Server, ServerConfig, SessionHandler};
