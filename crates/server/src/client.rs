//! A blocking client for the daemon's line protocol, used by the
//! bench/client bin, the integration tests, and scripts that prefer a
//! typed API over raw `nc` (the HTTP surface needs no client — `curl`
//! is one).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use accqoc::{PulseCache, ServeReport, VerifyReport};
use accqoc_circuit::{to_qasm, Circuit, UnitaryKey};

use crate::protocol::{
    Call, LibraryPage, Payload, PrecompileSummary, Request, Response, StatsSnapshot, WireError,
};

/// Why a call failed, from the client's point of view.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(std::io::Error),
    /// The daemon answered with a typed error (busy, malformed, compile
    /// failure, …).
    Remote(WireError),
    /// The daemon answered a request the client never made: the frame
    /// was readable but its id is ahead of every request sent on this
    /// connection. The connection itself stays usable — later calls
    /// keep their own correlation.
    MismatchedId {
        /// The id the pending call was waiting for.
        expected: u64,
        /// The id the daemon's frame carried.
        got: u64,
    },
    /// The daemon's frame was unreadable, or its payload did not match
    /// the method called.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "connection failed: {e}"),
            Self::Remote(e) => write!(f, "daemon refused: {e}"),
            Self::MismatchedId { expected, got } => write!(
                f,
                "response id {got} answers no pending request (expected {expected})"
            ),
            Self::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a running daemon. Calls are synchronous: each
/// method writes one request frame and blocks for the matching response.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        Self::wrap(writer)
    }

    /// [`Client::connect`] with bounds on how long the client waits —
    /// `connect_timeout` for the TCP handshake and `read_timeout` for
    /// each response read. Without them, a dead or wedged daemon blocks
    /// a call indefinitely (the OS keeps the socket open); with them,
    /// the call fails with [`ClientError::Io`] (`WouldBlock`/`TimedOut`)
    /// and the caller — e.g. the shard router — can retry or fail over.
    ///
    /// When `addr` resolves to several addresses, each is tried in turn
    /// with the full `connect_timeout`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures; resolution yielding no address is
    /// `InvalidInput`.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
        read_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let mut last_err = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, connect_timeout) {
                Ok(writer) => {
                    writer.set_read_timeout(read_timeout)?;
                    return Self::wrap(writer);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        }))
    }

    fn wrap(writer: TcpStream) -> std::io::Result<Self> {
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            writer,
            reader,
            next_id: 0,
        })
    }

    /// Sends one call and blocks for its payload.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] for typed daemon errors,
    /// [`ClientError::MismatchedId`] when the daemon answers an id the
    /// client never sent (the connection stays usable), and
    /// [`ClientError::Io`] / [`ClientError::Protocol`] for transport
    /// problems.
    pub fn call(&mut self, call: Call) -> Result<Payload, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let request = Request { id, call };
        self.writer.write_all(request.encode().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(ClientError::Protocol("daemon closed the connection".into()));
            }
            let response = Response::decode(line.trim_end()).map_err(ClientError::Protocol)?;
            if response.id == id {
                return response.body.map_err(ClientError::Remote);
            }
            // Id 0 failures are server-initiated refusals sent before any
            // request was read (e.g. the connection-limit `busy` frame) —
            // surface them typed, not as a correlation error.
            if response.id == 0 {
                if let Err(e) = response.body {
                    return Err(ClientError::Remote(e));
                }
            }
            if response.id < id {
                // A stale answer to an abandoned earlier call (its
                // waiter already errored out): drain it and keep
                // reading — the stream framing is intact.
                continue;
            }
            // An id from the future answers no request this client ever
            // sent: typed error; the next call reads past nothing.
            return Err(ClientError::MismatchedId {
                expected: id,
                got: response.id,
            });
        }
    }

    /// Serves a program; with `return_pulses` the daemon ships the
    /// resolved group pulses back as a [`PulseCache`] artifact.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn serve_program(
        &mut self,
        circuit: &Circuit,
        return_pulses: bool,
    ) -> Result<(ServeReport, Option<PulseCache>), ClientError> {
        let (report, pulses, _missing) = self.serve_program_full(circuit, return_pulses)?;
        Ok((report, pulses))
    }

    /// Like [`Client::serve_program`], but also surfaces the group keys
    /// whose pulses the daemon could not read back (a capacity-bounded
    /// library evicted them before the response was cut). Callers that
    /// persist or replay the returned cache must treat those groups as
    /// unresolved.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn serve_program_full(
        &mut self,
        circuit: &Circuit,
        return_pulses: bool,
    ) -> Result<(ServeReport, Option<PulseCache>, Vec<UnitaryKey>), ClientError> {
        self.serve_program_subset(circuit, return_pulses, None)
    }

    /// [`Client::serve_program_full`] restricted to the unique groups
    /// of the given widths — how the shard router asks a worker for
    /// exactly the groups it owns on the hash ring. `None` serves the
    /// whole program.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn serve_program_subset(
        &mut self,
        circuit: &Circuit,
        return_pulses: bool,
        only_qubits: Option<&[usize]>,
    ) -> Result<(ServeReport, Option<PulseCache>, Vec<UnitaryKey>), ClientError> {
        match self.call(Call::ServeProgram {
            qasm: to_qasm(circuit),
            return_pulses,
            only_qubits: only_qubits.map(<[usize]>::to_vec),
        })? {
            Payload::Serve {
                report,
                pulses,
                missing,
            } => Ok((report, pulses, missing)),
            other => Err(mismatch("serve_program", &other)),
        }
    }

    /// Batch pre-compiles a profiled program set into the daemon's
    /// library.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn precompile(&mut self, programs: &[Circuit]) -> Result<PrecompileSummary, ClientError> {
        self.precompile_subset(programs, None)
    }

    /// [`Client::precompile`] restricted to the unique groups of the
    /// given widths (see [`Client::serve_program_subset`]).
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn precompile_subset(
        &mut self,
        programs: &[Circuit],
        only_qubits: Option<&[usize]>,
    ) -> Result<PrecompileSummary, ClientError> {
        match self.call(Call::Precompile {
            programs: programs.iter().map(to_qasm).collect(),
            only_qubits: only_qubits.map(<[usize]>::to_vec),
        })? {
            Payload::Precompile(summary) => Ok(summary),
            other => Err(mismatch("precompile", &other)),
        }
    }

    /// Fetches pulse amplitudes for an explicit key set; the second
    /// element lists the requested keys the daemon no longer holds.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn pulses(
        &mut self,
        keys: &[UnitaryKey],
    ) -> Result<(PulseCache, Vec<UnitaryKey>), ClientError> {
        match self.call(Call::Pulses {
            keys: keys.to_vec(),
        })? {
            Payload::Pulses { pulses, missing } => Ok((pulses, missing)),
            other => Err(mismatch("pulses", &other)),
        }
    }

    /// Verifies a program against the daemon's library.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn verify_program(&mut self, circuit: &Circuit) -> Result<VerifyReport, ClientError> {
        match self.call(Call::VerifyProgram {
            qasm: to_qasm(circuit),
        })? {
            Payload::Verify(report) => Ok(report),
            other => Err(mismatch("verify_program", &other)),
        }
    }

    /// Fetches library + server counters.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(Call::Stats)? {
            Payload::Stats(snapshot) => Ok(snapshot),
            other => Err(mismatch("stats", &other)),
        }
    }

    /// Fetches one page of library-entry metadata, `limit` entries
    /// starting `offset` into key order.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn library(&mut self, limit: usize, offset: usize) -> Result<LibraryPage, ClientError> {
        match self.call(Call::Library { limit, offset })? {
            Payload::Library(page) => Ok(page),
            other => Err(mismatch("library", &other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(Call::Shutdown)? {
            Payload::Shutdown => Ok(()),
            other => Err(mismatch("shutdown", &other)),
        }
    }
}

fn mismatch(method: &str, got: &Payload) -> ClientError {
    ClientError::Protocol(format!("`{method}` answered with {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_timeout_bounds_a_call_against_a_silent_daemon() {
        // A listener that never accepts: the kernel backlog completes
        // the TCP handshake, so `connect` succeeds, but no response
        // will ever arrive. Without a read timeout `stats()` would
        // block forever — the latent gap the router cannot live with.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = Client::connect_with(
            addr,
            Duration::from_millis(500),
            Some(Duration::from_millis(50)),
        )
        .expect("handshake completes via the backlog");
        let started = std::time::Instant::now();
        let err = client.stats().expect_err("no daemon ever answers");
        let elapsed = started.elapsed();
        match err {
            ClientError::Io(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "expected a timeout kind, got {e:?}"
            ),
            other => panic!("expected ClientError::Io, got {other:?}"),
        }
        assert!(
            elapsed < Duration::from_secs(5),
            "timeout must bound the call, took {elapsed:?}"
        );
    }

    #[test]
    fn connect_with_rejects_empty_resolution() {
        let err = Client::connect_with(
            &[][..] as &[std::net::SocketAddr],
            Duration::from_millis(100),
            None,
        )
        .expect_err("nothing to connect to");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
