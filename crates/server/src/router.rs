//! The shard router: a front-end [`CallHandler`] that partitions the
//! pulse library across N worker daemons by a consistent-hash ring.
//!
//! A sharded deployment is N `accqoc-server` worker processes — each an
//! ordinary event-loop daemon owning its own durable store
//! (`--data-dir` per shard) — plus one router process built from this
//! module. The router speaks the *existing* wire surfaces unchanged
//! (legacy line-JSON and HTTP, via [`Server::bind_with_handler`](crate::Server::bind_with_handler)); a
//! client cannot tell a router from a single daemon except through
//! throughput.
//!
//! # Routing is by dimension class
//!
//! The ring ([`accqoc::ShardRing`]) keys on
//! [`ShardKey::dimension_class`] — a group's qubit width — not on the
//! group's unitary. This is what makes sharding *byte-transparent*:
//! warm-start retrieval never crosses widths
//! ([`accqoc::UnitaryFingerprint`] distance is infinite across widths),
//! so the width-w slice of the library evolves identically whether it
//! lives in one process or on shard `ring.route(w)`. Routing finer than
//! the width class (e.g. by fingerprint bucket) would sever warm-start
//! chains and change the served pulses; routing by width cannot.
//!
//! Per call:
//!
//! - `serve_program` — the router runs the (deterministic, cheap) front
//!   end itself, maps each unique group's width to its owner shard, and
//!   forwards the program to every involved shard with
//!   `only_qubits: [widths it owns]`. Shards compile/serve only their
//!   groups; the router merges the per-group results back into target
//!   order, folds the program-level latency with
//!   [`accqoc::Session::overall_latency_from`], and sums the counters —
//!   landing on the same bytes a single process reports.
//! - `precompile` — same fan-out; shard summaries sum exactly (group
//!   keys never collide across widths).
//! - `verify_program` — fetch the owned pulses from each shard
//!   (`pulses` method), import them into a fork of the router's local
//!   session, verify locally.
//! - `stats` / `library` — fan out to every shard; library counters and
//!   entry pages merge in stable key order.
//! - `shutdown` — drains the router, then forwards the shutdown to
//!   every shard (best effort): one `shutdown` drains the deployment.
//!
//! # Shard death
//!
//! Every forwarded call is bounded: connections are opened with a
//! connect timeout, reads carry a read timeout, and a failed call is
//! retried with exponential backoff ([`RouterConfig::attempts`],
//! [`RouterConfig::backoff`]). A shard that stays dead yields a typed
//! [`ErrorCode::ShardUnavailable`] (HTTP 503) — never a hang. The error
//! is retryable by the client: a worker restarted from its `--data-dir`
//! recovers its library slice and resumes serving exact hits.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use accqoc::{PulseCache, ServeReport, Session, ShardKey, ShardRing};
use accqoc_circuit::{parse_qasm, Circuit, UnitaryKey};

use crate::client::{Client, ClientError};
use crate::protocol::{
    Call, ErrorCode, LibraryEntryInfo, LibraryPage, Payload, PrecompileSummary, Response,
    StatsSnapshot, WireError, MAX_LIBRARY_LIMIT,
};
use crate::server::{CallHandler, HandlerContext};

/// Tunables of the router's forwarding path.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Attempts per forwarded call before giving up with
    /// `shard_unavailable` (≥ 1). Connection failures and broken
    /// streams are retried; a shard's *typed* error answer is final.
    pub attempts: usize,
    /// Backoff before the first retry; each further retry waits 5×
    /// longer (10ms, 50ms, 250ms, …).
    pub backoff: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Read timeout per response. Must comfortably exceed the longest
    /// GRAPE compile a serve can trigger.
    pub read_timeout: Duration,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: Duration::from_millis(10),
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(120),
            vnodes: accqoc::DEFAULT_VNODES,
        }
    }
}

/// One worker shard: its address and a cached connection. The mutex
/// serializes calls per shard — one connection per worker keeps the
/// daemon-side correlation trivial, and worker-side parallelism comes
/// from the workers' own pools, not from connection fan-out.
struct Shard {
    addr: String,
    client: Mutex<Option<Client>>,
}

/// The router's [`CallHandler`]: owns the ring, the shard connections,
/// and a local front-end [`Session`] (which never compiles — it groups
/// programs, folds latencies, and verifies fetched pulses).
pub struct RouterHandler {
    session: Arc<Session>,
    ring: ShardRing,
    shards: Vec<Shard>,
    config: RouterConfig,
}

impl RouterHandler {
    /// Builds a router over worker daemons at `shard_addrs`. The ring
    /// size is the address count; the order of addresses IS the shard
    /// numbering and must match the workers' `--data-dir` layout
    /// (`shard-0`, `shard-1`, …) for rebalancing to line up.
    ///
    /// `session` must be configured identically to the workers'
    /// sessions (same topology/grouping), or the router's front end
    /// would disagree with the shards' about group keys.
    pub fn new(session: Arc<Session>, shard_addrs: Vec<String>, config: RouterConfig) -> Self {
        let ring = ShardRing::with_vnodes(shard_addrs.len(), config.vnodes);
        let shards = shard_addrs
            .into_iter()
            .map(|addr| Shard {
                addr,
                client: Mutex::new(None),
            })
            .collect();
        Self {
            session,
            ring,
            shards,
            config,
        }
    }

    /// The ring, as built from the address list.
    pub fn ring(&self) -> &ShardRing {
        &self.ring
    }

    /// The shard that owns groups of `n_qubits` qubits.
    pub fn owner_of(&self, n_qubits: usize) -> usize {
        self.ring.route(ShardKey::dimension_class(n_qubits))
    }

    /// Runs one client operation against a shard, reconnecting and
    /// retrying with backoff on transport failures. A shard's typed
    /// error answer is returned as-is (no retry); a shard that cannot
    /// be reached within the budget yields `shard_unavailable`.
    ///
    /// Retried operations may execute twice on the shard; every
    /// forwarded call is idempotent (serving is a cache, stats are
    /// reads).
    fn with_shard<T>(
        &self,
        shard: usize,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, WireError> {
        let slot = &self.shards[shard];
        let mut last = String::from("no attempt made");
        for attempt in 0..self.config.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.config.backoff * 5u32.pow(attempt as u32 - 1));
            }
            let mut guard = slot.client.lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_none() {
                match Client::connect_with(
                    slot.addr.as_str(),
                    self.config.connect_timeout,
                    Some(self.config.read_timeout),
                ) {
                    Ok(client) => *guard = Some(client),
                    Err(e) => {
                        last = format!("connect: {e}");
                        continue;
                    }
                }
            }
            let client = guard.as_mut().expect("connected above");
            match op(client) {
                Ok(value) => return Ok(value),
                // A typed answer means the shard is alive and said no —
                // forward its verdict unchanged.
                Err(ClientError::Remote(e)) => return Err(e),
                Err(e) => {
                    // Transport trouble: the connection can no longer be
                    // trusted (a timed-out response may arrive later and
                    // misalign correlation). Drop it and retry fresh.
                    *guard = None;
                    last = e.to_string();
                }
            }
        }
        Err(WireError::new(
            ErrorCode::ShardUnavailable,
            format!(
                "shard {shard} ({}) unavailable after {} attempts: {last}",
                slot.addr,
                self.config.attempts.max(1)
            ),
        ))
    }

    /// Owner shard → the widths it owns, for the unique groups of
    /// `grouped` that pass the caller's own width filter.
    fn widths_by_owner(
        &self,
        grouped: &accqoc::GroupReport,
        only_qubits: Option<&[usize]>,
    ) -> std::collections::BTreeMap<usize, Vec<usize>> {
        let mut widths: Vec<usize> = grouped
            .targets
            .iter()
            .map(|t| t.n_qubits)
            .filter(|w| only_qubits.is_none_or(|allowed| allowed.contains(w)))
            .collect();
        widths.sort_unstable();
        widths.dedup();
        let mut by_owner: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for w in widths {
            by_owner.entry(self.owner_of(w)).or_default().push(w);
        }
        by_owner
    }

    fn serve(
        &self,
        qasm: &str,
        return_pulses: bool,
        only_qubits: Option<&[usize]>,
    ) -> Result<Payload, WireError> {
        let circuit = parse_circuit(qasm)?;
        let grouped = self.session.front_end(&circuit);
        let by_owner = self.widths_by_owner(&grouped, only_qubits);
        if by_owner.is_empty() {
            // Nothing owned anywhere (empty program, or a filter that
            // matches no group): the local session serves it exactly —
            // no group means no compile, so the empty library is fine.
            let report = self
                .session
                .serve_grouped_subset(&grouped, &accqoc::ServeOptions::default(), only_qubits)
                .map_err(compile_failure)?;
            return Ok(Payload::Serve {
                report,
                pulses: return_pulses.then(PulseCache::new),
                missing: Vec::new(),
            });
        }

        let mut merged: std::collections::HashMap<UnitaryKey, accqoc::ServedGroup> =
            std::collections::HashMap::new();
        let mut pulses = return_pulses.then(PulseCache::new);
        let mut missing: Vec<UnitaryKey> = Vec::new();
        let mut n_compiled = 0;
        let mut n_warm_started = 0;
        let mut dynamic_iterations = 0;
        let mut covered = 0;
        let mut total = 0;
        for (&shard, widths) in &by_owner {
            let (report, shard_pulses, shard_missing) = self.with_shard(shard, |client| {
                client.serve_program_subset(&circuit, return_pulses, Some(widths))
            })?;
            n_compiled += report.n_compiled;
            n_warm_started += report.n_warm_started;
            dynamic_iterations += report.dynamic_iterations;
            covered += report.coverage.covered;
            total += report.coverage.total;
            for group in report.groups {
                merged.insert(group.key.clone(), group);
            }
            if let (Some(cache), Some(shard_pulses)) = (pulses.as_mut(), shard_pulses) {
                cache.merge(shard_pulses);
            }
            missing.extend(shard_missing);
        }
        missing.sort();
        missing.dedup();

        // Re-emit the groups in target order — the order a single
        // process reports — and fold the program-level numbers the
        // shards cannot see.
        let owned = |w: usize| only_qubits.is_none_or(|allowed| allowed.contains(&w));
        let mut groups = Vec::new();
        for target in &grouped.targets {
            if !owned(target.n_qubits) {
                continue;
            }
            match merged.remove(&target.key) {
                Some(group) => groups.push(group),
                None => {
                    return Err(WireError::new(
                        ErrorCode::Internal,
                        format!(
                            "shard {} answered without group {}",
                            self.owner_of(target.n_qubits),
                            crate::protocol::hex_encode(target.key.as_bytes())
                        ),
                    ))
                }
            }
        }
        let (overall_latency_ns, gate_based_latency_ns) = if only_qubits.is_none() {
            let latency_of: std::collections::HashMap<&UnitaryKey, f64> =
                groups.iter().map(|g| (&g.key, g.latency_ns)).collect();
            let overall = self
                .session
                .overall_latency_from(&grouped, |k| latency_of.get(k).copied())
                .map_err(compile_failure)?;
            (overall, self.session.gate_based_latency(&grouped.processed))
        } else {
            // Subset semantics, exactly as a single daemon answers a
            // width-filtered request.
            (0.0, 0.0)
        };
        Ok(Payload::Serve {
            report: ServeReport {
                overall_latency_ns,
                gate_based_latency_ns,
                coverage: accqoc::CoverageStats { covered, total },
                groups,
                n_compiled,
                n_warm_started,
                dynamic_iterations,
            },
            pulses,
            missing,
        })
    }

    fn precompile(
        &self,
        programs: &[String],
        only_qubits: Option<&[usize]>,
    ) -> Result<Payload, WireError> {
        let mut circuits = Vec::with_capacity(programs.len());
        for qasm in programs {
            circuits.push(parse_circuit(qasm)?);
        }
        let mut by_owner: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for circuit in &circuits {
            let grouped = self.session.front_end(circuit);
            for (owner, widths) in self.widths_by_owner(&grouped, only_qubits) {
                let entry = by_owner.entry(owner).or_default();
                entry.extend(widths);
                entry.sort_unstable();
                entry.dedup();
            }
        }
        let mut summary = PrecompileSummary {
            n_programs: circuits.len(),
            n_unique_groups: 0,
            total_iterations: 0,
        };
        for (&shard, widths) in &by_owner {
            let shard_summary = self.with_shard(shard, |client| {
                client.precompile_subset(&circuits, Some(widths))
            })?;
            summary.n_unique_groups += shard_summary.n_unique_groups;
            summary.total_iterations += shard_summary.total_iterations;
        }
        Ok(Payload::Precompile(summary))
    }

    fn verify(&self, qasm: &str) -> Result<Payload, WireError> {
        let circuit = parse_circuit(qasm)?;
        let grouped = self.session.front_end(&circuit);
        // Fetch each shard's owned pulses, then verify locally against
        // the program's reference unitaries — the physics check runs in
        // one place, over exactly the bytes the shards serve.
        let mut fetched = PulseCache::new();
        for (&shard, widths) in &self.widths_by_owner(&grouped, None) {
            let keys: Vec<UnitaryKey> = grouped
                .targets
                .iter()
                .filter(|t| widths.contains(&t.n_qubits))
                .map(|t| t.key.clone())
                .collect();
            let (pulses, _missing) = self.with_shard(shard, |client| client.pulses(&keys))?;
            // Keys a shard no longer holds surface through the local
            // verify below exactly as a single daemon's missing entries
            // would.
            fetched.merge(pulses);
        }
        let fork = self.session.fork();
        fork.import_cache(fetched);
        fork.verify_program(&circuit)
            .map(Payload::Verify)
            .map_err(compile_failure)
    }

    fn stats(&self, ctx: &HandlerContext<'_>) -> Result<Payload, WireError> {
        let mut library = accqoc::LibraryStats::default();
        let mut library_len = 0;
        for shard in 0..self.shards.len() {
            let snapshot = self.with_shard(shard, Client::stats)?;
            library.hits += snapshot.library.hits;
            library.misses += snapshot.library.misses;
            library.warm_compiles += snapshot.library.warm_compiles;
            library.scratch_compiles += snapshot.library.scratch_compiles;
            library.warm_iterations += snapshot.library.warm_iterations;
            library.scratch_iterations += snapshot.library.scratch_iterations;
            library.evictions += snapshot.library.evictions;
            library_len += snapshot.library_len;
        }
        Ok(Payload::Stats(StatsSnapshot {
            library,
            server: ctx.server_counters(),
            library_len,
            queue_depth: ctx.queue_depth(),
        }))
    }

    fn library(&self, limit: usize, offset: usize) -> Result<Payload, WireError> {
        let mut entries: Vec<LibraryEntryInfo> = Vec::new();
        for shard in 0..self.shards.len() {
            let mut shard_offset = 0;
            loop {
                let page = self.with_shard(shard, |client| {
                    client.library(MAX_LIBRARY_LIMIT, shard_offset)
                })?;
                let n = page.entries.len();
                entries.extend(page.entries);
                shard_offset += n;
                if n == 0 || shard_offset >= page.total {
                    break;
                }
            }
        }
        // Hex keys sort exactly as the underlying bytes do, so the
        // merged page order matches a single daemon's.
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let total = entries.len();
        let page = entries.into_iter().skip(offset).take(limit).collect();
        Ok(Payload::Library(LibraryPage {
            total,
            offset,
            limit,
            entries: page,
        }))
    }

    fn pulses(&self, keys: &[UnitaryKey]) -> Result<Payload, WireError> {
        // A key alone does not reveal its width, so ownership cannot be
        // computed: ask every shard, keep what anyone holds.
        let mut found = PulseCache::new();
        for shard in 0..self.shards.len() {
            let (pulses, _missing) = self.with_shard(shard, |client| client.pulses(keys))?;
            found.merge(pulses);
        }
        let mut missing: Vec<UnitaryKey> = keys
            .iter()
            .filter(|k| !found.contains(k))
            .cloned()
            .collect();
        missing.sort();
        missing.dedup();
        Ok(Payload::Pulses {
            pulses: found,
            missing,
        })
    }
}

impl CallHandler for RouterHandler {
    fn handle(&self, id: u64, call: Call, ctx: &HandlerContext<'_>) -> Response {
        let body = match call {
            Call::ServeProgram {
                qasm,
                return_pulses,
                only_qubits,
            } => self.serve(&qasm, return_pulses, only_qubits.as_deref()),
            Call::Precompile {
                programs,
                only_qubits,
            } => self.precompile(&programs, only_qubits.as_deref()),
            Call::VerifyProgram { qasm } => self.verify(&qasm),
            Call::Stats => self.stats(ctx),
            Call::Library { limit, offset } => self.library(limit, offset),
            Call::Pulses { keys } => self.pulses(&keys),
            // The event loop answers shutdown inline; this arm exists
            // for completeness.
            Call::Shutdown => Ok(Payload::Shutdown),
        };
        Response { id, body }
    }

    fn on_shutdown(&self) {
        // One shutdown drains the deployment: forward to every shard,
        // best effort — a dead shard is already shut down.
        for shard in &self.shards {
            let mut guard = shard.client.lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_none() {
                *guard = Client::connect_with(
                    shard.addr.as_str(),
                    self.config.connect_timeout,
                    Some(self.config.connect_timeout),
                )
                .ok();
            }
            if let Some(client) = guard.as_mut() {
                client.shutdown().ok();
            }
            *guard = None;
        }
    }
}

fn parse_circuit(qasm: &str) -> Result<Circuit, WireError> {
    parse_qasm(qasm).map_err(|e| WireError::new(ErrorCode::Qasm, e.to_string()))
}

fn compile_failure(e: accqoc::Error) -> WireError {
    WireError::new(ErrorCode::Compile, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use accqoc_hw::Topology;

    fn front_session(qubits: usize) -> Arc<Session> {
        Arc::new(
            Session::builder()
                .topology(Topology::linear(qubits))
                .build()
                .expect("valid session"),
        )
    }

    fn router(shards: usize) -> RouterHandler {
        let addrs = (0..shards)
            .map(|i| format!("127.0.0.1:{}", 49152 + i))
            .collect();
        RouterHandler::new(front_session(3), addrs, RouterConfig::default())
    }

    #[test]
    fn ownership_follows_the_ring() {
        let r = router(3);
        for w in 1..=8 {
            assert_eq!(
                r.owner_of(w),
                r.ring().route(ShardKey::dimension_class(w)),
                "width {w}"
            );
        }
        // The pinned 3-shard layout the chaos tests rely on: width 1 on
        // shard 0, width 2 on shard 2.
        assert_eq!(r.owner_of(1), 0);
        assert_eq!(r.owner_of(2), 2);
    }

    #[test]
    fn dead_shards_yield_a_typed_error_within_the_retry_budget() {
        // A bound-but-never-served port: connects succeed (kernel
        // backlog) but no response ever comes. With tight timeouts the
        // router must answer shard_unavailable, not hang.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let config = RouterConfig {
            attempts: 2,
            backoff: Duration::from_millis(1),
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(100),
            ..RouterConfig::default()
        };
        let handler = RouterHandler::new(front_session(2), vec![addr], config);
        let started = std::time::Instant::now();
        let err = handler
            .with_shard(0, Client::stats)
            .expect_err("no daemon answers");
        assert_eq!(err.code, ErrorCode::ShardUnavailable);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "failure must be bounded, took {:?}",
            started.elapsed()
        );
    }
}
