//! The bounded admission queue between connection threads and the
//! worker pool.
//!
//! Admission control is the queue's whole job: [`BoundedQueue::try_push`]
//! never blocks — a full queue is an immediate [`EnqueueError::Full`],
//! which the connection thread turns into a typed `busy` response. Only
//! the *worker* side blocks ([`BoundedQueue::pop`] waits for work), so
//! the accept loop and every client connection stay responsive no matter
//! how deep the compile backlog is.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why an enqueue was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The queue is at capacity; the caller should reject the request
    /// with a retryable error.
    Full,
    /// The queue was closed for shutdown; no more work is admitted.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue with
/// non-blocking producers and blocking consumers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue admitting at most `capacity` pending items
    /// (capacity 0 refuses everything — useful to drain a daemon).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits an item without ever blocking.
    ///
    /// # Errors
    ///
    /// [`EnqueueError::Full`] at capacity, [`EnqueueError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), EnqueueError> {
        let mut state = self.lock();
        if state.closed {
            return Err(EnqueueError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(EnqueueError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained; `None` means the consumer should exit. Pending
    /// items are still handed out after close, so admitted requests are
    /// always answered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stops admission and wakes every blocked consumer. Already-queued
    /// items still drain through [`BoundedQueue::pop`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(EnqueueError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_zero_rejects_everything() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.try_push(1), Err(EnqueueError::Full));
    }

    #[test]
    fn close_drains_pending_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(EnqueueError::Closed));
        assert_eq!(q.pop(), Some(1), "admitted work still drains");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..50 {
            while q.try_push(i) == Err(EnqueueError::Full) {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 50);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO preserved");
    }
}
