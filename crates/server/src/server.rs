//! The daemon itself: a non-blocking event loop multiplexing every
//! connection on one thread, feeding a fixed worker pool.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ── event loop ── parse frame ── admit (bounded queue) ── worker
//!   (non-      │           (legacy line       │ full → busy         │
//!    blocking) │            or HTTP/1.1,      ▼                     ▼
//!              │            auto-detected) typed reject      coalesce (claim
//!              │                                             in-flight groups)
//!              ▼                                                   │
//!         write buffers  ◄──── completion mpsc ◄───── library resolve
//!         (ordered per connection)              (hit / warm / scratch)
//! ```
//!
//! One event-loop thread owns the listener and every socket
//! (`set_nonblocking` + a tick-polled registry — this workspace builds
//! offline and `std` exposes no `epoll`, so readiness is polled at
//! [`ServerConfig::poll_interval`] and worker completions double as
//! wake-ups). Each connection is a read/write state machine: partial
//! frames buffer until complete, responses buffer until the socket
//! accepts them, and per-connection sequence numbers keep pipelined
//! responses in request order even when workers finish out of order.
//! Idle connections therefore cost a registry entry, not an OS thread —
//! the thread budget is `1 + workers` regardless of connection count.
//!
//! The first bytes of a connection select its protocol: `{` (or any
//! non-HTTP first line) means the newline-delimited JSON line protocol,
//! an HTTP method verb means HTTP/1.1 ([`crate::http`]). Both surfaces
//! execute the same [`Call`]s through the same admission queue
//! ([`crate::queue::BoundedQueue`]) and in-flight coalescing
//! ([`InflightGroups`]); only the framing differs.
//!
//! Shutdown is graceful and needs no self-connect wake hack (the old
//! blocking accept loop had to `connect(local_addr)` to wake itself,
//! which broke when the daemon bound `0.0.0.0`): the event loop flips a
//! local flag, stops accepting, closes admission, and exits once every
//! pending response is flushed. Worker threads join when the queue
//! drains.

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use accqoc::{CachedPulse, PrecompileOrder, PulseCache, Session};
use accqoc_circuit::{parse_qasm, UnitaryKey};

use crate::http::{self, Format, HttpParse};
use crate::inflight::InflightGroups;
use crate::protocol::{
    hex_encode, Call, ErrorCode, LibraryEntryInfo, LibraryPage, Payload, PrecompileSummary,
    Request, Response, ServerCounters, StatsSnapshot,
};
use crate::queue::{BoundedQueue, EnqueueError};

/// Tunables of a [`Server`]. The defaults suit tests and small
/// deployments; production deployments mostly raise `workers` and
/// `queue_capacity` together.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads compiling/serving admitted requests (≥ 1).
    pub workers: usize,
    /// Admission-queue capacity: requests pending beyond the workers'
    /// in-flight set. A full queue rejects with a typed `busy` error —
    /// it never blocks the event loop.
    pub queue_capacity: usize,
    /// Concurrent client connections; further connects receive a `busy`
    /// error frame and are closed immediately.
    pub max_connections: usize,
    /// Request-frame size cap in bytes: one legacy line, or one HTTP
    /// header block / body. A bigger frame gets a typed `oversized`
    /// error and the connection is closed (framing cannot be trusted
    /// past an unbounded frame).
    pub max_line_bytes: usize,
    /// The event loop's idle tick: how long it sleeps when no socket has
    /// data and no worker has completed. Worker completions wake the
    /// loop immediately regardless, so this bounds only the latency of
    /// *new* bytes being noticed.
    pub poll_interval: Duration,
    /// Write-progress timeout per connection. A client that stops
    /// reading (TCP backpressure on a large pulse payload) gets its
    /// connection dropped after this long without accepting a byte,
    /// instead of pinning its buffered responses — and graceful
    /// shutdown — forever.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_connections: 1024,
            max_line_bytes: 4 << 20,
            poll_interval: Duration::from_millis(1),
            write_timeout: Duration::from_secs(30),
        }
    }
}

#[derive(Debug, Default)]
struct CounterCells {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_served: AtomicU64,
    requests_rejected_busy: AtomicU64,
    protocol_errors: AtomicU64,
    coalesced_waits: AtomicU64,
}

impl CounterCells {
    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_rejected_busy: self.requests_rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
        }
    }

    fn bump(&self, cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a response must be framed back to its connection.
#[derive(Debug, Clone, Copy)]
enum RenderMode {
    /// One compact-JSON line, `\n`-terminated.
    Legacy,
    /// A full HTTP/1.1 response with the negotiated body format.
    Http { format: Format, keep_alive: bool },
}

fn render_response(response: &Response, mode: RenderMode) -> Vec<u8> {
    match mode {
        RenderMode::Legacy => {
            let mut bytes = response.encode().into_bytes();
            bytes.push(b'\n');
            bytes
        }
        RenderMode::Http { format, keep_alive } => match &response.body {
            Ok(payload) => http::render_success(payload, format, keep_alive),
            Err(error) => http::render_error(error, format, keep_alive),
        },
    }
}

/// A request admitted to the worker queue.
struct Job {
    /// The connection the response belongs to.
    token: u64,
    /// Position in that connection's response order.
    seq: u64,
    /// Legacy correlation id (0 for HTTP requests, which correlate by
    /// order alone).
    id: u64,
    call: Call,
    mode: RenderMode,
}

/// A finished job: rendered bytes ready to slot into the connection's
/// ordered write stream.
struct Completion {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// Which protocol a connection speaks, decided by its first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Nothing conclusive read yet.
    Detect,
    /// Newline-delimited JSON frames.
    Legacy,
    /// HTTP/1.1.
    Http,
}

/// One connection's read/write state machine.
struct Conn {
    stream: TcpStream,
    mode: Mode,
    read_buf: Vec<u8>,
    /// Buffered response bytes not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// Next sequence number to assign to an incoming request.
    next_seq: u64,
    /// Next sequence number to move into `write_buf` (responses deliver
    /// strictly in request order, whatever order workers finish in).
    next_flush: u64,
    /// Completed responses waiting for their turn in the order.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Requests dispatched to the worker pool, not yet completed.
    pending: usize,
    /// No more input will be consumed (EOF, framing violation, or
    /// `Connection: close`).
    reads_closed: bool,
    /// Drop the connection once everything pending has been flushed.
    close_when_flushed: bool,
    /// The peer hung up.
    eof: bool,
    /// Last instant the socket accepted bytes (write-stall detection).
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            mode: Mode::Detect,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            next_seq: 0,
            next_flush: 0,
            ready: BTreeMap::new(),
            pending: 0,
            reads_closed: false,
            close_when_flushed: false,
            eof: false,
            last_progress: Instant::now(),
        }
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Queues an already-rendered response at the next sequence slot
    /// (the inline-handled path: protocol errors, busy rejections,
    /// shutdown acks).
    fn push_inline(&mut self, bytes: Vec<u8>) {
        let seq = self.alloc_seq();
        self.ready.insert(seq, bytes);
    }

    /// Stops consuming input and marks the connection for close once
    /// everything already in flight has been answered and flushed.
    fn finish_reads(&mut self) {
        self.reads_closed = true;
        self.close_when_flushed = true;
    }

    /// Pulls whatever is readable off the socket into `read_buf`.
    fn fill_read_buf(&mut self) {
        let mut chunk = [0u8; 8192];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return;
                }
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock => return,
                    std::io::ErrorKind::Interrupted => continue,
                    // Reset/abort mid-stream is a disconnect.
                    _ => {
                        self.eof = true;
                        return;
                    }
                },
            }
        }
    }

    /// Moves in-order completed responses into the write buffer.
    fn promote_ready(&mut self) {
        while let Some(bytes) = self.ready.remove(&self.next_flush) {
            self.write_buf.extend_from_slice(&bytes);
            self.next_flush += 1;
        }
    }

    /// Writes as much buffered output as the socket accepts. Returns
    /// `false` when the connection must be dropped (broken pipe, write
    /// stall past the timeout, or an ordered close point reached).
    fn flush(&mut self, write_timeout: Duration) -> bool {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.written += n;
                    self.last_progress = Instant::now();
                }
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock => {
                        // Backpressure: give up the tick, but not forever.
                        return self.last_progress.elapsed() <= write_timeout;
                    }
                    std::io::ErrorKind::Interrupted => continue,
                    _ => return false,
                },
            }
        }
        self.write_buf.clear();
        self.written = 0;
        let fully_answered = self.pending == 0 && self.ready.is_empty();
        if fully_answered && (self.close_when_flushed || self.eof) {
            return false;
        }
        true
    }

    /// `true` when nothing is owed to this connection.
    fn is_drained(&self) -> bool {
        self.pending == 0 && self.ready.is_empty() && self.written >= self.write_buf.len()
    }
}

/// What the server lends a handler for one call: live server-counter
/// access (for `stats` snapshots and coalesced-wait accounting) and the
/// admission queue's depth at pickup time.
pub struct HandlerContext<'a> {
    counters: &'a CounterCells,
    queue_depth: usize,
}

impl HandlerContext<'_> {
    /// The server's own counters, including the request being handled.
    pub fn server_counters(&self) -> ServerCounters {
        self.counters.snapshot()
    }

    /// Requests queued for admission when this call was picked up.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Records that this call waited on another request's in-flight
    /// compile instead of duplicating it.
    pub fn note_coalesced_wait(&self) {
        self.counters.bump(&self.counters.coalesced_waits);
    }
}

/// What a [`Server`] serves: both wire surfaces (legacy line-JSON and
/// HTTP) parse into the same [`Call`]s, and every admitted call lands
/// here on a worker thread. [`SessionHandler`] — the default — executes
/// calls against one local [`Session`]; the shard router implements the
/// same trait by forwarding to worker daemons instead, so both speak
/// identical wire surfaces.
pub trait CallHandler: Sync {
    /// Executes one admitted call. `id` is the legacy correlation id to
    /// echo (0 on the HTTP surface).
    fn handle(&self, id: u64, call: Call, ctx: &HandlerContext<'_>) -> Response;

    /// Called once, from the event loop, when a `shutdown` request
    /// starts the drain — after the shutdown response is queued and
    /// admission is closed. A router uses this to forward the shutdown
    /// to its worker shards; the default does nothing.
    fn on_shutdown(&self) {}
}

/// The default [`CallHandler`]: executes calls against one shared local
/// [`Session`], with in-flight group coalescing across workers.
pub struct SessionHandler {
    session: Arc<Session>,
    inflight: InflightGroups,
}

impl SessionHandler {
    /// Wraps a session for serving.
    pub fn new(session: Arc<Session>) -> Self {
        Self {
            session,
            inflight: InflightGroups::new(),
        }
    }

    /// The wrapped session.
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }
}

impl CallHandler for SessionHandler {
    fn handle(&self, id: u64, call: Call, ctx: &HandlerContext<'_>) -> Response {
        handle_call(id, call, &self.session, &self.inflight, ctx)
    }
}

/// The pulse-serving daemon: a TCP listener over a [`CallHandler`] —
/// by default a [`SessionHandler`] over one shared [`Session`]/pulse
/// library.
///
/// Built with [`Server::bind`] (so the OS-assigned port is known before
/// [`Server::run`] blocks), it serves until a client sends the
/// `shutdown` method (or `POST /shutdown`).
pub struct Server<H: CallHandler = SessionHandler> {
    handler: Arc<H>,
    listener: TcpListener,
    config: ServerConfig,
    local_addr: SocketAddr,
}

impl<H: CallHandler> std::fmt::Debug for Server<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server<SessionHandler> {
    /// Binds the listener. The session is shared — the caller can keep a
    /// clone of the [`Arc`] and watch
    /// [`Session::library`](accqoc::Session::library) stats while the
    /// daemon serves.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        Server::bind_with_handler(Arc::new(SessionHandler::new(session)), addr, config)
    }
}

impl<H: CallHandler> Server<H> {
    /// Binds the listener over an arbitrary [`CallHandler`] — the shard
    /// router's entry point. Both wire surfaces, admission, and
    /// connection handling behave exactly as with [`Server::bind`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind_with_handler(
        handler: Arc<H>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            handler,
            listener,
            config,
            local_addr,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and
    /// returns the final counters. All worker threads are joined before
    /// this returns.
    ///
    /// # Errors
    ///
    /// Propagates listener failures that make accepting impossible.
    pub fn run(&self) -> std::io::Result<ServerCounters> {
        self.listener.set_nonblocking(true)?;
        let workers = self.config.workers.max(1);
        let queue: BoundedQueue<Job> = BoundedQueue::new(self.config.queue_capacity);
        let counters = CounterCells::default();
        let handler: &H = &self.handler;
        let (done_tx, done_rx) = mpsc::channel::<Completion>();

        std::thread::scope(|scope| -> std::io::Result<()> {
            let queue = &queue;
            let counters = &counters;
            for _ in 0..workers {
                let done = done_tx.clone();
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        // Counted at pickup so a request's own `stats`
                        // snapshot includes itself.
                        counters.bump(&counters.requests_served);
                        let ctx = HandlerContext {
                            counters,
                            queue_depth: queue.len(),
                        };
                        let response = handler.handle(job.id, job.call, &ctx);
                        let bytes = render_response(&response, job.mode);
                        // A vanished client is not a daemon problem.
                        done.send(Completion {
                            token: job.token,
                            seq: job.seq,
                            bytes,
                        })
                        .ok();
                    }
                });
            }

            // Workers hold the only senders now: the receiver reports
            // Disconnected exactly when the whole pool has exited.
            drop(done_tx);
            let on_shutdown = || handler.on_shutdown();
            let mut event_loop = EventLoop {
                listener: &self.listener,
                config: &self.config,
                queue,
                counters,
                done_rx,
                conns: HashMap::new(),
                next_token: 0,
                draining: false,
                on_shutdown: &on_shutdown,
            };
            let result = event_loop.run();
            // Whatever happened, release the workers so the scope joins.
            queue.close();
            result
        })?;
        Ok(counters.snapshot())
    }
}

/// The single-threaded reactor: accepts, reads, frames, dispatches, and
/// flushes every connection.
struct EventLoop<'a> {
    listener: &'a TcpListener,
    config: &'a ServerConfig,
    queue: &'a BoundedQueue<Job>,
    counters: &'a CounterCells,
    done_rx: mpsc::Receiver<Completion>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    /// The handler's shutdown hook, fired once when draining starts.
    on_shutdown: &'a dyn Fn(),
}

impl EventLoop<'_> {
    fn run(&mut self) -> std::io::Result<()> {
        loop {
            while let Ok(done) = self.done_rx.try_recv() {
                self.complete(done);
            }
            if !self.draining {
                self.accept_ready()?;
            }
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for token in tokens {
                if let Some(mut conn) = self.conns.remove(&token) {
                    if self.service(token, &mut conn) {
                        self.conns.insert(token, conn);
                    }
                }
            }
            if self.draining && self.conns.values().all(Conn::is_drained) {
                return Ok(());
            }
            // Sleep until the next worker completion or the idle tick,
            // whichever comes first — completions are the common wake.
            match self.done_rx.recv_timeout(self.config.poll_interval) {
                Ok(done) => self.complete(done),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Workers only exit once the queue closes; if they
                    // are gone outside a drain, the pool died under us.
                    if self.draining {
                        return Ok(());
                    }
                    return Err(std::io::Error::other("worker pool exited unexpectedly"));
                }
            }
        }
    }

    /// Slots a finished job's bytes into its connection's order (the
    /// connection may have dropped meanwhile — then the work is moot).
    fn complete(&mut self, done: Completion) {
        if let Some(conn) = self.conns.get_mut(&done.token) {
            conn.pending -= 1;
            conn.ready.insert(done.seq, done.bytes);
        }
    }

    /// Accepts every connection the backlog holds right now.
    fn accept_ready(&mut self) -> std::io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.config.max_connections {
                        // Refused, therefore never accepted: only the
                        // rejection counter moves.
                        self.counters.bump(&self.counters.connections_rejected);
                        refuse(stream, self.config);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    self.counters.bump(&self.counters.connections_accepted);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::ConnectionAborted
                            | std::io::ErrorKind::ConnectionReset
                    ) =>
                {
                    // A peer that vanished mid-handshake is not a
                    // listener failure.
                    continue;
                }
                // Fatal listener failure: propagate; the caller drains.
                Err(e) => return Err(e),
            }
        }
    }

    /// One full service pass over a connection: read, frame, dispatch,
    /// and flush. Returns `false` when the connection is done.
    fn service(&mut self, token: u64, conn: &mut Conn) -> bool {
        if !conn.reads_closed {
            conn.fill_read_buf();
            self.process_input(token, conn);
        }
        conn.promote_ready();
        conn.flush(self.config.write_timeout)
    }

    /// Consumes as many complete frames as `read_buf` holds.
    fn process_input(&mut self, token: u64, conn: &mut Conn) {
        loop {
            if conn.reads_closed {
                return;
            }
            let more = match conn.mode {
                Mode::Detect => self.detect_protocol(conn),
                Mode::Legacy => self.process_legacy(token, conn),
                Mode::Http => self.process_http(token, conn),
            };
            if !more {
                return;
            }
        }
    }

    /// Decides the connection's protocol from its first bytes. Returns
    /// `true` when a mode was selected and input processing should
    /// continue.
    fn detect_protocol(&mut self, conn: &mut Conn) -> bool {
        // Blank lines before the first frame are tolerated on both
        // surfaces.
        let skip = conn
            .read_buf
            .iter()
            .take_while(|&&b| b == b'\r' || b == b'\n')
            .count();
        if skip > 0 {
            conn.read_buf.drain(..skip);
        }
        if conn.read_buf.is_empty() {
            if conn.eof {
                conn.finish_reads();
            }
            return false;
        }
        if conn.read_buf[0] == b'{' {
            conn.mode = Mode::Legacy;
            return true;
        }
        if http::looks_like_http(&conn.read_buf) {
            conn.mode = Mode::Http;
            return true;
        }
        if conn.read_buf.contains(&b'\n') {
            // A complete first line that is neither JSON nor HTTP: let
            // the legacy decoder answer it with a typed malformed_json,
            // exactly as the line-protocol daemon always has.
            conn.mode = Mode::Legacy;
            return true;
        }
        if conn.read_buf.len() > self.config.max_line_bytes {
            self.legacy_violation(
                conn,
                ErrorCode::Oversized,
                format!("request line exceeds {} bytes", self.config.max_line_bytes),
            );
            return false;
        }
        if conn.eof {
            // Truncated garbage, then gone.
            self.counters.bump(&self.counters.protocol_errors);
            conn.finish_reads();
        }
        false
    }

    /// Frames and dispatches one legacy line, if complete. Returns
    /// `true` when another frame may follow immediately.
    fn process_legacy(&mut self, token: u64, conn: &mut Conn) -> bool {
        let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            if conn.read_buf.len() > self.config.max_line_bytes {
                self.legacy_violation(
                    conn,
                    ErrorCode::Oversized,
                    format!("request line exceeds {} bytes", self.config.max_line_bytes),
                );
            } else if conn.eof {
                if !conn.read_buf.is_empty() {
                    // The client died mid-request. The daemon just
                    // notes it and moves on.
                    self.counters.bump(&self.counters.protocol_errors);
                }
                conn.finish_reads();
            }
            return false;
        };
        if pos > self.config.max_line_bytes {
            self.legacy_violation(
                conn,
                ErrorCode::Oversized,
                format!("request line exceeds {} bytes", self.config.max_line_bytes),
            );
            return false;
        }
        let mut line: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        line.pop();
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        let line = String::from_utf8_lossy(&line).into_owned();
        if line.trim().is_empty() {
            return true;
        }
        match Request::decode(&line) {
            Ok(request) => self.dispatch(token, conn, request.id, request.call, RenderMode::Legacy),
            Err(decode) => {
                // Malformed frame: typed error, connection stays usable.
                self.counters.bump(&self.counters.protocol_errors);
                let response = Response {
                    id: decode.id,
                    body: Err(decode.error),
                };
                conn.push_inline(render_response(&response, RenderMode::Legacy));
            }
        }
        true
    }

    /// Parses and dispatches one HTTP request, if complete. Returns
    /// `true` when a pipelined follow-up may be parsed immediately.
    fn process_http(&mut self, token: u64, conn: &mut Conn) -> bool {
        let parsed = http::parse_request(
            &conn.read_buf,
            self.config.max_line_bytes,
            self.config.max_line_bytes,
        );
        match parsed {
            HttpParse::Incomplete => {
                if conn.eof {
                    if !conn.read_buf.is_empty() {
                        self.counters.bump(&self.counters.protocol_errors);
                    }
                    conn.finish_reads();
                }
                false
            }
            HttpParse::Violation(error) => {
                // Framing cannot be trusted past the violation: answer
                // and close.
                self.counters.bump(&self.counters.protocol_errors);
                conn.push_inline(http::render_error(&error, Format::Compact, false));
                conn.read_buf.clear();
                conn.finish_reads();
                false
            }
            HttpParse::Request(request, consumed) => {
                conn.read_buf.drain(..consumed);
                let keep_alive = request.keep_alive;
                match http::route(&request) {
                    Ok((call, format)) => self.dispatch(
                        token,
                        conn,
                        0,
                        call,
                        RenderMode::Http { format, keep_alive },
                    ),
                    Err(error) => {
                        // Routing errors (404/405/bad body) keep the
                        // connection: the stream framing is intact.
                        self.counters.bump(&self.counters.protocol_errors);
                        conn.push_inline(http::render_error(&error, Format::Compact, keep_alive));
                    }
                }
                if keep_alive {
                    true
                } else {
                    conn.finish_reads();
                    false
                }
            }
        }
    }

    /// Answers a framing violation on the legacy surface and closes.
    fn legacy_violation(&mut self, conn: &mut Conn, code: ErrorCode, message: String) {
        self.counters.bump(&self.counters.protocol_errors);
        let response = Response::failure(0, code, message);
        conn.push_inline(render_response(&response, RenderMode::Legacy));
        conn.read_buf.clear();
        conn.finish_reads();
    }

    /// Routes one parsed call: shutdown inline (it must work even with a
    /// saturated queue), everything else through admission.
    fn dispatch(&mut self, token: u64, conn: &mut Conn, id: u64, call: Call, mode: RenderMode) {
        let seq = conn.alloc_seq();
        if matches!(call, Call::Shutdown) {
            let response = Response {
                id,
                body: Ok(Payload::Shutdown),
            };
            conn.ready.insert(seq, render_response(&response, mode));
            // Stop accepting, refuse new work, drain what is in flight.
            let first_shutdown = !self.draining;
            self.draining = true;
            self.queue.close();
            if first_shutdown {
                (self.on_shutdown)();
            }
            return;
        }
        let job = Job {
            token,
            seq,
            id,
            call,
            mode,
        };
        match self.queue.try_push(job) {
            Ok(()) => conn.pending += 1,
            Err(EnqueueError::Full) => {
                self.counters.bump(&self.counters.requests_rejected_busy);
                let response = Response::failure(
                    id,
                    ErrorCode::Busy,
                    format!(
                        "admission queue full ({} pending)",
                        self.config.queue_capacity
                    ),
                );
                conn.ready.insert(seq, render_response(&response, mode));
            }
            Err(EnqueueError::Closed) => {
                let response = Response::failure(id, ErrorCode::ShuttingDown, "daemon is draining");
                conn.ready.insert(seq, render_response(&response, mode));
            }
        }
    }
}

/// Writes the connection-limit refusal on a socket that was never
/// admitted. The frame is tiny (fits any socket buffer), but the write
/// timeout keeps a pathological peer from stalling the event loop.
fn refuse(mut stream: TcpStream, config: &ServerConfig) {
    stream.set_nonblocking(false).ok();
    stream.set_write_timeout(Some(config.write_timeout)).ok();
    let refusal = Response::failure(
        0,
        ErrorCode::Busy,
        format!("connection limit reached ({})", config.max_connections),
    );
    let mut line = refusal.encode().into_bytes();
    line.push(b'\n');
    stream.write_all(&line).ok();
}

/// Executes one admitted call against the shared session.
fn handle_call(
    id: u64,
    call: Call,
    session: &Session,
    inflight: &InflightGroups,
    ctx: &HandlerContext<'_>,
) -> Response {
    let compile_failure =
        |e: accqoc::Error| Response::failure(id, ErrorCode::Compile, e.to_string());
    match call {
        Call::ServeProgram {
            qasm,
            return_pulses,
            only_qubits,
        } => {
            let circuit = match parse_qasm(&qasm) {
                Ok(c) => c,
                Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
            };
            // Coalesce with other in-flight compiles of the same groups:
            // claim what the library still misses; waiting here means
            // another worker is compiling a shared group right now, and
            // it will resolve as a hit once published. The front end
            // runs once — the serve reuses the same GroupReport. In
            // router mode only the owned groups are claimed (the rest
            // belong to other shards and are never compiled here).
            let grouped = session.front_end(&circuit);
            let owned = |n_qubits: usize| {
                only_qubits
                    .as_deref()
                    .is_none_or(|widths| widths.contains(&n_qubits))
            };
            let keys: Vec<_> = grouped
                .targets
                .iter()
                .filter(|t| owned(t.n_qubits))
                .map(|t| t.key.clone())
                .collect();
            let claim = inflight.claim(&keys, |k| !session.cache_contains(k));
            if claim.waited() {
                ctx.note_coalesced_wait();
            }
            let report = match session.serve_grouped_subset(
                &grouped,
                &accqoc::ServeOptions::default(),
                only_qubits.as_deref(),
            ) {
                Ok(report) => report,
                Err(e) => return compile_failure(e),
            };
            // Read the group pulses back while naming what a
            // capacity-bounded library already evicted — a silently
            // short cache would let the client mistake "evicted" for
            // "never existed".
            let (pulses, missing) = if return_pulses {
                let mut cache = PulseCache::new();
                let mut missing = Vec::new();
                for group in &report.groups {
                    match session.cached(&group.key) {
                        Some(entry) => {
                            cache.insert(group.key.clone(), entry);
                        }
                        None => missing.push(group.key.clone()),
                    }
                }
                missing.sort();
                missing.dedup();
                (Some(cache), missing)
            } else {
                (None, Vec::new())
            };
            Response {
                id,
                body: Ok(Payload::Serve {
                    report,
                    pulses,
                    missing,
                }),
            }
        }
        Call::Precompile {
            programs,
            only_qubits,
        } => {
            let mut circuits = Vec::with_capacity(programs.len());
            for qasm in &programs {
                match parse_qasm(qasm) {
                    Ok(c) => circuits.push(c),
                    Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
                }
            }
            // Precompile coalesces too: claim the union of the batch's
            // (owned) group keys so a concurrent serve (or second
            // precompile) of an overlapping group waits instead of
            // duplicating GRAPE.
            let owned = |n_qubits: usize| {
                only_qubits
                    .as_deref()
                    .is_none_or(|widths| widths.contains(&n_qubits))
            };
            let mut keys: Vec<_> = circuits
                .iter()
                .flat_map(|c| {
                    session
                        .front_end(c)
                        .targets
                        .into_iter()
                        .filter(|t| owned(t.n_qubits))
                        .map(|t| t.key)
                        .collect::<Vec<_>>()
                })
                .collect();
            keys.sort();
            keys.dedup();
            let claim = inflight.claim(&keys, |k| !session.cache_contains(k));
            if claim.waited() {
                ctx.note_coalesced_wait();
            }
            match session.precompile_subset(&circuits, PrecompileOrder::Mst, only_qubits.as_deref())
            {
                Ok(report) => Response {
                    id,
                    body: Ok(Payload::Precompile(PrecompileSummary {
                        n_programs: report.n_programs,
                        n_unique_groups: report.n_unique_groups,
                        total_iterations: report.total_iterations,
                    })),
                },
                Err(e) => compile_failure(e),
            }
        }
        Call::VerifyProgram { qasm } => {
            let circuit = match parse_qasm(&qasm) {
                Ok(c) => c,
                Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
            };
            match session.verify_program(&circuit) {
                Ok(report) => Response {
                    id,
                    body: Ok(Payload::Verify(report)),
                },
                Err(e) => compile_failure(e),
            }
        }
        Call::Stats => Response {
            id,
            body: Ok(Payload::Stats(StatsSnapshot {
                library: session.library().stats(),
                server: ctx.server_counters(),
                library_len: session.cache_len(),
                queue_depth: ctx.queue_depth(),
            })),
        },
        Call::Pulses { keys } => {
            let mut pulses = PulseCache::new();
            let mut missing = Vec::new();
            for key in keys {
                match session.cached(&key) {
                    Some(entry) => {
                        pulses.insert(key, entry);
                    }
                    None => missing.push(key),
                }
            }
            missing.sort();
            missing.dedup();
            Response {
                id,
                body: Ok(Payload::Pulses { pulses, missing }),
            }
        }
        Call::Library { limit, offset } => {
            let snapshot = session.cache_snapshot();
            let total = snapshot.len();
            let mut entries: Vec<(&UnitaryKey, &CachedPulse)> = snapshot.iter().collect();
            // The backing store is unordered; sort so pagination is
            // stable across pages cut from the same snapshot.
            entries.sort_by(|a, b| a.0.cmp(b.0));
            let page = entries
                .into_iter()
                .skip(offset)
                .take(limit)
                .map(|(key, cached)| LibraryEntryInfo {
                    key: hex_encode(key.as_bytes()),
                    n_qubits: cached.n_qubits,
                    latency_ns: cached.latency_ns,
                    iterations: cached.iterations,
                    n_steps: cached.pulse.n_steps(),
                })
                .collect();
            Response {
                id,
                body: Ok(Payload::Library(LibraryPage {
                    total,
                    offset,
                    limit,
                    entries: page,
                })),
            }
        }
        // Shutdown never reaches the pool (the event loop handles it
        // inline), but answer sanely if a future refactor routes it
        // here.
        Call::Shutdown => Response {
            id,
            body: Ok(Payload::Shutdown),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_rendering_is_one_terminated_line() {
        let response = Response::failure(3, ErrorCode::Busy, "full");
        let bytes = render_response(&response, RenderMode::Legacy);
        assert_eq!(bytes.last(), Some(&b'\n'));
        let line = std::str::from_utf8(&bytes[..bytes.len() - 1]).unwrap();
        assert!(!line.contains('\n'), "one frame per line");
        assert_eq!(Response::decode(line).unwrap(), response);
    }

    #[test]
    fn http_rendering_maps_errors_to_statuses() {
        let response = Response::failure(0, ErrorCode::Busy, "full");
        let bytes = render_response(
            &response,
            RenderMode::Http {
                format: Format::Compact,
                keep_alive: true,
            },
        );
        assert!(bytes.starts_with(b"HTTP/1.1 503 "));
    }

    #[test]
    fn conn_delivers_responses_in_request_order() {
        // A socket is irrelevant here; use a loopback pair purely as a
        // valid stream handle.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut conn = Conn::new(stream);
        let a = conn.alloc_seq();
        let b = conn.alloc_seq();
        let c = conn.alloc_seq();
        // Completions land out of order…
        conn.ready.insert(c, b"C".to_vec());
        conn.promote_ready();
        assert!(conn.write_buf.is_empty(), "seq 2 must wait for 0 and 1");
        conn.ready.insert(a, b"A".to_vec());
        conn.ready.insert(b, b"B".to_vec());
        conn.promote_ready();
        // …but flush in request order.
        assert_eq!(conn.write_buf, b"ABC");
    }
}
