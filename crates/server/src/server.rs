//! The daemon itself: accept loop, per-connection reader threads, and
//! the worker pool, all inside one [`std::thread::scope`].
//!
//! # Request lifecycle
//!
//! ```text
//! accept ── connection thread ── admit (bounded queue) ── worker
//!                │                    │ full → busy error     │
//!                │                    ▼                       ▼
//!                │               typed reject          coalesce (claim
//!                │                                     in-flight groups)
//!                │                                           │
//!                ▼                                           ▼
//!           write response  ◄──────── mpsc ◄────── library resolve
//!                                                   (hit / warm / scratch)
//! ```
//!
//! The accept loop only accepts and spawns; it never parses, queues, or
//! compiles, so a full queue or a slow compile cannot stall new
//! connections (they get typed `busy` rejections instead). Shutdown is
//! graceful: the flag flips, the accept loop is woken by a loopback
//! connect, admission closes, queued work drains, and every thread joins
//! before [`Server::run`] returns.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use accqoc::{PrecompileOrder, PulseCache, Session};
use accqoc_circuit::parse_qasm;

use crate::inflight::InflightGroups;
use crate::protocol::{
    Call, ErrorCode, Payload, PrecompileSummary, Request, Response, ServerCounters, StatsSnapshot,
};
use crate::queue::{BoundedQueue, EnqueueError};

/// Tunables of a [`Server`]. The defaults suit tests and small
/// deployments; production deployments mostly raise `workers` and
/// `queue_capacity` together.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads compiling/serving admitted requests (≥ 1).
    pub workers: usize,
    /// Admission-queue capacity: requests pending beyond the workers'
    /// in-flight set. A full queue rejects with a typed `busy` error —
    /// it never blocks the accept loop or the connection threads.
    pub queue_capacity: usize,
    /// Concurrent client connections; further connects receive a `busy`
    /// error frame and are closed immediately.
    pub max_connections: usize,
    /// Request-frame size cap in bytes. A longer line gets a typed
    /// `oversized` error and the connection is closed (framing cannot be
    /// trusted past an unbounded line).
    pub max_line_bytes: usize,
    /// How often idle connection readers wake to check the shutdown
    /// flag. Lower is snappier shutdown, higher is fewer wakeups.
    pub poll_interval: Duration,
    /// Socket write timeout per response frame. A client that stops
    /// reading (TCP backpressure on a large pulse payload) gets its
    /// connection dropped after this long instead of pinning a
    /// connection thread — and with it graceful shutdown — forever.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_connections: 64,
            max_line_bytes: 4 << 20,
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(30),
        }
    }
}

#[derive(Debug, Default)]
struct CounterCells {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_served: AtomicU64,
    requests_rejected_busy: AtomicU64,
    protocol_errors: AtomicU64,
    coalesced_waits: AtomicU64,
}

impl CounterCells {
    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            requests_rejected_busy: self.requests_rejected_busy.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            coalesced_waits: self.coalesced_waits.load(Ordering::Relaxed),
        }
    }
}

/// A request admitted to the worker queue, with the channel its encoded
/// response travels back on.
struct Job {
    id: u64,
    call: Call,
    respond: mpsc::Sender<String>,
}

/// One frame from a connection, or the reason there is none.
enum Frame {
    /// A complete line (delimiter stripped).
    Line(String),
    /// The read timed out — poll the shutdown flag and retry.
    Timeout,
    /// The line grew past the size cap.
    Oversized,
    /// The peer is gone; `partial` is `true` when it vanished
    /// mid-frame (a truncated request).
    Eof {
        /// Unterminated bytes were pending when the peer left.
        partial: bool,
    },
}

/// Incremental newline framing over a blocking socket with a read
/// timeout: accumulates bytes, yields complete lines, and classifies
/// every exit condition the connection loop must distinguish.
struct LineReader<R> {
    inner: R,
    pending: Vec<u8>,
    max_line_bytes: usize,
}

impl<R: Read> LineReader<R> {
    fn new(inner: R, max_line_bytes: usize) -> Self {
        Self {
            inner,
            pending: Vec::new(),
            max_line_bytes,
        }
    }

    fn next_frame(&mut self) -> Frame {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                if pos > self.max_line_bytes {
                    return Frame::Oversized;
                }
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop();
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Frame::Line(String::from_utf8_lossy(&line).into_owned());
            }
            if self.pending.len() > self.max_line_bytes {
                return Frame::Oversized;
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return Frame::Eof {
                        partial: !self.pending.is_empty(),
                    }
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return Frame::Timeout
                    }
                    std::io::ErrorKind::Interrupted => continue,
                    // Reset/abort mid-stream is a disconnect; pending
                    // bytes mean it happened mid-request.
                    _ => {
                        return Frame::Eof {
                            partial: !self.pending.is_empty(),
                        }
                    }
                },
            }
        }
    }
}

fn write_frame(stream: &mut (impl Write + ?Sized), line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// The pulse-serving daemon: a TCP listener over one shared
/// [`Session`]/pulse library.
///
/// Built with [`Server::bind`] (so the OS-assigned port is known before
/// [`Server::run`] blocks), it serves until a client sends the
/// `shutdown` method.
#[derive(Debug)]
pub struct Server {
    session: Arc<Session>,
    listener: TcpListener,
    config: ServerConfig,
    local_addr: SocketAddr,
}

impl Server {
    /// Binds the listener. The session is shared — the caller can keep a
    /// clone of the [`Arc`] and watch
    /// [`Session::library`](accqoc::Session::library) stats while the
    /// daemon serves.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            session,
            listener,
            config,
            local_addr,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and
    /// returns the final counters. All worker and connection threads are
    /// joined before this returns.
    ///
    /// # Errors
    ///
    /// Propagates listener failures that make accepting impossible.
    pub fn run(&self) -> std::io::Result<ServerCounters> {
        let workers = self.config.workers.max(1);
        let queue: BoundedQueue<Job> = BoundedQueue::new(self.config.queue_capacity);
        let inflight = InflightGroups::new();
        let counters = CounterCells::default();
        let shutdown = AtomicBool::new(false);
        let active_connections = AtomicUsize::new(0);
        let session = &self.session;

        std::thread::scope(|scope| -> std::io::Result<()> {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        // Counted at pickup so a request's own `stats`
                        // snapshot includes itself.
                        counters.requests_served.fetch_add(1, Ordering::Relaxed);
                        let response =
                            handle_call(job.id, job.call, session, &inflight, &queue, &counters);
                        // A vanished client is not a daemon problem.
                        job.respond.send(response.encode()).ok();
                    }
                });
            }

            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::Interrupted
                                | std::io::ErrorKind::ConnectionAborted
                                | std::io::ErrorKind::ConnectionReset
                        ) =>
                    {
                        // A peer that vanished mid-handshake is not a
                        // listener failure.
                        continue;
                    }
                    Err(e) => {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        // Fatal listener failure: flip the shutdown flag
                        // so every connection thread's poll tick exits —
                        // otherwise the scope below never joins and this
                        // error never propagates.
                        shutdown.store(true, Ordering::SeqCst);
                        queue.close();
                        return Err(e);
                    }
                };
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                if active_connections.load(Ordering::SeqCst) >= self.config.max_connections {
                    counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    // The frame is tiny (fits any socket buffer), but a
                    // timeout keeps a pathological peer from stalling
                    // the accept loop on this write.
                    stream
                        .set_write_timeout(Some(self.config.write_timeout))
                        .ok();
                    let refusal = Response::failure(
                        0,
                        ErrorCode::Busy,
                        format!("connection limit reached ({})", self.config.max_connections),
                    );
                    write_frame(&mut stream, &refusal.encode()).ok();
                    continue;
                }
                active_connections.fetch_add(1, Ordering::SeqCst);
                let queue = &queue;
                let counters = &counters;
                let shutdown = &shutdown;
                let active = &active_connections;
                let config = &self.config;
                let local_addr = self.local_addr;
                scope.spawn(move || {
                    connection_loop(stream, queue, counters, shutdown, config, local_addr);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            queue.close();
            Ok(())
        })?;
        Ok(counters.snapshot())
    }
}

/// Reads frames off one connection until the peer leaves, a framing
/// violation forces a close, or shutdown drains the daemon.
fn connection_loop(
    stream: TcpStream,
    queue: &BoundedQueue<Job>,
    counters: &CounterCells,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    local_addr: SocketAddr,
) {
    stream.set_read_timeout(Some(config.poll_interval)).ok();
    stream.set_write_timeout(Some(config.write_timeout)).ok();
    stream.set_nodelay(true).ok();
    let mut reader = LineReader::new(&stream, config.max_line_bytes);
    let mut writer = &stream;
    loop {
        match reader.next_frame() {
            Frame::Timeout => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Frame::Eof { partial } => {
                if partial {
                    // Truncated frame: the client died mid-request. The
                    // daemon just notes it and moves on.
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Frame::Oversized => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response = Response::failure(
                    0,
                    ErrorCode::Oversized,
                    format!("request line exceeds {} bytes", config.max_line_bytes),
                );
                write_frame(&mut writer, &response.encode()).ok();
                return;
            }
            Frame::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let request = match Request::decode(&line) {
                    Ok(request) => request,
                    Err(decode) => {
                        counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        let response = Response {
                            id: decode.id,
                            body: Err(decode.error),
                        };
                        if write_frame(&mut writer, &response.encode()).is_err() {
                            return;
                        }
                        continue;
                    }
                };
                let response_line = match request.call {
                    Call::Shutdown => {
                        // Handled here, not in the pool: shutdown must
                        // work even when the queue is saturated.
                        let response = Response {
                            id: request.id,
                            body: Ok(Payload::Shutdown),
                        };
                        write_frame(&mut writer, &response.encode()).ok();
                        shutdown.store(true, Ordering::SeqCst);
                        // Wake the blocking accept() so the loop can exit.
                        TcpStream::connect(local_addr).ok();
                        return;
                    }
                    call => {
                        let (tx, rx) = mpsc::channel();
                        let job = Job {
                            id: request.id,
                            call,
                            respond: tx,
                        };
                        match queue.try_push(job) {
                            Ok(()) => match rx.recv() {
                                Ok(line) => line,
                                Err(_) => Response::failure(
                                    request.id,
                                    ErrorCode::ShuttingDown,
                                    "daemon is draining",
                                )
                                .encode(),
                            },
                            Err(EnqueueError::Full) => {
                                counters
                                    .requests_rejected_busy
                                    .fetch_add(1, Ordering::Relaxed);
                                Response::failure(
                                    request.id,
                                    ErrorCode::Busy,
                                    format!(
                                        "admission queue full ({} pending)",
                                        config.queue_capacity
                                    ),
                                )
                                .encode()
                            }
                            Err(EnqueueError::Closed) => Response::failure(
                                request.id,
                                ErrorCode::ShuttingDown,
                                "daemon is draining",
                            )
                            .encode(),
                        }
                    }
                };
                if write_frame(&mut writer, &response_line).is_err() {
                    return;
                }
            }
        }
    }
}

/// Executes one admitted call against the shared session.
fn handle_call(
    id: u64,
    call: Call,
    session: &Session,
    inflight: &InflightGroups,
    queue: &BoundedQueue<Job>,
    counters: &CounterCells,
) -> Response {
    let compile_failure =
        |e: accqoc::Error| Response::failure(id, ErrorCode::Compile, e.to_string());
    match call {
        Call::ServeProgram {
            qasm,
            return_pulses,
        } => {
            let circuit = match parse_qasm(&qasm) {
                Ok(c) => c,
                Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
            };
            // Coalesce with other in-flight compiles of the same groups:
            // claim what the library still misses; waiting here means
            // another worker is compiling a shared group right now, and
            // it will resolve as a hit once published. The front end
            // runs once — the serve reuses the same GroupReport.
            let grouped = session.front_end(&circuit);
            let keys: Vec<_> = grouped.targets.iter().map(|t| t.key.clone()).collect();
            let claim = inflight.claim(&keys, |k| !session.cache_contains(k));
            if claim.waited() {
                counters.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            }
            let report = match session.serve_grouped(&grouped, &accqoc::ServeOptions::default()) {
                Ok(report) => report,
                Err(e) => return compile_failure(e),
            };
            let pulses = return_pulses.then(|| {
                let mut cache = PulseCache::new();
                for group in &report.groups {
                    if let Some(entry) = session.cached(&group.key) {
                        cache.insert(group.key.clone(), entry);
                    }
                }
                cache
            });
            Response {
                id,
                body: Ok(Payload::Serve { report, pulses }),
            }
        }
        Call::Precompile { programs } => {
            let mut circuits = Vec::with_capacity(programs.len());
            for qasm in &programs {
                match parse_qasm(qasm) {
                    Ok(c) => circuits.push(c),
                    Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
                }
            }
            // Precompile coalesces too: claim the union of the batch's
            // group keys so a concurrent serve (or second precompile) of
            // an overlapping group waits instead of duplicating GRAPE.
            let mut keys: Vec<_> = circuits
                .iter()
                .flat_map(|c| {
                    session
                        .front_end(c)
                        .targets
                        .into_iter()
                        .map(|t| t.key)
                        .collect::<Vec<_>>()
                })
                .collect();
            keys.sort();
            keys.dedup();
            let claim = inflight.claim(&keys, |k| !session.cache_contains(k));
            if claim.waited() {
                counters.coalesced_waits.fetch_add(1, Ordering::Relaxed);
            }
            match session.precompile(&circuits, PrecompileOrder::Mst) {
                Ok(report) => Response {
                    id,
                    body: Ok(Payload::Precompile(PrecompileSummary {
                        n_programs: report.n_programs,
                        n_unique_groups: report.n_unique_groups,
                        total_iterations: report.total_iterations,
                    })),
                },
                Err(e) => compile_failure(e),
            }
        }
        Call::VerifyProgram { qasm } => {
            let circuit = match parse_qasm(&qasm) {
                Ok(c) => c,
                Err(e) => return Response::failure(id, ErrorCode::Qasm, e.to_string()),
            };
            match session.verify_program(&circuit) {
                Ok(report) => Response {
                    id,
                    body: Ok(Payload::Verify(report)),
                },
                Err(e) => compile_failure(e),
            }
        }
        Call::Stats => Response {
            id,
            body: Ok(Payload::Stats(StatsSnapshot {
                library: session.library().stats(),
                server: counters.snapshot(),
                library_len: session.cache_len(),
                queue_depth: queue.len(),
            })),
        },
        // Shutdown never reaches the pool (the connection thread handles
        // it), but answer sanely if a future refactor routes it here.
        Call::Shutdown => Response {
            id,
            body: Ok(Payload::Shutdown),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_frames_and_strips_cr() {
        let data: &[u8] = b"one\r\ntwo\nthree";
        let mut reader = LineReader::new(data, 64);
        assert!(matches!(reader.next_frame(), Frame::Line(l) if l == "one"));
        assert!(matches!(reader.next_frame(), Frame::Line(l) if l == "two"));
        // Trailing bytes without a delimiter: a truncated frame.
        assert!(matches!(reader.next_frame(), Frame::Eof { partial: true }));
    }

    #[test]
    fn line_reader_flags_oversized_lines() {
        // Without a delimiter: flagged as soon as the cap is passed.
        let data = vec![b'x'; 100];
        let mut reader = LineReader::new(data.as_slice(), 10);
        assert!(matches!(reader.next_frame(), Frame::Oversized));
        // With the delimiter already buffered: still flagged, never
        // yielded as a (huge) line.
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        let mut reader = LineReader::new(data.as_slice(), 10);
        assert!(matches!(reader.next_frame(), Frame::Oversized));
    }

    #[test]
    fn line_reader_clean_eof_is_not_partial() {
        let data: &[u8] = b"done\n";
        let mut reader = LineReader::new(data, 64);
        assert!(matches!(reader.next_frame(), Frame::Line(_)));
        assert!(matches!(reader.next_frame(), Frame::Eof { partial: false }));
    }
}
