//! The daemon's HTTP/1.1 surface: request parsing, routing, format
//! negotiation, and response rendering.
//!
//! This is deliberately a *small* HTTP/1.1 — enough for `curl`, health
//! probes, and JSON-speaking operators, not a general web server:
//!
//! - methods `GET`/`POST`, `Content-Length` bodies only (chunked
//!   transfer encoding is refused with `501`),
//! - keep-alive and pipelining (responses always return in request
//!   order — the event loop sequences them),
//! - format negotiation by path suffix: `/stats` and `/stats.json`
//!   return compact JSON, `/stats.pretty` returns indented JSON,
//! - `limit`/`offset` pagination on `GET /library`.
//!
//! Routes:
//!
//! | route | call |
//! |---|---|
//! | `POST /serve` | [`Call::ServeProgram`] (body: `{"qasm": "...", "return_pulses": bool}`) |
//! | `POST /precompile` | [`Call::Precompile`] (body: `{"programs": ["...", ...]}`) |
//! | `POST /pulses` | [`Call::Pulses`] (body: `{"keys": ["<hex>", ...]}`) |
//! | `POST /verify` | [`Call::VerifyProgram`] (body: `{"qasm": "..."}`) |
//! | `GET /stats` | [`Call::Stats`] |
//! | `GET /library?limit=N&offset=M` | [`Call::Library`] |
//! | `POST /shutdown` | [`Call::Shutdown`] |
//!
//! Success bodies are the same `result` objects the line protocol puts
//! in its response envelope; error bodies are `{"error": {"code": ...,
//! "message": ...}}` with the status mapped from [`ErrorCode`].

use accqoc::json::{self, JsonValue};

use crate::protocol::{
    Call, ErrorCode, Payload, WireError, DEFAULT_LIBRARY_LIMIT, MAX_LIBRARY_LIMIT,
};

/// Response body rendering negotiated from the request path suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// One-line compact JSON (default, and the `.json` suffix).
    #[default]
    Compact,
    /// Indented multi-line JSON (the `.pretty` suffix).
    Pretty,
}

impl Format {
    fn render(self, value: &JsonValue) -> String {
        match self {
            Self::Compact => value.to_compact(),
            Self::Pretty => value.to_pretty(),
        }
    }
}

/// One parsed HTTP request, reduced to what routing needs.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpRequest {
    /// Request method verb (`GET`, `POST`, …), uppercase as received.
    pub method: String,
    /// Decoded path without the query string (suffix still attached).
    pub path: String,
    /// Decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Whether the connection survives this response (HTTP/1.1 default
    /// yes, `Connection: close` or HTTP/1.0 no).
    pub keep_alive: bool,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
}

/// Why a byte stream cannot be (or is not yet) a complete request.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpParse {
    /// More bytes needed — leave the buffer alone and read again.
    Incomplete,
    /// A complete request occupying the first `consumed` buffer bytes.
    Request(Box<HttpRequest>, usize),
    /// Framing violation: answer with the error and close the
    /// connection (the stream cannot be trusted past it).
    Violation(WireError),
}

/// The verbs the router knows. Used both for routing and for protocol
/// auto-detection (a first line starting with one of these and ending in
/// an `HTTP/` version marker selects HTTP mode).
const METHODS: [&str; 7] = ["GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS", "PATCH"];

/// `true` when a connection's first line is HTTP-shaped: a known method
/// verb followed by a space. (Legacy protocol frames always start with
/// `{`, so the two surfaces cannot collide.)
pub(crate) fn looks_like_http(buf: &[u8]) -> bool {
    METHODS
        .iter()
        .any(|m| buf.len() > m.len() && buf.starts_with(m.as_bytes()) && buf[m.len()] == b' ')
}

/// Incrementally parses the front of `buf` as one HTTP/1.1 request.
/// `max_head_bytes` caps the header block, `max_body_bytes` the declared
/// body length; both map to typed violations, never truncation.
pub fn parse_request(buf: &[u8], max_head_bytes: usize, max_body_bytes: usize) -> HttpParse {
    let violation =
        |code: ErrorCode, message: String| HttpParse::Violation(WireError::new(code, message));
    // Find the end of the header block: CRLFCRLF (tolerating bare LF).
    let Some((head_end, body_start)) = find_head_end(buf) else {
        if buf.len() > max_head_bytes {
            return violation(
                ErrorCode::Oversized,
                format!("request headers exceed {max_head_bytes} bytes"),
            );
        }
        return HttpParse::Incomplete;
    };
    if head_end > max_head_bytes {
        return violation(
            ErrorCode::Oversized,
            format!("request headers exceed {max_head_bytes} bytes"),
        );
    }
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return violation(
                ErrorCode::MalformedJson,
                format!("malformed request line `{request_line}`"),
            )
        }
    };
    if !version.starts_with("HTTP/1.") {
        return violation(
            ErrorCode::MalformedJson,
            format!("unsupported protocol version `{version}`"),
        );
    }
    let mut keep_alive = version != "HTTP/1.0";
    let mut content_length: usize = 0;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return violation(
                ErrorCode::MalformedJson,
                format!("malformed header `{line}`"),
            );
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse() {
                Ok(n) => content_length = n,
                Err(_) => {
                    return violation(
                        ErrorCode::MalformedJson,
                        format!("bad content-length `{value}`"),
                    )
                }
            },
            "transfer-encoding" => {
                return violation(
                    ErrorCode::MalformedJson,
                    "chunked transfer encoding is not supported".into(),
                )
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    if content_length > max_body_bytes {
        return violation(
            ErrorCode::Oversized,
            format!("request body of {content_length} bytes exceeds {max_body_bytes}"),
        );
    }
    if buf.len() < body_start + content_length {
        return HttpParse::Incomplete;
    }
    let (path, query) = split_target(target);
    HttpParse::Request(
        Box::new(HttpRequest {
            method: method.to_string(),
            path,
            query,
            keep_alive,
            body: buf[body_start..body_start + content_length].to_vec(),
        }),
        body_start + content_length,
    )
}

/// Locates the blank line ending the header block, returning
/// `(header_bytes, body_offset)`. Accepts `\r\n\r\n` and bare `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i] != b'\n' {
            continue;
        }
        if buf[i + 1..].first() == Some(&b'\n') {
            return Some((i + 1, i + 2));
        }
        if buf[i + 1..].starts_with(b"\r\n") {
            return Some((i + 1, i + 3));
        }
    }
    None
}

/// Splits a request target into decoded path and query pairs.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Decodes `%XX` escapes and `+`-as-space. Malformed escapes pass
/// through literally (they will fail route matching loudly instead of
/// silently changing meaning).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok())
                {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Resolves a parsed request to a daemon [`Call`] plus the negotiated
/// response [`Format`].
///
/// # Errors
///
/// A typed [`WireError`] ready to render with [`render_error`]:
/// `not_found` for unknown paths, `method_not_allowed` for known paths
/// with the wrong verb, `malformed_json`/`bad_params` for unreadable
/// bodies or query parameters.
pub fn route(request: &HttpRequest) -> Result<(Call, Format), WireError> {
    let (path, format) = negotiate_format(&request.path);
    let method = request.method.as_str();
    let call = match path {
        "/serve" => {
            require_method(method, "POST")?;
            let body = parse_body(&request.body)?;
            Call::ServeProgram {
                qasm: required_str(&body, "qasm")?,
                return_pulses: matches!(body.get("return_pulses"), Some(JsonValue::Bool(true))),
                only_qubits: optional_widths(&body)?,
            }
        }
        "/precompile" => {
            require_method(method, "POST")?;
            let body = parse_body(&request.body)?;
            let programs = body
                .get("programs")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadParams, "missing array param `programs`")
                })?;
            Call::Precompile {
                programs: programs
                    .iter()
                    .map(|p| {
                        p.as_str().map(str::to_string).ok_or_else(|| {
                            WireError::new(ErrorCode::BadParams, "`programs` holds a non-string")
                        })
                    })
                    .collect::<Result<_, _>>()?,
                only_qubits: optional_widths(&body)?,
            }
        }
        "/pulses" => {
            require_method(method, "POST")?;
            let body = parse_body(&request.body)?;
            let keys = body
                .get("keys")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| {
                    WireError::new(ErrorCode::BadParams, "missing array param `keys`")
                })?;
            Call::Pulses {
                keys: keys
                    .iter()
                    .map(|k| {
                        k.as_str()
                            .ok_or_else(|| {
                                WireError::new(ErrorCode::BadParams, "`keys` holds a non-string")
                            })
                            .and_then(|text| {
                                crate::protocol::hex_decode(text).map_err(|e| {
                                    WireError::new(ErrorCode::BadParams, format!("bad key: {e}"))
                                })
                            })
                            .map(accqoc_circuit::UnitaryKey::from_bytes)
                    })
                    .collect::<Result<_, _>>()?,
            }
        }
        "/verify" => {
            require_method(method, "POST")?;
            let body = parse_body(&request.body)?;
            Call::VerifyProgram {
                qasm: required_str(&body, "qasm")?,
            }
        }
        "/stats" => {
            require_method(method, "GET")?;
            Call::Stats
        }
        "/library" => {
            require_method(method, "GET")?;
            Call::Library {
                limit: query_count(request, "limit", DEFAULT_LIBRARY_LIMIT)?.min(MAX_LIBRARY_LIMIT),
                offset: query_count(request, "offset", 0)?,
            }
        }
        "/shutdown" => {
            require_method(method, "POST")?;
            Call::Shutdown
        }
        other => {
            return Err(WireError::new(
                ErrorCode::NotFound,
                format!("no route for `{other}`"),
            ))
        }
    };
    Ok((call, format))
}

/// Strips a `.json` / `.pretty` format suffix off the path.
fn negotiate_format(path: &str) -> (&str, Format) {
    if let Some(base) = path.strip_suffix(".pretty") {
        (base, Format::Pretty)
    } else if let Some(base) = path.strip_suffix(".json") {
        (base, Format::Compact)
    } else {
        (path, Format::Compact)
    }
}

fn require_method(got: &str, want: &str) -> Result<(), WireError> {
    if got == want {
        Ok(())
    } else {
        Err(WireError::new(
            ErrorCode::MethodNotAllowed,
            format!("route expects {want}, got {got}"),
        ))
    }
}

/// The optional `only_qubits` width filter of `/serve` and
/// `/precompile` bodies (absent means "serve everything").
fn optional_widths(body: &JsonValue) -> Result<Option<Vec<usize>>, WireError> {
    match body.get("only_qubits") {
        None => Ok(None),
        Some(value) => value
            .as_array()
            .ok_or_else(|| WireError::new(ErrorCode::BadParams, "`only_qubits` must be an array"))?
            .iter()
            .map(|w| {
                w.as_usize().ok_or_else(|| {
                    WireError::new(ErrorCode::BadParams, "`only_qubits` holds a non-integer")
                })
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

fn parse_body(body: &[u8]) -> Result<JsonValue, WireError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| WireError::new(ErrorCode::MalformedJson, "request body is not UTF-8"))?;
    json::parse(text)
        .map_err(|e| WireError::new(ErrorCode::MalformedJson, format!("request body: {e}")))
}

fn required_str(body: &JsonValue, name: &str) -> Result<String, WireError> {
    body.get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| {
            WireError::new(
                ErrorCode::BadParams,
                format!("missing string param `{name}`"),
            )
        })
}

fn query_count(request: &HttpRequest, name: &str, default: usize) -> Result<usize, WireError> {
    match request.query.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, v)) => v.parse().map_err(|_| {
            WireError::new(
                ErrorCode::BadParams,
                format!("query param `{name}` must be a non-negative integer, got `{v}`"),
            )
        }),
    }
}

/// The HTTP status line an [`ErrorCode`] maps to.
pub fn status_of(code: ErrorCode) -> (u16, &'static str) {
    match code {
        ErrorCode::MalformedJson | ErrorCode::BadParams | ErrorCode::Qasm => (400, "Bad Request"),
        ErrorCode::UnknownMethod | ErrorCode::NotFound => (404, "Not Found"),
        ErrorCode::MethodNotAllowed => (405, "Method Not Allowed"),
        ErrorCode::Oversized => (413, "Payload Too Large"),
        ErrorCode::Busy | ErrorCode::ShuttingDown | ErrorCode::ShardUnavailable => {
            (503, "Service Unavailable")
        }
        ErrorCode::Compile | ErrorCode::Internal => (500, "Internal Server Error"),
    }
}

/// Renders a success response: status 200 with the payload's `result`
/// object as the body.
pub fn render_success(payload: &Payload, format: Format, keep_alive: bool) -> Vec<u8> {
    respond(200, "OK", &payload.to_json_value(), format, keep_alive)
}

/// Renders a typed error response with the status from [`status_of`] and
/// an `{"error": ...}` body.
pub fn render_error(error: &WireError, format: Format, keep_alive: bool) -> Vec<u8> {
    let (status, reason) = status_of(error.code);
    let body = JsonValue::Object(vec![("error".into(), error.to_json_value())]);
    respond(status, reason, &body, format, keep_alive)
}

fn respond(
    status: u16,
    reason: &str,
    body: &JsonValue,
    format: Format,
    keep_alive: bool,
) -> Vec<u8> {
    let mut body = format.render(body);
    body.push('\n');
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len(),
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> HttpParse {
        parse_request(text.as_bytes(), 8 << 10, 64 << 10)
    }

    #[test]
    fn parses_get_with_query_and_keep_alive_default() {
        let HttpParse::Request(req, consumed) =
            parse("GET /library?limit=5&offset=10 HTTP/1.1\r\nHost: x\r\n\r\n")
        else {
            panic!("expected a complete request");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/library");
        assert_eq!(
            req.query,
            vec![("limit".into(), "5".into()), ("offset".into(), "10".into())]
        );
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
        assert_eq!(
            consumed,
            "GET /library?limit=5&offset=10 HTTP/1.1\r\nHost: x\r\n\r\n".len()
        );
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let text = "POST /serve HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
        let HttpParse::Request(req, consumed) = parse(text) else {
            panic!("expected a complete request");
        };
        assert_eq!(req.body, b"body");
        assert_eq!(consumed, text.len() - "EXTRA".len());
    }

    #[test]
    fn incomplete_until_body_arrives() {
        assert_eq!(
            parse("POST /serve HTTP/1.1\r\nContent-Length: 10\r\n\r\nbod"),
            HttpParse::Incomplete
        );
        assert_eq!(parse("GET /stats HTTP/1.1\r\nHost:"), HttpParse::Incomplete);
    }

    #[test]
    fn violations_are_typed() {
        let HttpParse::Violation(e) = parse("GET /stats\r\n\r\n") else {
            panic!("two-token request line must be a violation");
        };
        assert_eq!(e.code, ErrorCode::MalformedJson);

        let HttpParse::Violation(e) = parse("GET /stats SPDY/9\r\n\r\n") else {
            panic!("unknown protocol version must be a violation");
        };
        assert_eq!(e.code, ErrorCode::MalformedJson);

        let HttpParse::Violation(e) =
            parse("POST /serve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        else {
            panic!("chunked encoding must be refused");
        };
        assert_eq!(e.code, ErrorCode::MalformedJson);

        let HttpParse::Violation(e) = parse_request(
            b"POST /serve HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
            8 << 10,
            100,
        ) else {
            panic!("oversized declared body must be a violation");
        };
        assert_eq!(e.code, ErrorCode::Oversized);

        let huge = format!("GET /{} HTTP/1.1", "x".repeat(512));
        let HttpParse::Violation(e) = parse_request(huge.as_bytes(), 64, 64) else {
            panic!("oversized header block must be a violation");
        };
        assert_eq!(e.code, ErrorCode::Oversized);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let HttpParse::Request(req, _) = parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!("complete request");
        };
        assert!(!req.keep_alive);
        let HttpParse::Request(req, _) = parse("GET /stats HTTP/1.0\r\n\r\n") else {
            panic!("complete request");
        };
        assert!(!req.keep_alive);
    }

    #[test]
    fn routes_and_formats() {
        let req = |method: &str, path: &str, body: &str| HttpRequest {
            method: method.into(),
            path: path.into(),
            query: vec![],
            keep_alive: true,
            body: body.as_bytes().to_vec(),
        };
        let (call, format) = route(&req("GET", "/stats", "")).unwrap();
        assert_eq!(call, Call::Stats);
        assert_eq!(format, Format::Compact);

        let (call, format) = route(&req("GET", "/stats.pretty", "")).unwrap();
        assert_eq!(call, Call::Stats);
        assert_eq!(format, Format::Pretty);

        let (call, format) = route(&req("GET", "/stats.json", "")).unwrap();
        assert_eq!(call, Call::Stats);
        assert_eq!(format, Format::Compact);

        let (call, _) = route(&req(
            "POST",
            "/serve",
            r#"{"qasm": "qreg q[1]; h q[0];", "return_pulses": true}"#,
        ))
        .unwrap();
        assert_eq!(
            call,
            Call::ServeProgram {
                qasm: "qreg q[1]; h q[0];".into(),
                return_pulses: true,
                only_qubits: None,
            }
        );

        let (call, _) = route(&req(
            "POST",
            "/serve",
            r#"{"qasm": "qreg q[1]; h q[0];", "only_qubits": [1, 2]}"#,
        ))
        .unwrap();
        assert_eq!(
            call,
            Call::ServeProgram {
                qasm: "qreg q[1]; h q[0];".into(),
                return_pulses: false,
                only_qubits: Some(vec![1, 2]),
            }
        );

        let (call, _) = route(&req("POST", "/pulses", r#"{"keys": ["00ff"]}"#)).unwrap();
        assert_eq!(
            call,
            Call::Pulses {
                keys: vec![accqoc_circuit::UnitaryKey::from_bytes(vec![0, 255])],
            }
        );

        let (call, _) = route(&req("POST", "/shutdown", "")).unwrap();
        assert_eq!(call, Call::Shutdown);

        assert_eq!(
            route(&req("GET", "/nope", "")).unwrap_err().code,
            ErrorCode::NotFound
        );
        assert_eq!(
            route(&req("GET", "/serve", "")).unwrap_err().code,
            ErrorCode::MethodNotAllowed
        );
        assert_eq!(
            route(&req("POST", "/serve", "{not json")).unwrap_err().code,
            ErrorCode::MalformedJson
        );
        assert_eq!(
            route(&req("POST", "/serve", "{}")).unwrap_err().code,
            ErrorCode::BadParams
        );
    }

    #[test]
    fn library_route_paginates_from_query() {
        let mut req = HttpRequest {
            method: "GET".into(),
            path: "/library".into(),
            query: vec![("limit".into(), "3".into()), ("offset".into(), "7".into())],
            keep_alive: true,
            body: vec![],
        };
        let (call, _) = route(&req).unwrap();
        assert_eq!(
            call,
            Call::Library {
                limit: 3,
                offset: 7
            }
        );
        req.query = vec![("limit".into(), "-2".into())];
        assert_eq!(route(&req).unwrap_err().code, ErrorCode::BadParams);
        req.query = vec![("limit".into(), "99999".into())];
        let (call, _) = route(&req).unwrap();
        assert_eq!(
            call,
            Call::Library {
                limit: MAX_LIBRARY_LIMIT,
                offset: 0
            }
        );
    }

    #[test]
    fn rendered_responses_frame_the_body_exactly() {
        let error = WireError::new(ErrorCode::Busy, "full");
        let bytes = render_error(&error, Format::Compact, true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len());
        assert!(head.contains("Connection: keep-alive"));
        assert!(body.contains("\"busy\""));

        let bytes = render_success(&Payload::Shutdown, Format::Pretty, false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
    }

    #[test]
    fn http_detection_matches_verbs_only() {
        assert!(looks_like_http(b"GET /stats HTTP/1.1"));
        assert!(looks_like_http(b"POST /serve HTTP/1.1"));
        assert!(!looks_like_http(b"{\"id\": 1}"));
        assert!(!looks_like_http(b"GETAWAY none"));
        assert!(!looks_like_http(b"garbage"));
    }

    #[test]
    fn percent_decoding_applies_to_query() {
        let (path, query) = split_target("/library?note=a%20b+c&x");
        assert_eq!(path, "/library");
        assert_eq!(
            query,
            vec![("note".into(), "a b c".into()), ("x".into(), String::new())]
        );
    }
}
