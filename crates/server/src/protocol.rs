//! The daemon's wire protocol: newline-delimited JSON frames.
//!
//! Every message is one line of compact JSON (no raw newlines — strings
//! escape control characters) terminated by `\n`. Requests carry a
//! client-chosen `id` that the matching response echoes, so a client can
//! pipeline calls over one connection. Circuits travel as OpenQASM
//! source ([`accqoc_circuit::parse_qasm`] / [`accqoc_circuit::to_qasm`]),
//! pulses as the same JSON artifact [`PulseCache`] persists to disk —
//! both ends of the wire speak formats the repository already pins as
//! byte-deterministic.
//!
//! Request frame:
//!
//! ```json
//! {"id": 1, "method": "serve_program", "params": {"qasm": "...", "return_pulses": true}}
//! ```
//!
//! Response frame (success / failure):
//!
//! ```json
//! {"id": 1, "ok": true, "result": {...}}
//! {"id": 1, "ok": false, "error": {"code": "busy", "message": "..."}}
//! ```

use accqoc::json::{self, JsonValue};
use accqoc::{LibraryStats, PulseCache, ServeReport, VerifyReport};

/// Machine-readable failure classes a response can carry. Protocol-level
/// codes (`malformed_json` … `oversized`) mean the request never reached
/// the compiler; compiler-level codes (`qasm`, `compile`) wrap an
/// [`accqoc::Error`] from the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    MalformedJson,
    /// The `method` field named no known method.
    UnknownMethod,
    /// The `params` object was missing a required field or mistyped.
    BadParams,
    /// The request line exceeded the daemon's size cap.
    Oversized,
    /// The admission queue was full — retry later (the daemon never
    /// blocks the accept loop on a full queue).
    Busy,
    /// The daemon is draining for shutdown.
    ShuttingDown,
    /// The QASM payload did not parse.
    Qasm,
    /// Pulse compilation or verification failed in the session.
    Compile,
    /// Anything else (a bug, by definition).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::MalformedJson => "malformed_json",
            Self::UnknownMethod => "unknown_method",
            Self::BadParams => "bad_params",
            Self::Oversized => "oversized",
            Self::Busy => "busy",
            Self::ShuttingDown => "shutting_down",
            Self::Qasm => "qasm",
            Self::Compile => "compile",
            Self::Internal => "internal",
        }
    }

    fn from_str(text: &str) -> Self {
        match text {
            "malformed_json" => Self::MalformedJson,
            "unknown_method" => Self::UnknownMethod,
            "bad_params" => Self::BadParams,
            "oversized" => Self::Oversized,
            "busy" => Self::Busy,
            "shutting_down" => Self::ShuttingDown,
            "qasm" => Self::Qasm,
            "compile" => Self::Compile,
            _ => Self::Internal,
        }
    }
}

/// A typed failure carried in a response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds a wire error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "code".into(),
                JsonValue::String(self.code.as_str().to_string()),
            ),
            ("message".into(), JsonValue::String(self.message.clone())),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let code = value
            .get("code")
            .and_then(JsonValue::as_str)
            .ok_or("error missing `code`")?;
        let message = value
            .get("message")
            .and_then(JsonValue::as_str)
            .ok_or("error missing `message`")?;
        Ok(Self {
            code: ErrorCode::from_str(code),
            message: message.to_string(),
        })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for WireError {}

/// The methods the daemon serves, with their parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Call {
    /// Serve one program against the live pulse library
    /// ([`accqoc::Session::serve_program`] semantics: hits free, misses
    /// warm-started, results inserted back).
    ServeProgram {
        /// The program as OpenQASM source.
        qasm: String,
        /// When `true`, the response carries the resolved pulses for the
        /// program's unique groups as a [`PulseCache`] artifact.
        return_pulses: bool,
    },
    /// Batch pre-compilation of a profiled program set
    /// ([`accqoc::Session::precompile`], MST order).
    Precompile {
        /// The profiled programs as OpenQASM sources.
        programs: Vec<String>,
    },
    /// Semantic verification of a program against the library's pulses
    /// ([`accqoc::Session::verify_program`]).
    VerifyProgram {
        /// The program as OpenQASM source.
        qasm: String,
    },
    /// Library counters, server counters, and queue depth.
    Stats,
    /// Graceful shutdown: the daemon stops accepting, drains queued
    /// requests, and exits. Handled by the connection thread directly,
    /// so it works even when the admission queue is full.
    Shutdown,
}

impl Call {
    fn method(&self) -> &'static str {
        match self {
            Self::ServeProgram { .. } => "serve_program",
            Self::Precompile { .. } => "precompile",
            Self::VerifyProgram { .. } => "verify_program",
            Self::Stats => "stats",
            Self::Shutdown => "shutdown",
        }
    }
}

/// One request frame: an `id` the response echoes, plus the call.
///
/// # Examples
///
/// ```
/// use accqoc_server::protocol::{Call, Request};
///
/// let request = Request {
///     id: 7,
///     call: Call::ServeProgram {
///         qasm: "qreg q[1]; h q[0];".into(),
///         return_pulses: false,
///     },
/// };
/// let line = request.encode();
/// assert!(!line.contains('\n'), "one frame per line");
/// assert_eq!(Request::decode(&line).unwrap(), request);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed by the response.
    pub id: u64,
    /// The method and its parameters.
    pub call: Call,
}

/// A decode failure, carrying the request id when it could be salvaged
/// from the malformed frame (0 otherwise) so the error response still
/// correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// Best-effort id of the offending request.
    pub id: u64,
    /// The typed failure to send back.
    pub error: WireError,
}

impl Request {
    /// Serializes the request as one compact JSON line (no trailing
    /// newline; the transport appends the frame delimiter).
    pub fn encode(&self) -> String {
        let params = match &self.call {
            Call::ServeProgram {
                qasm,
                return_pulses,
            } => Some(JsonValue::Object(vec![
                ("qasm".into(), JsonValue::String(qasm.clone())),
                ("return_pulses".into(), JsonValue::Bool(*return_pulses)),
            ])),
            Call::Precompile { programs } => Some(JsonValue::Object(vec![(
                "programs".into(),
                JsonValue::Array(
                    programs
                        .iter()
                        .map(|p| JsonValue::String(p.clone()))
                        .collect(),
                ),
            )])),
            Call::VerifyProgram { qasm } => Some(JsonValue::Object(vec![(
                "qasm".into(),
                JsonValue::String(qasm.clone()),
            )])),
            Call::Stats | Call::Shutdown => None,
        };
        let mut fields = vec![
            ("id".into(), JsonValue::Number(self.id as f64)),
            (
                "method".into(),
                JsonValue::String(self.call.method().to_string()),
            ),
        ];
        if let Some(params) = params {
            fields.push(("params".into(), params));
        }
        JsonValue::Object(fields).to_compact()
    }

    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] with [`ErrorCode::MalformedJson`],
    /// [`ErrorCode::UnknownMethod`], or [`ErrorCode::BadParams`]; the
    /// carried id is salvaged from the frame when possible.
    pub fn decode(line: &str) -> Result<Self, DecodeError> {
        let doc = json::parse(line).map_err(|e| DecodeError {
            id: 0,
            error: WireError::new(ErrorCode::MalformedJson, e.to_string()),
        })?;
        let id = doc
            .get("id")
            .and_then(JsonValue::as_usize)
            .map(|n| n as u64)
            .unwrap_or(0);
        let fail = |code, message: String| DecodeError {
            id,
            error: WireError::new(code, message),
        };
        let method = doc
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| fail(ErrorCode::BadParams, "missing `method`".into()))?;
        let param_str = |name: &str| {
            doc.get("params")
                .and_then(|p| p.get(name))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    fail(
                        ErrorCode::BadParams,
                        format!("missing string param `{name}`"),
                    )
                })
        };
        let call = match method {
            "serve_program" => Call::ServeProgram {
                qasm: param_str("qasm")?,
                return_pulses: matches!(
                    doc.get("params").and_then(|p| p.get("return_pulses")),
                    Some(JsonValue::Bool(true))
                ),
            },
            "precompile" => {
                let programs = doc
                    .get("params")
                    .and_then(|p| p.get("programs"))
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| {
                        fail(
                            ErrorCode::BadParams,
                            "missing array param `programs`".into(),
                        )
                    })?;
                Call::Precompile {
                    programs: programs
                        .iter()
                        .map(|p| {
                            p.as_str().map(str::to_string).ok_or_else(|| {
                                fail(ErrorCode::BadParams, "`programs` holds a non-string".into())
                            })
                        })
                        .collect::<Result<_, _>>()?,
                }
            }
            "verify_program" => Call::VerifyProgram {
                qasm: param_str("qasm")?,
            },
            "stats" => Call::Stats,
            "shutdown" => Call::Shutdown,
            other => {
                return Err(fail(
                    ErrorCode::UnknownMethod,
                    format!("unknown method `{other}`"),
                ))
            }
        };
        Ok(Self { id, call })
    }
}

/// Counters the daemon keeps about itself (the library's own
/// [`LibraryStats`] ride alongside in [`StatsSnapshot`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused because the connection cap was reached.
    pub connections_rejected: u64,
    /// Requests a worker completed (success or typed failure).
    pub requests_served: u64,
    /// Requests rejected with [`ErrorCode::Busy`] at admission.
    pub requests_rejected_busy: u64,
    /// Malformed, oversized, or truncated frames observed.
    pub protocol_errors: u64,
    /// Serve requests that waited on another client's in-flight compile
    /// of the same group instead of compiling it again.
    pub coalesced_waits: u64,
}

impl ServerCounters {
    fn to_json_value(self) -> JsonValue {
        let field = |n: u64| JsonValue::Number(n as f64);
        JsonValue::Object(vec![
            (
                "connections_accepted".into(),
                field(self.connections_accepted),
            ),
            (
                "connections_rejected".into(),
                field(self.connections_rejected),
            ),
            ("requests_served".into(), field(self.requests_served)),
            (
                "requests_rejected_busy".into(),
                field(self.requests_rejected_busy),
            ),
            ("protocol_errors".into(), field(self.protocol_errors)),
            ("coalesced_waits".into(), field(self.coalesced_waits)),
        ])
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .map(|n| n as u64)
                .ok_or_else(|| format!("server counters missing `{name}`"))
        };
        Ok(Self {
            connections_accepted: field("connections_accepted")?,
            connections_rejected: field("connections_rejected")?,
            requests_served: field("requests_served")?,
            requests_rejected_busy: field("requests_rejected_busy")?,
            protocol_errors: field("protocol_errors")?,
            coalesced_waits: field("coalesced_waits")?,
        })
    }
}

/// The `stats` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// The shared library's hit/miss/warm/scratch/eviction counters —
    /// the same numbers [`accqoc::PulseLibrary::stats`] reports
    /// in-process.
    pub library: LibraryStats,
    /// The daemon's own counters.
    pub server: ServerCounters,
    /// Entries currently stored in the library.
    pub library_len: usize,
    /// Requests currently queued for admission.
    pub queue_depth: usize,
}

/// The summary body of a `precompile` response (the wire projection of
/// [`accqoc::PrecompileReport`] — per-group frequency tables stay
/// server-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecompileSummary {
    /// Programs profiled.
    pub n_programs: usize,
    /// Unique groups in the profiled category.
    pub n_unique_groups: usize,
    /// GRAPE iterations spent filling the library.
    pub total_iterations: usize,
}

/// A successful response body, one variant per method.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// `serve_program`: the full [`ServeReport`] the in-process path
    /// would return, plus the resolved pulses when requested.
    Serve {
        /// The serving report (same counters as in-process).
        report: ServeReport,
        /// The program's unique-group pulses, when
        /// `return_pulses: true` (entries may be fewer than the report's
        /// groups if a bounded library evicted one after serving).
        pulses: Option<PulseCache>,
    },
    /// `precompile`: the category summary.
    Precompile(PrecompileSummary),
    /// `verify_program`: the full [`VerifyReport`].
    Verify(VerifyReport),
    /// `stats`: library + server counters.
    Stats(StatsSnapshot),
    /// `shutdown`: acknowledged; the daemon is draining.
    Shutdown,
}

/// One response frame: the echoed request id and either a typed payload
/// or a typed error.
///
/// # Examples
///
/// ```
/// use accqoc_server::protocol::{ErrorCode, Payload, Response, WireError};
///
/// let ok = Response { id: 7, body: Ok(Payload::Shutdown) };
/// assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
///
/// let err = Response {
///     id: 8,
///     body: Err(WireError::new(ErrorCode::Busy, "queue full (64)")),
/// };
/// let line = err.encode();
/// assert!(line.contains("\"busy\""));
/// assert_eq!(Response::decode(&line).unwrap(), err);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The id of the request this answers (0 when the request's id was
    /// unreadable).
    pub id: u64,
    /// Payload on success, typed error on failure.
    pub body: Result<Payload, WireError>,
}

impl Response {
    /// A failure response.
    pub fn failure(id: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            id,
            body: Err(WireError::new(code, message)),
        }
    }

    /// Serializes the response as one compact JSON line (no trailing
    /// newline).
    pub fn encode(&self) -> String {
        let mut fields = vec![("id".into(), JsonValue::Number(self.id as f64))];
        match &self.body {
            Ok(payload) => {
                fields.push(("ok".into(), JsonValue::Bool(true)));
                let (method, result) = match payload {
                    Payload::Serve { report, pulses } => {
                        let mut result = vec![("report".into(), report.to_json_value())];
                        if let Some(cache) = pulses {
                            let cache_value = json::parse(&cache.to_json())
                                .expect("pulse cache serializes to valid json");
                            result.push(("pulses".into(), cache_value));
                        }
                        ("serve_program", JsonValue::Object(result))
                    }
                    Payload::Precompile(s) => (
                        "precompile",
                        JsonValue::Object(vec![
                            ("n_programs".into(), JsonValue::Number(s.n_programs as f64)),
                            (
                                "n_unique_groups".into(),
                                JsonValue::Number(s.n_unique_groups as f64),
                            ),
                            (
                                "total_iterations".into(),
                                JsonValue::Number(s.total_iterations as f64),
                            ),
                        ]),
                    ),
                    Payload::Verify(report) => (
                        "verify_program",
                        json::parse(&report.to_json())
                            .expect("verify report serializes to valid json"),
                    ),
                    Payload::Stats(s) => (
                        "stats",
                        JsonValue::Object(vec![
                            ("library".into(), s.library.to_json_value()),
                            ("server".into(), s.server.to_json_value()),
                            (
                                "library_len".into(),
                                JsonValue::Number(s.library_len as f64),
                            ),
                            (
                                "queue_depth".into(),
                                JsonValue::Number(s.queue_depth as f64),
                            ),
                        ]),
                    ),
                    Payload::Shutdown => ("shutdown", JsonValue::Object(vec![])),
                };
                fields.push(("method".into(), JsonValue::String(method.to_string())));
                fields.push(("result".into(), result));
            }
            Err(error) => {
                fields.push(("ok".into(), JsonValue::Bool(false)));
                fields.push(("error".into(), error.to_json_value()));
            }
        }
        JsonValue::Object(fields).to_compact()
    }

    /// Parses one response frame.
    ///
    /// # Errors
    ///
    /// A description of what made the frame unreadable (a *transport*
    /// failure — a readable frame carrying a server-side error decodes
    /// into `Ok` with `body: Err(..)`).
    pub fn decode(line: &str) -> Result<Self, String> {
        let doc = json::parse(line).map_err(|e| format!("response is not json: {e}"))?;
        let id = doc
            .get("id")
            .and_then(JsonValue::as_usize)
            .ok_or("response missing `id`")? as u64;
        let ok = match doc.get("ok") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err("response missing `ok`".into()),
        };
        if !ok {
            let error = doc.get("error").ok_or("failure response missing `error`")?;
            return Ok(Self {
                id,
                body: Err(WireError::from_json_value(error)?),
            });
        }
        let method = doc
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or("success response missing `method`")?;
        let result = doc
            .get("result")
            .ok_or("success response missing `result`")?;
        let count = |value: &JsonValue, name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| format!("result missing `{name}`"))
        };
        let payload = match method {
            "serve_program" => {
                let report = result
                    .get("report")
                    .ok_or_else(|| "serve result missing `report`".to_string())
                    .and_then(|r| {
                        ServeReport::from_json_value(r).map_err(|e| format!("bad report: {e}"))
                    })?;
                let pulses = match result.get("pulses") {
                    Some(value) => Some(
                        PulseCache::from_json(&value.to_compact())
                            .map_err(|e| format!("bad pulses: {e}"))?,
                    ),
                    None => None,
                };
                Payload::Serve { report, pulses }
            }
            "precompile" => Payload::Precompile(PrecompileSummary {
                n_programs: count(result, "n_programs")?,
                n_unique_groups: count(result, "n_unique_groups")?,
                total_iterations: count(result, "total_iterations")?,
            }),
            "verify_program" => Payload::Verify(
                VerifyReport::from_json(&result.to_compact())
                    .map_err(|e| format!("bad verify report: {e}"))?,
            ),
            "stats" => Payload::Stats(StatsSnapshot {
                library: LibraryStats::from_json_value(
                    result.get("library").ok_or("stats missing `library`")?,
                )
                .map_err(|e| format!("bad library stats: {e}"))?,
                server: ServerCounters::from_json_value(
                    result.get("server").ok_or("stats missing `server`")?,
                )?,
                library_len: count(result, "library_len")?,
                queue_depth: count(result, "queue_depth")?,
            }),
            "shutdown" => Payload::Shutdown,
            other => return Err(format!("unknown response method `{other}`")),
        };
        Ok(Self {
            id,
            body: Ok(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_methods() {
        let calls = vec![
            Call::ServeProgram {
                qasm: "qreg q[2]; cx q[0],q[1];".into(),
                return_pulses: true,
            },
            Call::Precompile {
                programs: vec!["qreg q[1]; h q[0];".into(), "qreg q[1]; t q[0];".into()],
            },
            Call::VerifyProgram {
                qasm: "qreg q[1]; x q[0];".into(),
            },
            Call::Stats,
            Call::Shutdown,
        ];
        for (i, call) in calls.into_iter().enumerate() {
            let request = Request {
                id: i as u64 + 1,
                call,
            };
            let line = request.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Request::decode(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn request_decode_salvages_id_and_types_errors() {
        let e = Request::decode("{nope").unwrap_err();
        assert_eq!(e.error.code, ErrorCode::MalformedJson);
        assert_eq!(e.id, 0);

        let e = Request::decode(r#"{"id": 9, "method": "frobnicate"}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::UnknownMethod);
        assert_eq!(e.id, 9, "id salvaged from the malformed request");

        let e = Request::decode(r#"{"id": 3, "method": "serve_program"}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
        assert_eq!(e.id, 3);

        let e = Request::decode(r#"{"id": 4}"#).unwrap_err();
        assert_eq!(e.error.code, ErrorCode::BadParams);
    }

    #[test]
    fn response_roundtrip_stats_and_errors() {
        let stats = Response {
            id: 2,
            body: Ok(Payload::Stats(StatsSnapshot {
                library: LibraryStats {
                    hits: 5,
                    misses: 2,
                    warm_compiles: 1,
                    scratch_compiles: 1,
                    warm_iterations: 40,
                    scratch_iterations: 90,
                    evictions: 0,
                },
                server: ServerCounters {
                    connections_accepted: 3,
                    connections_rejected: 1,
                    requests_served: 7,
                    requests_rejected_busy: 2,
                    protocol_errors: 1,
                    coalesced_waits: 1,
                },
                library_len: 4,
                queue_depth: 0,
            })),
        };
        assert_eq!(Response::decode(&stats.encode()).unwrap(), stats);

        for code in [
            ErrorCode::MalformedJson,
            ErrorCode::UnknownMethod,
            ErrorCode::BadParams,
            ErrorCode::Oversized,
            ErrorCode::Busy,
            ErrorCode::ShuttingDown,
            ErrorCode::Qasm,
            ErrorCode::Compile,
            ErrorCode::Internal,
        ] {
            let r = Response::failure(1, code, "detail");
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_decode_rejects_unreadable_frames() {
        assert!(Response::decode("junk").is_err());
        assert!(Response::decode("{}").is_err());
        assert!(Response::decode(r#"{"id": 1}"#).is_err());
        assert!(Response::decode(r#"{"id": 1, "ok": true}"#).is_err());
        assert!(Response::decode(r#"{"id": 1, "ok": false}"#).is_err());
        assert!(
            Response::decode(r#"{"id": 1, "ok": true, "method": "nope", "result": {}}"#).is_err()
        );
    }

    #[test]
    fn precompile_summary_roundtrips() {
        let r = Response {
            id: 11,
            body: Ok(Payload::Precompile(PrecompileSummary {
                n_programs: 3,
                n_unique_groups: 17,
                total_iterations: 4242,
            })),
        };
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
    }
}
